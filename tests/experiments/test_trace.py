"""Tests for trace analysis: the overlap metric behind data streaming."""

import numpy as np
import pytest

from repro.experiments.trace import (
    TraceSummary,
    _intersect,
    _merge,
    render_summary,
    summarize,
)
from repro.hardware.event_sim import Timeline
from repro.obs.tracer import Span, Tracer, spans_from_timeline
from repro.minic.parser import parse
from repro.runtime.executor import Machine, run_program
from repro.transforms.streaming import StreamingOptions, apply_streaming


class TestIntervalHelpers:
    def test_merge_overlapping(self):
        assert _merge([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_adjacent(self):
        assert _merge([(0, 1), (1, 2)]) == [(0, 2)]

    def test_intersect_disjoint(self):
        assert _intersect([(0, 1)], [(2, 3)]) == 0.0

    def test_intersect_partial(self):
        assert _intersect([(0, 4)], [(2, 6)]) == pytest.approx(2.0)

    def test_intersect_multiple(self):
        a = [(0, 2), (4, 6)]
        b = [(1, 5)]
        assert _intersect(a, b) == pytest.approx(2.0)

    def test_merge_touching_chain_collapses(self):
        # A chain of spans that each start exactly where the previous
        # ended is one contiguous busy interval.
        assert _merge([(0, 1), (1, 2), (2, 5)]) == [(0, 5)]

    def test_merge_zero_length_entries(self):
        # Zero-length intervals merge into a covering neighbour and
        # contribute no coverage on their own.
        assert _merge([(0, 2), (1, 1), (3, 3), (4, 5)]) == [
            (0, 2),
            (3, 3),
            (4, 5),
        ]
        from repro.obs.intervals import covered_time

        assert covered_time(_merge([(3, 3)])) == 0.0

    def test_merge_fully_nested(self):
        # An interval entirely inside another must not extend it.
        assert _merge([(0, 10), (2, 5), (3, 4)]) == [(0, 10)]

    def test_intersect_touching_is_zero(self):
        # Sets that only touch at a point share no time.
        assert _intersect([(0, 1)], [(1, 2)]) == 0.0

    def test_intersect_fully_nested(self):
        assert _intersect([(0, 10)], [(2, 5)]) == pytest.approx(3.0)

    def test_intersect_zero_length_interval(self):
        assert _intersect([(0, 4)], [(2, 2)]) == 0.0

    def test_helpers_are_shared_with_obs(self):
        # Single source of truth: the private aliases must be the
        # repro.obs.intervals functions themselves.
        from repro.obs import intervals

        assert _merge is intervals.merge_intervals
        assert _intersect is intervals.intersect_total


class TestSummarize:
    def test_serial_schedule_no_overlap(self):
        tl = Timeline()
        xfer = tl.schedule("dma:h2d", 2.0)
        tl.schedule("mic", 3.0, deps=[xfer])
        summary = summarize(tl)
        assert summary.overlap == 0.0
        assert summary.overlap_fraction == 0.0
        assert summary.makespan == pytest.approx(5.0)
        assert summary.idle_time == pytest.approx(0.0)

    def test_pipelined_schedule_overlaps(self):
        tl = Timeline()
        prev = None
        for _ in range(4):
            xfer = tl.schedule("dma:h2d", 1.0)
            deps = [xfer] + ([prev] if prev else [])
            prev = tl.schedule("mic", 1.0, deps=deps)
        summary = summarize(tl)
        assert summary.overlap > 0.0
        assert summary.overlap_fraction > 0.4

    def test_render(self):
        tl = Timeline()
        tl.schedule("dma:h2d", 1.0)
        text = render_summary(summarize(tl))
        assert "makespan" in text
        assert "utilized" in text

    def test_empty_timeline(self):
        summary = summarize(Timeline())
        assert summary.makespan == 0.0
        assert summary.overlap_fraction == 0.0

    def test_summarize_accepts_tracer(self):
        tracer = Tracer()
        tracer.span("h2d:A", "dma:h2d", 0.0, 2.0)
        tracer.span("kernel", "mic", 1.0, 4.0)
        summary = summarize(tracer)
        assert summary.makespan == pytest.approx(4.0)
        assert summary.overlap == pytest.approx(1.0)

    def test_summarize_accepts_span_list(self):
        spans = [Span("kernel", "mic", 0.0, 3.0, sid=1)]
        summary = summarize(spans)
        assert summary.device_busy == pytest.approx(3.0)
        assert summary.utilization["mic"] == pytest.approx(1.0)

    def test_timeline_and_lifted_spans_agree(self):
        tl = Timeline()
        xfer = tl.schedule("dma:h2d", 2.0)
        tl.schedule("mic", 3.0, deps=[xfer])
        from_timeline = summarize(tl)
        from_spans = summarize(spans_from_timeline(tl))
        assert from_timeline == from_spans


class TestStreamingOverlapMetric:
    SOURCE = """
    void main() {
    #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
    #pragma omp parallel for
        for (int i = 0; i < n; i++) { B[i] = sqrt(A[i]) + A[i] * 0.5; }
    }
    """

    def run(self, program_or_source, scale=20_000.0):
        machine = Machine(scale=scale)
        n = 1024
        run_program(
            program_or_source,
            arrays={
                "A": np.ones(n, dtype=np.float32),
                "B": np.zeros(n, dtype=np.float32),
            },
            scalars={"n": n},
            machine=machine,
        )
        return summarize(machine.timeline)

    def test_unoptimized_offload_serializes(self):
        summary = self.run(self.SOURCE)
        assert summary.overlap_fraction < 0.05

    def test_streamed_offload_overlaps_most_transfer(self):
        prog = parse(self.SOURCE)
        apply_streaming(prog, StreamingOptions(num_blocks=16))
        summary = self.run(prog)
        assert summary.overlap_fraction > 0.5

    def test_makespan_shrinks_with_overlap(self):
        serial = self.run(self.SOURCE)
        prog = parse(self.SOURCE)
        apply_streaming(prog, StreamingOptions(num_blocks=16))
        streamed = self.run(prog)
        assert streamed.makespan < serial.makespan
