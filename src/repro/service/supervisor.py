"""Worker supervision: pool-death recovery, redispatch, poison quarantine.

A :class:`~repro.service.pool.WorkerPool` backed by real processes is
mortal: a worker segfaults or is OOM-killed and the executor surfaces
``BrokenProcessPool`` on *every* in-flight future, poisoning the pool
for all subsequent submissions.  :class:`WorkerSupervisor` wraps the
pool with the service tier's fault model:

* **detect** — ``BrokenExecutor`` (the superclass of
  ``BrokenProcessPool``) from a dispatch means the pool died, not the
  job; it is never treated as a job failure.
* **restart** — the pool is rebuilt with exponential backoff.  Rebuilds
  are single-flight: when one crash fails many in-flight dispatches at
  once, exactly one caller rebuilds (a generation counter arbitrates)
  and the rest immediately retry on the fresh pool.
* **redispatch** — each interrupted job is re-run, bounded by
  ``max_attempts``.  Job results are pure functions of the spec (see
  :mod:`repro.service.jobs`), so a redispatch can change *when* an
  answer arrives but never *what* it is — the property the
  ``--kill-workers`` chaos replay asserts byte-for-byte.
* **quarantine** — a spec that kills ``poison_threshold`` consecutive
  workers is declared poison: it is recorded in the dead-letter list,
  its caller gets :class:`PoisonJobError`, and the (restarted) pool
  keeps serving everyone else.  A success resets a spec's kill streak,
  so innocent bystanders of repeated crashes are never quarantined.

Everything is booked in the metrics registry
(``service.supervisor.restarts`` / ``redispatches`` /
``worker_failures`` / ``quarantined``) and summarized by
:meth:`WorkerSupervisor.stats` for the ``stats`` wire op.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import BrokenExecutor
from typing import Dict, List, Optional

from repro.obs.metrics import NULL_METRICS

__all__ = ["WorkerSupervisor", "PoisonJobError", "POOL_FAILURES"]

#: Exception types that mean "the pool died under us" rather than "the
#: job itself failed".  ``BrokenProcessPool`` and ``BrokenThreadPool``
#: are both ``BrokenExecutor`` subclasses.
POOL_FAILURES = (BrokenExecutor,)


class PoisonJobError(RuntimeError):
    """A spec was quarantined after killing too many workers in a row."""

    def __init__(self, key_id: str, label: str, kills: int):
        self.key_id = key_id
        self.label = label
        self.kills = kills
        super().__init__(
            f"job {label or key_id} quarantined as poison after killing "
            f"{kills} consecutive workers"
        )


class WorkerSupervisor:
    """Runs job payloads through a pool it is allowed to restart."""

    def __init__(
        self,
        pool,
        max_attempts: int = 4,
        poison_threshold: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        metrics=None,
        sleep=None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {poison_threshold}"
            )
        self.pool = pool
        self.max_attempts = max_attempts
        self.poison_threshold = poison_threshold
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._sleep = sleep if sleep is not None else asyncio.sleep
        #: Arbitration for single-flight rebuilds; bumped per rebuild.
        self._generation = 0
        self._rebuild_lock: Optional[asyncio.Lock] = None
        #: Consecutive rebuilds without an intervening success (backoff).
        self._restart_streak = 0
        #: Per-spec consecutive worker kills (poison attribution).
        self._kills: Dict[str, int] = {}
        self.restarts = 0
        self.redispatches = 0
        self.worker_failures = 0
        self.dead_letters: List[dict] = []
        self._quarantined: set = set()

    # -- dispatch -----------------------------------------------------------

    def is_quarantined(self, key_id: str) -> bool:
        return key_id in self._quarantined

    async def run(self, payload: dict, key_id: str, label: str = "") -> dict:
        """Execute one job payload, surviving pool deaths.

        Raises :class:`PoisonJobError` when the spec crosses the poison
        threshold (including on a pre-quarantined key), and re-raises
        the last pool failure when the attempt budget runs out.
        """
        if key_id in self._quarantined:
            raise PoisonJobError(key_id, label, self._kills.get(key_id, 0))
        attempts = 0
        while True:
            generation = self._generation
            attempts += 1
            try:
                result = await self.pool.run(payload)
            except asyncio.CancelledError:
                raise
            except POOL_FAILURES as exc:
                self.worker_failures += 1
                self.metrics.counter("service.supervisor.worker_failures").inc()
                kills = self._kills.get(key_id, 0) + 1
                self._kills[key_id] = kills
                if kills >= self.poison_threshold:
                    self._quarantine(key_id, label, kills, exc)
                    await self._ensure_pool(generation)
                    raise PoisonJobError(key_id, label, kills) from exc
                if attempts >= self.max_attempts:
                    await self._ensure_pool(generation)
                    raise
                await self._ensure_pool(generation)
                self.redispatches += 1
                self.metrics.counter("service.supervisor.redispatches").inc()
                continue
            else:
                self._kills.pop(key_id, None)
                self._restart_streak = 0
                return result

    # -- pool lifecycle -----------------------------------------------------

    async def _ensure_pool(self, seen_generation: int) -> None:
        """Rebuild the pool at most once per death (single-flight)."""
        if self._rebuild_lock is None:
            self._rebuild_lock = asyncio.Lock()
        async with self._rebuild_lock:
            if self._generation != seen_generation:
                # Another victim of the same crash already rebuilt.
                return
            delay = min(
                self.backoff_base * (2 ** self._restart_streak),
                self.backoff_max,
            )
            self._restart_streak += 1
            if delay > 0:
                await self._sleep(delay)
            self.pool.restart()
            self._generation += 1
            self.restarts += 1
            self.metrics.counter("service.supervisor.restarts").inc()

    # -- quarantine ---------------------------------------------------------

    def _quarantine(self, key_id: str, label: str, kills: int, exc) -> None:
        if key_id in self._quarantined:
            return
        self._quarantined.add(key_id)
        self.dead_letters.append({
            "key_id": key_id,
            "label": label,
            "kills": kills,
            "error": str(exc),
        })
        self.metrics.counter("service.supervisor.quarantined").inc()

    # -- observation --------------------------------------------------------

    def stats(self) -> dict:
        """Supervision telemetry, JSON-ready (for snapshots and `stats`)."""
        return {
            "generation": self._generation,
            "restarts": self.restarts,
            "redispatches": self.redispatches,
            "worker_failures": self.worker_failures,
            "quarantined": len(self.dead_letters),
            "dead_letters": [dict(entry) for entry in self.dead_letters],
        }
