"""Figure 14: performance gains by offload merging.

streamcluster, CG and cfd offload small kernels inside an outer loop;
merging hoists the loop into one device region.  Paper: 38.89x, 18.53x,
27.19x (average 27.13x) — order-of-magnitude gains from eliminating
per-iteration launches and transfers.
"""

from benchmarks.conftest import emit
from repro.experiments.figures import figure14
from repro.experiments.report import render_figure


def test_figure14_merging_gains(benchmark, runner):
    fig = benchmark.pedantic(
        lambda: figure14(runner), rounds=1, iterations=1
    )
    emit(render_figure(fig, log=True))
    for name, gain in fig.series.items():
        assert gain > 10, (name, gain)
    assert fig.series["streamcluster"] == max(fig.series.values())
    assert 15 < fig.average < 45  # paper: 27.13x
