"""Tests for the persistent result store and crash-restart recovery.

Covers the durability tentpole end to end: segment spill/reload with
checksum verification (corrupt entries dropped, counted, never served),
segment rotation and last-write-wins, clear() wiping disk state, and a
:class:`CampaignService` restarted on a populated state dir re-admitting
journaled jobs and warming its store instead of recomputing.
"""

import asyncio
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import JobSpec
from repro.service.journal import JobJournal, encode_record
from repro.service.persist import PersistentResultStore
from repro.service.service import CampaignService

SOURCE = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0;
    }
}
"""


def run_spec(size=16, **overrides):
    fields = dict(
        kind="run",
        source=SOURCE,
        arrays=(f"A={size}:float:arange", f"B={size}:float:zeros"),
        scalars=(f"n={size}",),
        seed=0,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def run_service(coro_fn, **service_kwargs):
    async def scenario():
        service = CampaignService(**service_kwargs)
        await service.start()
        try:
            return await coro_fn(service)
        finally:
            await service.close()

    return asyncio.run(scenario())


class TestSpillAndLoad:
    def test_roundtrip(self, tmp_path):
        root = tmp_path / "results"
        store = PersistentResultStore(root, sync="always")
        store.put("k1", {"ok": True, "n": 1})
        store.put("k2", {"ok": True, "n": 2})
        store.close()

        warmed = PersistentResultStore(root)
        recovered, dropped = warmed.load()
        assert (recovered, dropped) == (2, 0)
        assert warmed.get("k1") == {"ok": True, "n": 1}
        assert warmed.get("k2") == {"ok": True, "n": 2}
        warmed.close()

    def test_non_string_keys_rejected(self, tmp_path):
        store = PersistentResultStore(tmp_path / "r")
        with pytest.raises(TypeError, match="sha strings"):
            store.put(("tuple", "key"), 1)
        store.close()

    def test_corrupt_entry_dropped_counted_never_served(self, tmp_path):
        root = tmp_path / "results"
        store = PersistentResultStore(root, sync="always")
        store.put("good", {"n": 1})
        store.put("bad", {"n": 2})
        store.close()
        (segment,) = [
            os.path.join(root, n) for n in sorted(os.listdir(root))
        ]
        with open(segment, "rb") as fh:
            lines = fh.readlines()
        damaged = bytearray(lines[1])
        damaged[10] ^= 0x40
        with open(segment, "wb") as fh:
            fh.write(lines[0] + bytes(damaged))

        metrics = MetricsRegistry()
        warmed = PersistentResultStore(root, metrics=metrics, name="svc")
        recovered, dropped = warmed.load()
        assert (recovered, dropped) == (1, 1)
        assert warmed.get("good") == {"n": 1}
        assert warmed.get("bad") is None  # never served
        counters = metrics.snapshot()["counters"]
        assert counters["svc.recovered"] == 1
        assert counters["svc.dropped_corrupt"] == 1
        stats = warmed.cache_stats()
        assert stats["persistent"] and stats["dropped_corrupt"] == 1
        warmed.close()

    def test_truncated_tail_entry_dropped(self, tmp_path):
        root = tmp_path / "results"
        store = PersistentResultStore(root, sync="always")
        store.put("k1", 1)
        store.put("k2", 2)
        store.close()
        (segment,) = [
            os.path.join(root, n) for n in sorted(os.listdir(root))
        ]
        raw = open(segment, "rb").read()
        with open(segment, "wb") as fh:
            fh.write(raw[:-5])  # crash mid-write of the final entry
        warmed = PersistentResultStore(root)
        assert warmed.load() == (1, 1)
        assert warmed.get("k2") is None
        warmed.close()

    def test_rotation_and_last_write_wins(self, tmp_path):
        root = tmp_path / "results"
        store = PersistentResultStore(root, segment_entries=2, sync="always")
        for i in range(5):
            store.put(f"k{i % 2}", i)  # rewrites k0/k1 across segments
        store.close()
        assert len(os.listdir(root)) == 3  # rotated every 2 entries
        warmed = PersistentResultStore(root)
        assert warmed.load() == (2, 0)
        assert warmed.get("k0") == 4  # the latest write for each key
        assert warmed.get("k1") == 3
        warmed.close()

    def test_fresh_generation_gets_fresh_segment(self, tmp_path):
        root = tmp_path / "results"
        first = PersistentResultStore(root)
        first.put("k", 1)
        first.close()
        second = PersistentResultStore(root)
        second.put("k", 2)
        second.close()
        names = sorted(os.listdir(root))
        assert names == ["results-00000.seg", "results-00001.seg"]

    def test_clear_wipes_segments(self, tmp_path):
        root = tmp_path / "results"
        store = PersistentResultStore(root)
        store.put("k", 1)
        store.clear()
        assert os.listdir(root) == []
        assert store.clears == 1
        # The store keeps working after the wipe.
        store.put("k2", 2)
        store.close()
        warmed = PersistentResultStore(root)
        assert warmed.load() == (1, 0)
        assert warmed.get("k") is None
        warmed.close()

    def test_load_respects_lru_bound(self, tmp_path):
        root = tmp_path / "results"
        store = PersistentResultStore(root, sync="always")
        for i in range(6):
            store.put(f"k{i}", i)
        store.close()
        warmed = PersistentResultStore(root, max_entries=2)
        recovered, dropped = warmed.load()
        assert (recovered, dropped) == (6, 0)
        assert len(warmed) == 2
        # Most recently persisted survive the bound.
        assert warmed.get("k5") == 5 and warmed.get("k4") == 4
        warmed.close()


class TestServiceRecovery:
    def test_cold_state_dir_runs_clean(self, tmp_path):
        state = str(tmp_path / "state")

        async def scenario(service):
            job = service.submit(run_spec())
            return await service.result(job)

        result = run_service(scenario, state_dir=state)
        assert result["ok"]
        # The journal recorded accept + terminal; the store spilled.
        assert os.path.exists(os.path.join(state, "journal.jsonl"))
        assert os.listdir(os.path.join(state, "results"))

    def test_restart_recovers_results_and_pending_jobs(self, tmp_path):
        state = str(tmp_path / "state")
        finished = run_spec(size=16)
        pending = run_spec(size=32)

        async def first_run(service):
            job = service.submit(finished)
            return await service.result(job)

        run_service(first_run, state_dir=state, sync="always")

        # Simulate a crash that lost the pending job's execution: append
        # an accepted record with no terminal to the journal by hand.
        journal = JobJournal(
            os.path.join(state, "journal.jsonl"), sync="always"
        )
        journal.append_accepted(pending.key_sha(), pending.as_dict())
        journal.close()

        async def second_run(service):
            assert service.recovery["recovered_results"] >= 1
            assert service.recovery["recovered_jobs"] == 1
            assert service.recovery["dropped_corrupt"] == 0
            # The finished job's result serves from the warmed store
            # without recomputation (a recorded cache hit).
            job = service.submit(finished)
            result = await service.result(job)
            assert job.cached
            await service.drain()  # let the re-admitted job finish
            return result, service.metrics.snapshot()["counters"]

        result, counters = run_service(second_run, state_dir=state)
        assert result["ok"]
        assert counters["service.jobs.recovered"] == 1
        assert counters["service.durability.recovered_jobs"] == 1
        assert counters["service.store.hits"] >= 1

        # Third generation: the recovered job finished and journaled a
        # terminal record, so nothing is pending any more.
        async def third_run(service):
            return dict(service.recovery)

        recovery = run_service(third_run, state_dir=state)
        assert recovery["recovered_jobs"] == 0
        assert recovery["recovered_results"] >= 2

    def test_corrupt_journal_spec_dropped_not_fatal(self, tmp_path):
        state = str(tmp_path / "state")
        os.makedirs(state)
        with open(os.path.join(state, "journal.jsonl"), "wb") as fh:
            fh.write(encode_record({
                "record": "accepted",
                "key": "deadbeef",
                "spec": {"kind": "bench", "workload": "no-such-workload"},
            }))
            fh.write(b"truncated garbage")

        async def scenario(service):
            return dict(service.recovery)

        recovery = run_service(scenario, state_dir=state)
        # Both the invalid spec and the truncated line are dropped and
        # counted; startup neither raises nor wedges.
        assert recovery["recovered_jobs"] == 0
        assert recovery["dropped_corrupt"] == 2

    def test_snapshot_reports_durability(self, tmp_path):
        state = str(tmp_path / "state")

        async def scenario(service):
            return service.snapshot()

        snap = run_service(scenario, state_dir=state)
        assert "durability" in snap
        assert snap["durability"]["journal"]["sync"] == "batch"
        assert snap["durability"]["recovery"]["recovered_jobs"] == 0

    def test_no_state_dir_means_no_durability(self, tmp_path):
        async def scenario(service):
            return service.snapshot()

        snap = run_service(scenario)
        assert "durability" not in snap
