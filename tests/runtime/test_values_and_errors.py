"""Tests for memory spaces and the exception hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.runtime.values import DeviceSpace, HostSpace


class TestHostSpace:
    def test_bind_and_read(self):
        host = HostSpace()
        host.bind_array("A", np.arange(4))
        assert list(host.array("A")) == [0, 1, 2, 3]

    def test_missing_array_raises(self):
        with pytest.raises(errors.RuntimeFault):
            HostSpace().array("nope")

    def test_scalars_dict(self):
        host = HostSpace()
        host.scalars["n"] = 10
        assert host.scalars["n"] == 10


class TestDeviceSpace:
    def test_strict_read(self):
        with pytest.raises(errors.MissingTransferError):
            DeviceSpace().array("A")

    def test_holds(self):
        device = DeviceSpace()
        assert not device.holds("A")
        device.arrays["A"] = np.zeros(2)
        assert device.holds("A")


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        leaf_classes = [
            errors.LexError("x", 1, 1),
            errors.ParseError("x", 1, 1),
            errors.PragmaError("x"),
            errors.SymbolError("x"),
            errors.NotAffineError("x"),
            errors.LegalityError("x"),
            errors.DeviceOutOfMemory(1, 2, 3),
            errors.MissingTransferError("x"),
            errors.MyoLimitError("x"),
            errors.PointerTranslationError("x"),
            errors.ExecutionError("x"),
        ]
        for exc in leaf_classes:
            assert isinstance(exc, errors.ReproError), type(exc)

    def test_lex_error_position(self):
        exc = errors.LexError("bad char", 3, 7)
        assert exc.line == 3 and exc.column == 7
        assert "line 3" in str(exc)

    def test_parse_error_without_position(self):
        exc = errors.ParseError("oops")
        assert "oops" in str(exc)
        assert "line" not in str(exc)

    def test_oom_carries_numbers(self):
        exc = errors.DeviceOutOfMemory(100, 900, 1000)
        assert exc.requested == 100
        assert exc.in_use == 900
        assert exc.capacity == 1000
        assert "capacity" in str(exc)

    def test_families(self):
        assert issubclass(errors.LexError, errors.MiniCError)
        assert issubclass(errors.NotAffineError, errors.AnalysisError)
        assert issubclass(errors.LegalityError, errors.TransformError)
        assert issubclass(errors.DeviceOutOfMemory, errors.HardwareError)
        assert issubclass(errors.MissingTransferError, errors.RuntimeFault)
