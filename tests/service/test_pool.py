"""Tests for the worker pool: restart, chaos hooks, shutdown semantics."""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import jobs as jobs_mod
from repro.service.pool import WorkerPool


class TestRestart:
    def test_inline_pool_restart_is_noop(self):
        pool = WorkerPool(0)
        pool.restart()
        assert pool.inline
        assert pool.generations == 0

    def test_restart_builds_new_executor(self):
        pool = WorkerPool(2, pool_cls=ThreadPoolExecutor)
        first = pool._pool
        pool.restart()
        assert pool._pool is not first
        assert pool.generations == 2
        pool.shutdown()

    def test_restart_refused_after_shutdown(self):
        pool = WorkerPool(2, pool_cls=ThreadPoolExecutor)
        pool.shutdown()
        pool.restart()
        assert pool._pool is None
        assert pool.generations == 1  # nothing resurrected

    def test_restart_survives_broken_old_executor(self):
        class StubbornExecutor(ThreadPoolExecutor):
            def shutdown(self, wait=True, cancel_futures=False):
                raise RuntimeError("already broken")

        pool = WorkerPool(1, pool_cls=StubbornExecutor)
        pool.restart()  # must not propagate the shutdown error
        assert pool.generations == 2
        pool._pool_cls = ThreadPoolExecutor  # let teardown succeed
        pool._pool = None
        pool.shutdown()


class TestChaosHooks:
    def test_worker_pids_empty_for_inline_and_threads(self):
        assert WorkerPool(0).worker_pids() == []
        pool = WorkerPool(2, pool_cls=ThreadPoolExecutor)
        assert pool.worker_pids() == []
        assert pool.kill_one_worker() is None
        pool.shutdown()


class TestShutdown:
    def test_shutdown_idempotent(self):
        pool = WorkerPool(1, pool_cls=ThreadPoolExecutor)
        pool.shutdown()
        pool.shutdown()
        assert pool.inline

    def test_shutdown_nowait_returns_while_job_in_flight(self, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def slow_execute(payload):
            started.set()
            release.wait(5.0)
            return {"ok": True, "payload": payload}

        monkeypatch.setattr(jobs_mod, "execute_job", slow_execute)

        async def scenario():
            pool = WorkerPool(1, pool_cls=ThreadPoolExecutor)
            task = asyncio.create_task(pool.run({"x": 1}))
            loop = asyncio.get_running_loop()
            assert await loop.run_in_executor(None, started.wait, 5.0)
            pool.shutdown(wait=False)
            # shutdown(wait=False) must NOT block on the running job.
            assert not release.is_set()
            assert pool.inline
            release.set()
            return await task

        result = asyncio.run(scenario())
        assert result["ok"]

    def test_shutdown_nowait_cancels_queued_jobs(self, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def slow_execute(payload):
            started.set()
            release.wait(5.0)
            return {"ok": True}

        monkeypatch.setattr(jobs_mod, "execute_job", slow_execute)

        async def scenario():
            pool = WorkerPool(1, pool_cls=ThreadPoolExecutor)
            running = asyncio.create_task(pool.run({"x": 1}))
            loop = asyncio.get_running_loop()
            assert await loop.run_in_executor(None, started.wait, 5.0)
            # A second job is queued behind the single busy worker.
            queued = asyncio.create_task(pool.run({"x": 2}))
            await asyncio.sleep(0)
            pool.shutdown(wait=False)
            release.set()
            first = await running
            with pytest.raises(asyncio.CancelledError):
                await queued
            return first

        assert asyncio.run(scenario())["ok"]


class TestRealProcesses:
    def test_kill_one_worker_breaks_then_supervisor_recovers(self):
        # End-to-end over real processes: SIGKILL a worker mid-fleet,
        # watch the supervisor rebuild and re-answer correctly.
        from repro.obs.metrics import MetricsRegistry
        from repro.service.supervisor import WorkerSupervisor

        spec = jobs_mod.JobSpec(kind="bench", workload="blackscholes", seed=0)
        payload = spec.as_dict()

        async def scenario():
            pool = WorkerPool(2)
            sup = WorkerSupervisor(
                pool, backoff_base=0.0, metrics=MetricsRegistry()
            )
            try:
                baseline = await sup.run(payload, key_id=spec.key_id())
                pids = pool.worker_pids()
                assert pids, "process pool must expose worker pids"
                task = asyncio.create_task(
                    sup.run(payload, key_id=spec.key_id())
                )
                await asyncio.sleep(0.01)
                assert pool.kill_one_worker() in pids
                disturbed = await task
                return baseline, disturbed, sup.stats()
            finally:
                pool.shutdown()

        baseline, disturbed, stats = asyncio.run(scenario())
        # The kill may land before or after the in-flight job finishes;
        # either way the result must be byte-identical to the baseline.
        assert disturbed == baseline
        assert stats["quarantined"] == 0
