"""Simulated offload runtime.

Layers, bottom to top:

* :mod:`repro.runtime.values` — host and device memory spaces holding
  named numpy buffers and scalars; the device space is strict (reading a
  buffer that was never transferred raises), which is how clause-inference
  bugs surface;
* :mod:`repro.runtime.coi` — the low-level COI-like runtime: buffer
  management, synchronous and asynchronous DMA, kernel launches, and the
  signal fast path used by thread reuse;
* :mod:`repro.runtime.executor` — the MiniC interpreter that executes
  programs against the simulated machine, accruing operation counters and
  driving the timeline through LEO pragmas;
* :mod:`repro.runtime.checkpoint` — checkpoint/restart recovery that
  makes streamed offloads resumable across full ``device:reset`` faults;
* :mod:`repro.runtime.myo` / :mod:`repro.runtime.arena` /
  :mod:`repro.runtime.smartptr` — the MYO page-fault shared-memory
  baseline and the paper's segmented-arena + augmented-pointer
  replacement (Section V).
"""

from repro.runtime.arena import ArenaAllocator, SharedObject
from repro.runtime.checkpoint import Checkpoint, CheckpointManager
from repro.runtime.coi import CoiRuntime
from repro.runtime.executor import ExecutionResult, Executor, Machine, run_program
from repro.runtime.myo import MyoRuntime
from repro.runtime.smartptr import DeltaTable, SharedPtr
from repro.runtime.values import DeviceSpace, HostSpace

__all__ = [
    "ArenaAllocator",
    "SharedObject",
    "Checkpoint",
    "CheckpointManager",
    "CoiRuntime",
    "ExecutionResult",
    "Executor",
    "Machine",
    "run_program",
    "MyoRuntime",
    "DeltaTable",
    "SharedPtr",
    "DeviceSpace",
    "HostSpace",
]
