"""Tests for do-while support across parser, printer and interpreter."""

import pytest

from repro.errors import ParseError
from repro.minic import ast_nodes as ast
from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.runtime.executor import run_program


class TestParsing:
    def test_basic(self):
        prog = parse("void main() { do { x = x + 1; } while (x < 5); }")
        (stmt,) = prog.function("main").body.stmts
        assert isinstance(stmt, ast.DoWhile)
        assert isinstance(stmt.cond, ast.BinOp)

    def test_single_statement_body(self):
        prog = parse("void main() { do x = x + 1; while (x < 3); }")
        (stmt,) = prog.function("main").body.stmts
        assert isinstance(stmt, ast.DoWhile)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse("void main() { do { x = 1; } while (x < 5) }")

    def test_roundtrip(self):
        src = "void main() { do { x = x + 1; } while (x < 5); }"
        prog = parse(src)
        assert parse(to_source(prog)) == prog


class TestExecution:
    def test_runs_at_least_once(self):
        result = run_program(
            "void main() { x = 100; do { x = x + 1; } while (x < 5); }"
        )
        assert result.scalar("x") == 101

    def test_loops_until_condition_false(self):
        result = run_program(
            "void main() { x = 0; do { x = x + 1; } while (x < 5); }"
        )
        assert result.scalar("x") == 5

    def test_break(self):
        result = run_program(
            "void main() { x = 0; do { x = x + 1;"
            " if (x == 3) { break; } } while (x < 100); }"
        )
        assert result.scalar("x") == 3

    def test_continue_still_checks_condition(self):
        result = run_program(
            "void main() { x = 0; s = 0; do { x = x + 1;"
            " if (x % 2 == 0) { continue; } s = s + 1; } while (x < 6); }"
        )
        assert result.scalar("s") == 3
