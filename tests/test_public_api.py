"""Public API surface checks: exports resolve and everything public is
documented (modules, classes, functions)."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.minic",
    "repro.analysis",
    "repro.transforms",
    "repro.hardware",
    "repro.runtime",
    "repro.workloads",
    "repro.experiments",
]


def _all_modules():
    names = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__):
            if info.name == "__main__":
                continue
            names.append(f"{package_name}.{info.name}")
    return sorted(set(names))


MODULES = _all_modules()


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_entries_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_top_level_convenience(self):
        assert callable(repro.optimize_source)
        assert callable(repro.run_source)
        assert callable(repro.parse)
        assert callable(repro.to_source)


class TestDocumentation:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_items_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export; documented at its home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        assert undocumented == [], f"{module_name}: {undocumented}"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_methods_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != module_name:
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_"):
                    continue
                func = meth.fget if isinstance(meth, property) else meth
                if not inspect.isfunction(func):
                    continue
                if not (func.__doc__ and func.__doc__.strip()):
                    undocumented.append(f"{cls_name}.{meth_name}")
        assert undocumented == [], f"{module_name}: {undocumented}"
