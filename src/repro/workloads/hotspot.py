"""hotspot (Rodinia): thermal simulation on a 2-D grid.

Shape: a compute-dominated stencil iterated many time steps.  The
sensible LEO port (and evidently the paper's: hotspot is one of the four
benchmarks that win on the MIC *without* COMP) wraps the whole time loop
in a single offload region — the grid crosses the bus once, every sweep
runs threaded on the coprocessor, and the ping-pong buffer lives only in
device memory.  With transfers already negligible against computation,
none of the optimizations apply ("their data transfer overheads are small
compared to the computation time").  Table II: no optimization applies.
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import OptimizationPlan
from repro.workloads.base import MiniCWorkload, Table2Row, input_rng

EXEC_ROWS = 48
EXEC_COLS = 48
PAPER_CELLS = 1024 * 1024  # "1024 x 1024 matrix"
STEPS = 6

# The CPU (OpenMP) version: time loop around a parallel stencil sweep.
SOURCE = """
void main() {
    for (int t = 0; t < steps; t++) {
#pragma omp parallel for
        for (int i = 0; i < ncells; i++) {
            float center = temp[i];
            float up = i - cols >= 0 ? temp[i - cols] : center;
            float down = i + cols < ncells ? temp[i + cols] : center;
            float left = i % cols != 0 ? temp[i - 1] : center;
            float right = i % cols != cols - 1 ? temp[i + 1] : center;
            result[i] = center + 0.2 * (up + down + left + right
                - 4.0 * center) + 0.05 * power[i];
        }
#pragma omp parallel for
        for (int i = 0; i < ncells; i++) {
            temp[i] = result[i];
        }
    }
}
"""

# The hand-ported MIC version: the whole time loop is one device region.
MIC_SOURCE = """
void main() {
#pragma offload target(mic:0) inout(temp : length(ncells)) in(power : length(ncells)) nocopy(result : length(ncells)) in(ncells) in(cols) in(steps)
    {
        for (int t = 0; t < steps; t++) {
#pragma omp parallel for
            for (int i = 0; i < ncells; i++) {
                float center = temp[i];
                float up = i - cols >= 0 ? temp[i - cols] : center;
                float down = i + cols < ncells ? temp[i + cols] : center;
                float left = i % cols != 0 ? temp[i - 1] : center;
                float right = i % cols != cols - 1 ? temp[i + 1] : center;
                result[i] = center + 0.2 * (up + down + left + right
                    - 4.0 * center) + 0.05 * power[i];
            }
#pragma omp parallel for
            for (int i = 0; i < ncells; i++) {
                temp[i] = result[i];
            }
        }
    }
}
"""


def make_arrays(seed=None):
    """Build the thermal stencil benchmark's executed-scale input arrays."""
    rng = input_rng(seed, 41)
    n = EXEC_ROWS * EXEC_COLS
    return {
        "temp": (rng.random(n) * 50.0 + 300.0).astype(np.float32),
        "power": (rng.random(n) * 5.0).astype(np.float32),
        "result": np.zeros(n, dtype=np.float32),
    }


def make() -> MiniCWorkload:
    """Construct the hotspot workload instance."""
    workload = MiniCWorkload(
        name="hotspot",
        source=SOURCE,
        table2=Table2Row(
            suite="Rodinia",
            paper_input="1024 x 1024 matrix",
            kloc=0.192,
        ),
        make_arrays=make_arrays,
        scalars={
            "ncells": EXEC_ROWS * EXEC_COLS,
            "cols": EXEC_COLS,
            "steps": STEPS,
        },
        sim_scale=PAPER_CELLS / (EXEC_ROWS * EXEC_COLS),
        output_arrays=["temp"],
        plan=OptimizationPlan(),
        description="iterated thermal stencil inside one offload region",
    )
    workload.mic_source = MIC_SOURCE
    return workload
