"""Campaign-service throughput: jobs/sec and queue latency vs workers.

Replays one fixed seeded traffic trace through a live
:class:`~repro.service.service.CampaignService` at 1, 2, and 4 warm
workers and writes ``BENCH_service.json`` at the repo root with
jobs/sec plus p50/p95 *wall-clock* queue latency per worker count, so CI
tracks service overhead alongside the paper figures.

Wall-clock numbers are telemetry, never part of job results: the bench
also replays the same trace through the deterministic two-phase replay
path at two worker counts and asserts the summary documents are
byte-identical — scaling the pool must change only how fast, not what.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.experiments.report import render_table
from repro.obs.provenance import build_provenance
from repro.service.traffic import (
    TraceSpec,
    _percentile,
    generate_trace,
    replay_trace,
    summary_to_json,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

WORKER_COUNTS = (1, 2, 4)

#: Interactive-run-only trace: per-job cost is small, so the measurement
#: is dominated by service overhead (admission, dispatch, store, events)
#: rather than simulation time.
TRACE = TraceSpec(
    seed=42,
    requests=24,
    classes=(("run", 1.0),),
    base_rate=50.0,
    burst_factor=4.0,
    tenants=3,
)


def _drive_service(workers):
    """Submit every arrival to a fresh service; return live telemetry."""
    import asyncio

    from concurrent.futures import ThreadPoolExecutor

    from repro.service.service import CampaignService

    arrivals = generate_trace(TRACE)

    async def scenario():
        service = CampaignService(
            workers=workers,
            pool_cls=ThreadPoolExecutor,
            max_depth=2 * len(arrivals) + 8,
            high_water=2 * len(arrivals) + 8,
        )
        await service.start()
        try:
            started = time.perf_counter()
            jobs = [service.submit(a.spec) for a in arrivals]
            for job in jobs:
                await service.result(job)
            elapsed = time.perf_counter() - started
            cached = sum(1 for job in jobs if job.cached)
            return elapsed, cached, sorted(service.wall_queue_latencies)
        finally:
            await service.close()

    return asyncio.run(scenario())


def test_service_throughput():
    report = {
        "provenance": build_provenance(
            seed=TRACE.seed, engine=TRACE.engine,
            workers=",".join(str(w) for w in WORKER_COUNTS),
        ),
        "benchmark": "service_throughput",
        "trace": TRACE.as_dict(),
        "workers": {},
    }
    rows = []
    for workers in WORKER_COUNTS:
        elapsed, cached, latencies = _drive_service(workers)
        jobs_per_sec = TRACE.requests / elapsed
        p50 = _percentile(latencies, 50.0) * 1000
        p95 = _percentile(latencies, 95.0) * 1000
        report["workers"][str(workers)] = {
            "seconds": round(elapsed, 6),
            "jobs_per_sec": round(jobs_per_sec, 1),
            "queue_p50_ms": round(p50, 3),
            "queue_p95_ms": round(p95, 3),
            "executed": TRACE.requests - cached,
            "cached": cached,
        }
        rows.append([
            workers, f"{elapsed:.3f}", f"{jobs_per_sec:.1f}",
            f"{p50:.2f}", f"{p95:.2f}", cached,
        ])

    # The determinism contract: the replay document is a pure function
    # of the trace spec, whatever the pool size.
    inline = replay_trace(TRACE, workers=0)
    pooled = _pooled_replay(TRACE, workers=WORKER_COUNTS[-1])
    assert summary_to_json(inline) == summary_to_json(pooled)
    report["determinism"] = {
        "digest": inline["digest"],
        "workers_compared": [0, WORKER_COUNTS[-1]],
    }

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    emit(render_table(
        ["workers", "seconds", "jobs/sec", "p50 ms", "p95 ms", "cached"],
        rows,
    ))
    emit(f"replay digest (workers-invariant): {inline['digest']}")


def _pooled_replay(spec, workers):
    from concurrent.futures import ThreadPoolExecutor

    return replay_trace(spec, workers=workers, pool_cls=ThreadPoolExecutor)


# -- durability cold start ----------------------------------------------------

#: Journal lengths (records) for the recovery-time scaling row.
JOURNAL_LENGTHS = (64, 256, 1024)

_COLD_SOURCE = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0;
    }
}
"""


def _synthesize_state(state_dir, records):
    """A crashed-server state dir with *records* journal lines.

    Even-indexed jobs carry a terminal record (finished before the
    "crash"); odd-indexed ones are pending.  Every job's result is in
    the segments, so recovery re-admits the pending half and serves all
    of it from the warmed store — the timing measures pure recovery
    work, not job execution.
    """
    import os

    from repro.service.jobs import JobSpec
    from repro.service.journal import JobJournal
    from repro.service.persist import PersistentResultStore

    jobs = records // 2
    journal = JobJournal(
        os.path.join(state_dir, "journal.jsonl"), sync="off"
    )
    store = PersistentResultStore(
        os.path.join(state_dir, "results"), sync="off"
    )
    for i in range(jobs):
        spec = JobSpec(
            kind="run",
            source=_COLD_SOURCE,
            arrays=("A=16:float:arange", "B=16:float:zeros"),
            scalars=("n=16",),
            seed=i,
        )
        key = spec.key_sha()
        journal.append_accepted(key, spec.as_dict())
        store.put(key, {"ok": True, "sim_time": 0.0, "kind": "run",
                        "label": f"cold-{i}"})
        if i % 2 == 0:
            journal.append_terminal(key, "done")
    journal.close()
    store.close()


def _time_cold_start(state_dir):
    """Seconds for a fresh service to replay, warm up, and settle."""
    import asyncio

    from repro.service.service import CampaignService

    async def scenario():
        started = time.perf_counter()
        service = CampaignService(workers=0, state_dir=state_dir, sync="off")
        await service.start()
        await service.drain()
        elapsed = time.perf_counter() - started
        recovery = dict(service.recovery)
        await service.close()
        return elapsed, recovery

    return asyncio.run(scenario())


def test_recovery_cold_start(tmp_path):
    """Cold-start recovery time vs journal length (BENCH_service.json)."""
    report = (
        json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists()
        else {"benchmark": "service_throughput"}
    )
    durability = {}
    rows = []
    for records in JOURNAL_LENGTHS:
        state = str(tmp_path / f"state-{records}")
        _synthesize_state(state, records)
        elapsed, recovery = _time_cold_start(state)
        assert recovery["dropped_corrupt"] == 0
        assert recovery["recovered_jobs"] > 0
        assert recovery["recovered_results"] == records // 2
        durability[str(records)] = {
            "journal_records": recovery["journal_records"],
            "recovered_jobs": recovery["recovered_jobs"],
            "recovered_results": recovery["recovered_results"],
            "seconds": round(elapsed, 6),
            "records_per_sec": round(recovery["journal_records"] / elapsed, 1),
        }
        rows.append([
            records, recovery["recovered_jobs"],
            recovery["recovered_results"], f"{elapsed * 1000:.2f}",
        ])
    report["durability"] = durability
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    emit(render_table(
        ["journal records", "jobs re-admitted", "results warmed",
         "cold start ms"],
        rows,
    ))
