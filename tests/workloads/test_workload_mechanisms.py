"""Per-benchmark mechanism tests: *why* each workload behaves as Table II
says, not just that it does."""

import numpy as np
import pytest

from repro.minic import ast_nodes as ast
from repro.minic.printer import to_source
from repro.minic.visitor import walk
from repro.workloads.suite import get_workload


class TestBlackscholesMechanism:
    def test_streamed_source_is_figure5(self, runner, suite_results):
        workload = get_workload("blackscholes")
        program = workload.opt_program()
        printed = to_source(program)
        assert "sptprice__s1" in printed and "sptprice__s2" in printed
        assert "prices__b" in printed
        assert "wait(__k)" in printed

    def test_single_persistent_kernel(self, suite_results):
        stats = suite_results["blackscholes"].runs["opt"].stats
        assert stats.kernel_launches == 1
        assert stats.kernel_signals > 0

    def test_six_input_arrays_stream(self, suite_results):
        """All per-option arrays stream; none is resident."""
        workload = get_workload("blackscholes")
        printed = to_source(workload.opt_program())
        for name in ("sptprice", "strike", "rate", "volatility", "otime"):
            assert f"{name}__s1" in printed, name


class TestStreamclusterMechanism:
    def test_merged_into_one_region(self, suite_results):
        run = suite_results["streamcluster"].runs["opt"]
        assert run.stats.kernel_launches == 1

    def test_unopt_launches_two_per_pass(self, suite_results):
        from repro.workloads.streamcluster import PASSES

        stats = suite_results["streamcluster"].runs["mic"].stats
        assert stats.kernel_launches == 2 * PASSES

    def test_merged_transfers_points_once(self, suite_results):
        mic = suite_results["streamcluster"].runs["mic"].stats
        opt = suite_results["streamcluster"].runs["opt"].stats
        assert opt.bytes_to_device < mic.bytes_to_device / 10


class TestKmeansMechanism:
    def test_centroids_resident_on_device(self, suite_results):
        """The centroid table is loop-invariant inside the assignment
        kernel and must not be re-streamed per block."""
        workload = get_workload("kmeans")
        printed = to_source(workload.opt_program())
        assert "centroids__s1" not in printed
        assert "points__s1" in printed

    def test_thread_reuse_across_iterations(self, suite_results):
        from repro.workloads.kmeans import ITERS

        stats = suite_results["kmeans"].runs["opt"].stats
        assert stats.kernel_launches == 1
        mic = suite_results["kmeans"].runs["mic"].stats
        assert mic.kernel_launches == ITERS


class TestCgMechanism:
    def test_init_loop_streams_and_solver_merges(self, suite_results):
        run = suite_results["CG"].runs["opt"]
        applied = set(run.pipeline.applied())
        assert {"offload-merging", "data-streaming"} <= applied

    def test_merged_region_contains_spmv(self, suite_results):
        workload = get_workload("CG")
        program = workload.opt_program()
        blocks = [n for n in walk(program) if isinstance(n, ast.OffloadBlock)]
        assert len(blocks) == 1
        inner_loops = [
            n for n in walk(blocks[0].body) if isinstance(n, ast.For)
        ]
        assert len(inner_loops) >= 4  # iteration loop + 3 kernels + row loop

    def test_reduction_survives_merging(self, suite_results):
        """The dot-product reduction computes the same value merged."""
        cpu = suite_results["CG"].runs["cpu"].outputs
        opt = suite_results["CG"].runs["opt"].outputs
        assert np.array_equal(cpu["x"], opt["x"])


class TestNnMechanism:
    def test_gather_hoisted_out_of_query_loop(self, suite_results):
        """One gather serves all queries (amortized regularization)."""
        workload = get_workload("nn")
        printed = to_source(workload.opt_program())
        # The gather loop precedes the query loop in the source.
        gather_pos = printed.index("records__r0[i] = records[4 * i]")
        query_pos = printed.index("for (int q = 0;")
        assert gather_pos < query_pos

    def test_gather_is_pipelined(self, suite_results):
        workload = get_workload("nn")
        printed = to_source(workload.opt_program())
        assert "pipelined(1)" in printed

    def test_transfer_bytes_drop(self, suite_results):
        """Only 2 of 4 record fields cross the bus after reordering."""
        mic = suite_results["nn"].runs["mic"].stats
        opt = suite_results["nn"].runs["opt"].stats
        assert opt.bytes_to_device < 0.62 * mic.bytes_to_device


class TestSradMechanism:
    def test_split_inside_device_region(self, suite_results):
        workload = get_workload("srad")
        program = workload.opt_program()
        blocks = [n for n in walk(program) if isinstance(n, ast.OffloadBlock)]
        assert len(blocks) == 1
        printed = to_source(program)
        # Three parallel loops inside: irregular half, regular half, update.
        assert printed.count("omp parallel for") == 3

    def test_no_extra_transfers_or_launches(self, suite_results):
        mic = suite_results["srad"].runs["mic"].stats
        opt = suite_results["srad"].runs["opt"].stats
        assert opt.bytes_to_device == mic.bytes_to_device
        assert opt.kernel_launches == mic.kernel_launches == 1


class TestDedupMechanism:
    def test_already_streamed_rejected_by_optimizer(self, suite_results):
        run = suite_results["dedup"].runs["opt"]
        assert run.pipeline.applied() == []

    def test_hand_pipeline_overlaps(self, suite_results):
        stats = suite_results["dedup"].runs["mic"].stats
        # Double-buffered hand pipeline: one launch, per-block signals.
        assert stats.kernel_launches == 1
        assert stats.kernel_signals == 7


class TestBfsHotspotMechanism:
    def test_bfs_stays_on_device_across_levels(self, suite_results):
        stats = suite_results["bfs"].runs["mic"].stats
        assert stats.kernel_launches == 1  # the whole search is one region

    def test_hotspot_transfers_grid_once(self, suite_results):
        from repro.workloads.hotspot import EXEC_COLS, EXEC_ROWS

        workload = get_workload("hotspot")
        stats = suite_results["hotspot"].runs["mic"].stats
        cells = EXEC_ROWS * EXEC_COLS
        expected = 2 * cells * 4 * workload.sim_scale  # temp + power, once
        assert stats.bytes_to_device == pytest.approx(expected, rel=0.01)


class TestSharedMemoryWorkloadMechanism:
    def test_ferret_myo_page_faults_dominate(self):
        workload = get_workload("ferret")
        run = workload.run("mic")
        assert workload._myo_stats.page_faults > 5000

    def test_ferret_arena_buffers_bounded(self):
        workload = get_workload("ferret")
        workload.run("opt")
        assert len(workload._arena.buffers) <= 256

    def test_freqmine_fits_under_myo_limits(self):
        workload = get_workload("freqmine")
        run = workload.run("mic")
        assert workload._myo_stats.allocations == 912
