"""Exception hierarchy for the COMP reproduction.

Every failure mode in the toolchain maps to a subclass of
:class:`ReproError`, so callers can catch either the broad family or a
precise condition (e.g. a device out-of-memory, which the paper reports
as a "runtime error" when un-streamed footprints exceed MIC memory).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# --------------------------------------------------------------------------
# MiniC front end
# --------------------------------------------------------------------------

class MiniCError(ReproError):
    """Base class for MiniC language errors."""


class LexError(MiniCError):
    """Raised when the tokenizer encounters an invalid character."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(MiniCError):
    """Raised when the parser encounters an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class PragmaError(MiniCError):
    """Raised for malformed or unsupported pragma directives."""


# --------------------------------------------------------------------------
# Analysis and transformation
# --------------------------------------------------------------------------

class AnalysisError(ReproError):
    """Base class for static analysis failures."""


class SymbolError(AnalysisError):
    """Raised for undeclared or redeclared symbols."""


class NotAffineError(AnalysisError):
    """Raised when an index expression is not of the affine form a*i + b."""


class TransformError(ReproError):
    """Base class for transformation failures."""


class LegalityError(TransformError):
    """Raised when a transformation's legality check rejects a loop.

    The paper applies data streaming only when every array index in the
    loop is affine in the loop variable (Section III-A, "Legality check").
    """


# --------------------------------------------------------------------------
# Simulated hardware and runtime
# --------------------------------------------------------------------------

class HardwareError(ReproError):
    """Base class for simulated hardware faults."""


class DeviceOutOfMemory(HardwareError):
    """Raised when an allocation exceeds the coprocessor memory capacity.

    Matches the paper's observation that "when offloaded data cannot fit
    in the MIC memory, MIC will give out a runtime error" (Section III-B).
    """

    def __init__(
        self,
        requested: int,
        in_use: int,
        capacity: int,
        name: str = None,
        injected: bool = False,
    ):
        what = f"device OOM allocating {name!r}" if name else "device OOM"
        tag = " (injected)" if injected else ""
        super().__init__(
            f"{what}: requested {requested} bytes with {in_use} in use "
            f"(capacity {capacity}){tag}"
        )
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        self.name = name
        self.injected = injected


class RuntimeFault(ReproError):
    """Base class for offload runtime errors."""


class OffloadTimeout(RuntimeFault):
    """Raised when an offload operation exhausts its retry budget.

    The resilience layer retries faulted kernels under a watchdog; when
    every retry also fails, the offload is abandoned — the executor then
    falls back to host execution when the policy allows it.
    """


class DeviceLost(RuntimeFault):
    """Raised when the coprocessor resets and its state cannot be rebuilt.

    A full device reset wipes every resident buffer, arena, persistent
    kernel session, and in-flight signal.  The runtime survives it only
    when checkpoint/restart is enabled (``ResiliencePolicy.
    checkpoint_interval > 0``) and the per-run reset budget
    (``max_resets``) is not exhausted; otherwise the job is lost.
    """


class SilentDataCorruption(RuntimeFault):
    """Raised when a checksum mismatch cannot be repaired.

    The integrity layer repairs detected corruption in tiers —
    re-transfer from the host copy, kernel re-execution, checkpoint
    restore.  This error surfaces only when every tier is exhausted: a
    mismatch with no corruption record to attribute it to, or a kernel
    whose output keeps failing verification past ``max_reverify`` with
    checkpointing disabled.
    """


class MissingTransferError(RuntimeFault):
    """Raised when device code touches data never transferred to the device.

    This catches incorrect in/out clause inference: in real LEO such a bug
    manifests as garbage reads or segfaults; our simulated device memory is
    strict and refuses to read buffers that were never copied in.
    """


class MyoLimitError(RuntimeFault):
    """Raised when MYO's allocation-count or total-size limits are exceeded.

    The paper reports that ferret "cannot run correctly using Intel MYO due
    to the large number of allocations" (Section VI-D); this error models
    that failure.
    """


class PointerTranslationError(RuntimeFault):
    """Raised when a shared pointer cannot be mapped to a device address."""


class ExecutionError(RuntimeFault):
    """Raised by the MiniC interpreter for dynamic errors (bad call, etc.)."""
