"""Shared fixtures: the full benchmark suite is expensive (tens of
seconds of interpretation), so its results are computed once per session
and shared by workload-level and experiment-level tests."""

import pytest

from repro.experiments.harness import SuiteRunner


@pytest.fixture(scope="session")
def runner():
    """A session-wide cached SuiteRunner."""
    return SuiteRunner()


@pytest.fixture(scope="session")
def suite_results(runner):
    """BenchmarkResult for every Table II workload (cached)."""
    return runner.run_suite()
