"""Persistent result store: checksummed segment spill + verified reload.

The in-memory :class:`~repro.service.store.ResultStore` dies with the
process; :class:`PersistentResultStore` extends it so every ``put``
also appends the entry to an on-disk *segment file*, and a restarted
service warms itself back up with :meth:`load`.  Keys are the job's
**full 15-field provenance sha256** (see
:meth:`~repro.service.jobs.JobSpec.key_sha`) — a stable string that
survives process boundaries, unlike the in-memory provenance tuples.

Segments are JSON-lines files (``results-00000.seg``, rotated every
*segment_entries* entries, a fresh segment per process generation so a
crashed writer never shares a file with its successor).  Each line uses
the same ``crc32hex SP json LF`` framing as the write-ahead journal
(:mod:`repro.service.journal`), and :meth:`load` verifies every line:
corrupt or truncated entries are **dropped and counted, never served**
— the same detected/escaped accounting discipline the integrity layer
applies to device buffers.  Later segments win over earlier ones for
the same key (last write wins), so re-puts after recovery converge.

The ``sync`` knob (``always`` / ``batch`` / ``off``) shares semantics
with the journal; see that module for the cadence table.
"""

from __future__ import annotations

import os
from typing import Hashable, List, Optional, Tuple

from repro.service.journal import (
    decode_record,
    encode_record,
    validate_sync_mode,
)
from repro.service.store import ResultStore

__all__ = ["PersistentResultStore"]

#: Segment filename pattern: results-<generation index, 5 digits>.seg
_SEGMENT_PREFIX = "results-"
_SEGMENT_SUFFIX = ".seg"


class PersistentResultStore(ResultStore):
    """A :class:`ResultStore` whose entries spill to checksummed segments.

    *root* is the segment directory (created with parents).  Keys must
    be strings (provenance sha256 hex); values must be JSON-able (job
    result payloads are).  All base-class telemetry applies, plus
    ``<name>.recovered`` and ``<name>.dropped_corrupt`` counters booked
    by :meth:`load`.
    """

    def __init__(
        self,
        root,
        metrics=None,
        name: str = "store",
        max_entries: Optional[int] = None,
        segment_entries: int = 256,
        sync: str = "batch",
        batch_every: int = 16,
    ) -> None:
        super().__init__(metrics=metrics, name=name, max_entries=max_entries)
        validate_sync_mode(sync)
        if segment_entries < 1:
            raise ValueError(
                f"segment_entries must be >= 1, got {segment_entries}"
            )
        if batch_every < 1:
            raise ValueError(f"batch_every must be >= 1, got {batch_every}")
        self.root = str(root)
        self.segment_entries = segment_entries
        self.sync = sync
        self.batch_every = batch_every
        self.recovered = 0
        self.dropped_corrupt = 0
        os.makedirs(self.root, exist_ok=True)
        #: Write to a fresh segment each process generation, one past
        #: the highest on disk, so a crashed writer's (possibly
        #: truncated) tail segment is never appended to again.
        self._segment_index = self._next_segment_index()
        self._segment_fh = None
        self._segment_count = 0
        self._since_sync = 0

    # -- segment bookkeeping -------------------------------------------------

    def _segment_paths(self) -> List[str]:
        """Existing segment files, oldest first (generation order)."""
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        segments = sorted(
            n for n in names
            if n.startswith(_SEGMENT_PREFIX) and n.endswith(_SEGMENT_SUFFIX)
        )
        return [os.path.join(self.root, n) for n in segments]

    def _next_segment_index(self) -> int:
        indices = []
        for path in self._segment_paths():
            stem = os.path.basename(path)[
                len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)
            ]
            try:
                indices.append(int(stem))
            except ValueError:
                continue
        return max(indices, default=-1) + 1

    def _spill(self, key: str, value: object) -> None:
        """Append one verified-on-load entry to the current segment."""
        if self._segment_fh is None or self._segment_count >= self.segment_entries:
            if self._segment_fh is not None:
                if self.sync != "off":
                    os.fsync(self._segment_fh.fileno())
                self._segment_fh.close()
                self._segment_index += 1
            path = os.path.join(
                self.root,
                f"{_SEGMENT_PREFIX}{self._segment_index:05d}{_SEGMENT_SUFFIX}",
            )
            # Unbuffered: one entry is one write(2) of one whole line.
            self._segment_fh = open(path, "ab", buffering=0)
            self._segment_count = 0
        self._segment_fh.write(encode_record({"key": key, "value": value}))
        self._segment_count += 1
        if self.sync == "always":
            os.fsync(self._segment_fh.fileno())
            self._since_sync = 0
        elif self.sync == "batch":
            self._since_sync += 1
            if self._since_sync >= self.batch_every:
                os.fsync(self._segment_fh.fileno())
                self._since_sync = 0

    # -- overrides -----------------------------------------------------------

    def put(self, key: Hashable, value: object) -> None:
        """Store and spill; keys must be provenance sha strings."""
        if not isinstance(key, str):
            raise TypeError(
                "PersistentResultStore keys must be provenance sha strings, "
                f"got {type(key).__name__}"
            )
        super().put(key, value)
        self._spill(key, value)

    def clear(self) -> None:
        """Wipe memory *and* every on-disk segment (books one clear)."""
        super().clear()
        if self._segment_fh is not None:
            self._segment_fh.close()
            self._segment_fh = None
            self._segment_count = 0
        for path in self._segment_paths():
            try:
                os.unlink(path)
            except OSError:
                pass
        self._segment_index = 0
        self._since_sync = 0

    def close(self) -> None:
        """Final fsync (unless ``sync=off``) and close; idempotent."""
        if self._segment_fh is not None:
            if self.sync != "off" and self._since_sync:
                os.fsync(self._segment_fh.fileno())
            self._segment_fh.close()
            self._segment_fh = None

    # -- recovery ------------------------------------------------------------

    def load(self) -> Tuple[int, int]:
        """Warm memory from segments; ``(recovered, dropped_corrupt)``.

        Every line is CRC-verified; corrupt or truncated entries are
        dropped and counted (``<name>.dropped_corrupt``), never served.
        Later segments win for duplicate keys.  Loading neither touches
        the hit/miss counters nor re-spills (the entries are already
        durable), but the LRU bound still applies: recovered entries
        enter in segment order, so the most recently persisted survive
        eviction.
        """
        entries: "dict[str, object]" = {}
        dropped = 0
        for path in self._segment_paths():
            with open(path, "rb") as fh:
                for raw in fh:
                    payload = decode_record(raw)
                    if (
                        payload is None
                        or not isinstance(payload.get("key"), str)
                        or "value" not in payload
                    ):
                        dropped += 1
                        continue
                    entries[payload["key"]] = payload["value"]
        with self._lock:
            for key, value in entries.items():
                self._results[key] = value
                self._results.move_to_end(key)
            self._evict()
            self.metrics.gauge(f"{self.name}.size").set(len(self._results))
        recovered = len(entries)
        self.recovered += recovered
        self.dropped_corrupt += dropped
        if recovered:
            self.metrics.counter(f"{self.name}.recovered").inc(recovered)
        if dropped:
            self.metrics.counter(f"{self.name}.dropped_corrupt").inc(dropped)
        return recovered, dropped

    # -- observation ---------------------------------------------------------

    def cache_stats(self) -> dict:
        """Base telemetry plus the persistence/recovery counters."""
        stats = super().cache_stats()
        stats.update({
            "persistent": True,
            "sync": self.sync,
            "segments": len(self._segment_paths()),
            "recovered": self.recovered,
            "dropped_corrupt": self.dropped_corrupt,
        })
        return stats
