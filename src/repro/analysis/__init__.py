"""Static analyses supporting the COMP transformations.

The paper's transforms each rest on a specific analysis result:

* data streaming needs every array index in the loop to be affine in the
  loop variable (:mod:`repro.analysis.array_access`),
* offload clause inference needs the live-in / live-out sets of the loop
  (:mod:`repro.analysis.liveness`, :mod:`repro.analysis.offload`),
* regularization needs the irregular-access classification and the
  guard-freedom check (:mod:`repro.analysis.array_access`),
* loop splitting needs the cross-iteration dependence check
  (:mod:`repro.analysis.dependence`), and
* the memory-usage optimization needs per-loop device footprints
  (:mod:`repro.analysis.footprint`).
"""

from repro.analysis.array_access import (
    AccessKind,
    ArrayAccess,
    LinearForm,
    classify_accesses,
    extract_linear_form,
    is_streamable,
)
from repro.analysis.dependence import check_parallel_loop, is_parallel_loop
from repro.analysis.footprint import clause_bytes, offload_footprint
from repro.analysis.liveness import LivenessInfo, analyze_loop_liveness
from repro.analysis.offload import infer_offload_pragma, insert_offload_pragmas
from repro.analysis.symbols import Scope, SymbolTable, build_symbol_table, sizeof_type

__all__ = [
    "AccessKind",
    "ArrayAccess",
    "LinearForm",
    "classify_accesses",
    "extract_linear_form",
    "is_streamable",
    "check_parallel_loop",
    "is_parallel_loop",
    "clause_bytes",
    "offload_footprint",
    "LivenessInfo",
    "analyze_loop_liveness",
    "infer_offload_pragma",
    "insert_offload_pragmas",
    "Scope",
    "SymbolTable",
    "build_symbol_table",
    "sizeof_type",
]
