"""Ablation: thread reuse under varying kernel-launch overhead K.

Thread reuse (Section III-C) replaces per-block kernel launches with COI
signals.  Its value grows linearly with K: at the paper's millisecond-
class offload latency it is essential; with a hypothetical microsecond
launch it would hardly matter.
"""

import dataclasses

from benchmarks.conftest import emit
from repro.experiments.report import render_table
from repro.hardware.spec import MachineSpec, MicSpec
from repro.runtime.executor import Machine
from repro.transforms.streaming import StreamingOptions
from repro.workloads.suite import get_workload

LAUNCH_OVERHEADS = [1.0e-5, 1.0e-4, 1.0e-3, 5.0e-3]


def run_variant(thread_reuse: bool, launch_overhead: float) -> float:
    workload = get_workload("kmeans")
    workload.plan = dataclasses.replace(
        workload.plan,
        streaming_options=StreamingOptions(
            num_blocks=10, thread_reuse=thread_reuse
        ),
    )
    spec = MachineSpec(
        mic=MicSpec(kernel_launch_overhead=launch_overhead)
    )
    machine = Machine(spec=spec, scale=workload.sim_scale)
    return workload.run("opt", machine=machine).time


def test_thread_reuse_vs_launch_overhead(benchmark):
    def sweep():
        return {
            k: (run_variant(False, k), run_variant(True, k))
            for k in LAUNCH_OVERHEADS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    gains = {}
    for k, (without, with_reuse) in results.items():
        gains[k] = without / with_reuse
        rows.append(
            [f"{k*1000:.2f} ms", f"{without*1000:.2f} ms",
             f"{with_reuse*1000:.2f} ms", f"{gains[k]:.2f}x"]
        )
    emit(render_table(["K", "no reuse", "thread reuse", "gain"], rows))
    # Below the COI signal cost (~20us) reuse breaks even; its benefit
    # then grows monotonically with K.
    assert all(g >= 0.98 for g in gains.values())
    ordered = [gains[k] for k in LAUNCH_OVERHEADS]
    assert ordered == sorted(ordered)
    assert gains[LAUNCH_OVERHEADS[-1]] > 1.5
