"""Tests for device compute timing, PCIe transfers, cache and memory models."""

import pytest

from repro.errors import DeviceOutOfMemory, HardwareError
from repro.hardware.cache import locality_factor
from repro.hardware.device import ComputeDevice, OpCounters
from repro.hardware.memory import DeviceMemoryManager
from repro.hardware.pcie import dma_transfer_time, paged_transfer_time
from repro.hardware.spec import GB, CpuSpec, MicSpec, PcieSpec, paper_machine


class TestSpecs:
    def test_paper_machine_values(self):
        machine = paper_machine()
        assert machine.mic.cores == 61
        assert machine.mic.threads_used == 200
        assert machine.mic.memory_capacity == 8 * int(GB)
        assert machine.cpu.cores == 8
        assert machine.cpu.clock_ghz == 2.2

    def test_single_mic_thread_slower_than_cpu_thread(self):
        """Section II-B: 'the performance of a single MIC thread is much
        worse than a single CPU thread'."""
        assert MicSpec().thread_flops < 0.2 * CpuSpec().thread_flops

    def test_usable_memory_below_capacity(self):
        mic = MicSpec()
        assert mic.usable_memory < mic.memory_capacity


class TestComputeTime:
    def setup_method(self):
        self.mic = ComputeDevice(MicSpec())
        self.cpu = ComputeDevice(CpuSpec())

    def test_more_work_takes_longer(self):
        small = OpCounters(flops=1e6)
        large = OpCounters(flops=1e8)
        assert self.mic.compute_time(large, 1e6) > self.mic.compute_time(small, 1e6)

    def test_parallel_faster_than_serial(self):
        work = OpCounters(flops=1e9)
        parallel = self.mic.compute_time(work, parallel_iterations=1e6)
        serial = self.mic.compute_time(work, serial=True)
        assert parallel < serial / 50

    def test_vectorization_speedup(self):
        work = OpCounters(flops=1e9)
        scalar = self.mic.compute_time(work, 1e6, vectorizable=False)
        vector = self.mic.compute_time(work, 1e6, vectorizable=True)
        assert 3.0 < scalar / vector < 16.0

    def test_memory_bound_loop_gains_little_from_simd(self):
        work = OpCounters(flops=1e6, loads=1e8, bytes_read=4e9)
        scalar = self.mic.compute_time(work, 1e6, vectorizable=False)
        vector = self.mic.compute_time(work, 1e6, vectorizable=True)
        # The memory term dominates both; vectorization only removes the
        # (tiny) serialized compute term on the in-order cores.
        assert vector <= scalar
        assert vector == pytest.approx(scalar, rel=0.01)

    def test_in_order_scalar_serializes_memory_and_compute(self):
        work = OpCounters(flops=4e9, loads=1e9, bytes_read=4e9)
        mic_time = self.mic.compute_time(work, 1e7, vectorizable=False)
        t_comp = work.flops / (200 * self.mic.spec.thread_flops)
        t_mem = work.bytes_read / self.mic.spec.mem_bandwidth
        assert mic_time == pytest.approx(t_comp + t_mem)

    def test_out_of_order_cpu_overlaps(self):
        work = OpCounters(flops=4e9, loads=1e9, bytes_read=4e9)
        cpu_time = self.cpu.compute_time(work, 1e7, vectorizable=False)
        spec = self.cpu.spec
        t_comp = work.flops / (spec.threads_used * spec.thread_flops)
        t_mem = work.bytes_read / spec.mem_bandwidth
        assert cpu_time == pytest.approx(max(t_comp, t_mem))

    def test_irregular_access_penalty(self):
        regular = OpCounters(loads=1e8, bytes_read=4e9)
        irregular = OpCounters(
            loads=1e8, bytes_read=4e9, irregular_accesses=1e8
        )
        assert self.mic.compute_time(irregular, 1e6) > 5 * self.mic.compute_time(
            regular, 1e6
        )

    def test_low_trip_count_limits_threads(self):
        assert self.mic.effective_threads(10) <= 10
        assert self.mic.effective_threads(1e9) == 200

    def test_cpu_beats_mic_on_serial_code(self):
        """Native-mode motivation: serial code belongs on the host."""
        work = OpCounters(flops=1e9)
        assert self.cpu.compute_time(work, serial=True) < self.mic.compute_time(
            work, serial=True
        )

    def test_mic_beats_cpu_on_wide_parallel_vector_work(self):
        """Intrinsically parallel + vectorizable loops are the MIC's case."""
        work = OpCounters(flops=1e11)
        mic_t = self.mic.compute_time(work, 1e7, vectorizable=True)
        cpu_t = self.cpu.compute_time(work, 1e7, vectorizable=True)
        assert mic_t < cpu_t

    def test_zero_work_zero_time(self):
        assert self.mic.compute_time(OpCounters(), 100) == 0.0


class TestPcie:
    def test_latency_floor(self):
        pcie = PcieSpec()
        assert dma_transfer_time(1, pcie) >= pcie.latency

    def test_bandwidth_dominates_large_transfers(self):
        pcie = PcieSpec()
        t = dma_transfer_time(6 * GB, pcie)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_zero_bytes_free(self):
        assert dma_transfer_time(0, PcieSpec()) == 0.0
        assert paged_transfer_time(0, PcieSpec()) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            dma_transfer_time(-1, PcieSpec())
        with pytest.raises(ValueError):
            paged_transfer_time(-1, PcieSpec())

    def test_paged_much_slower_than_dma(self):
        """The Section V observation that motivates the arena mechanism."""
        pcie = PcieSpec()
        nbytes = 83 * (1 << 20)  # ferret's 83 MB of shared data
        assert paged_transfer_time(nbytes, pcie) > 5 * dma_transfer_time(nbytes, pcie)

    def test_paged_cost_scales_with_pages(self):
        pcie = PcieSpec()
        one = paged_transfer_time(pcie.page_bytes, pcie)
        ten = paged_transfer_time(10 * pcie.page_bytes, pcie)
        assert ten == pytest.approx(10 * one)


class TestLocalityFactor:
    def test_regular_is_full_bandwidth(self):
        assert locality_factor(0.0) == 1.0

    def test_fully_irregular_is_element_over_line(self):
        assert locality_factor(1.0, element_bytes=4, line_bytes=64) == pytest.approx(
            4 / 64
        )

    def test_monotonic(self):
        values = [locality_factor(f / 10) for f in range(11)]
        assert values == sorted(values, reverse=True)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            locality_factor(1.5)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            locality_factor(0.5, element_bytes=128, line_bytes=64)


class TestDeviceMemory:
    def test_allocate_and_free(self):
        mm = DeviceMemoryManager(capacity=1000)
        mm.allocate("A", 400)
        assert mm.in_use == 400
        mm.free("A")
        assert mm.in_use == 0

    def test_oom_raises(self):
        mm = DeviceMemoryManager(capacity=1000)
        mm.allocate("A", 800)
        with pytest.raises(DeviceOutOfMemory):
            mm.allocate("B", 300)

    def test_peak_tracking(self):
        mm = DeviceMemoryManager(capacity=1000)
        mm.allocate("A", 600)
        mm.free("A")
        mm.allocate("B", 100)
        assert mm.peak == 600

    def test_scale_applied(self):
        mm = DeviceMemoryManager(capacity=10_000, scale=10.0)
        mm.allocate("A", 100)
        assert mm.in_use == 1000

    def test_scaled_oom(self):
        mm = DeviceMemoryManager(capacity=1000, scale=100.0)
        with pytest.raises(DeviceOutOfMemory):
            mm.allocate("A", 11)

    def test_realloc_grows_in_place(self):
        mm = DeviceMemoryManager(capacity=1000)
        mm.allocate("A", 100)
        mm.allocate("A", 300)
        assert mm.in_use == 300
        assert mm.alloc_count == 1

    def test_realloc_never_shrinks(self):
        mm = DeviceMemoryManager(capacity=1000)
        mm.allocate("A", 300)
        mm.allocate("A", 100)
        assert mm.size_of("A") == 300

    def test_free_unknown_raises(self):
        with pytest.raises(HardwareError):
            DeviceMemoryManager(capacity=10).free("nope")

    def test_free_all(self):
        mm = DeviceMemoryManager(capacity=1000)
        mm.allocate("A", 100)
        mm.allocate("B", 100)
        mm.free_all()
        assert mm.in_use == 0
        assert not mm.holds("A")
