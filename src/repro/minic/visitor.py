"""Generic visitor / transformer infrastructure for MiniC ASTs.

Follows the shape of ``ast.NodeVisitor`` / ``ast.NodeTransformer`` from the
standard library: subclasses define ``visit_<ClassName>`` methods and fall
back to :meth:`generic_visit`.  The transformer rebuilds child lists so a
``visit_*`` method may return

* a replacement node,
* ``None`` to delete a statement from its containing list, or
* a list of nodes to splice multiple statements in place of one
  (streaming replaces one loop with allocations + transfers + a nest).
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Iterator, List, Optional, Union

from repro.minic import ast_nodes as ast


def walk(node: ast.Node) -> Iterator[ast.Node]:
    """Yield *node* and all descendants, depth-first pre-order."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(list(current.children())))


def clone(node: ast.Node) -> ast.Node:
    """Deep-copy an AST node."""
    return copy.deepcopy(node)


class NodeVisitor:
    """Read-only traversal with per-class dispatch."""

    def visit(self, node: ast.Node) -> object:
        """Dispatch on the node's class, falling back to generic_visit."""
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: ast.Node) -> object:
        """Visit every child node."""
        for child in node.children():
            self.visit(child)
        return None


class NodeTransformer:
    """Rebuild-in-place traversal with per-class dispatch.

    ``visit`` returns the (possibly replaced) node.  List-valued returns
    are only legal where the parent holds the child in a list field.
    """

    def visit(
        self, node: ast.Node
    ) -> Union[ast.Node, List[ast.Node], None]:
        """Dispatch and return the (possibly replaced) node."""
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: ast.Node) -> ast.Node:
        """Rebuild children, honouring delete/splice returns."""
        for f in dataclasses.fields(node):
            value = getattr(node, f.name)
            if isinstance(value, ast.Node):
                replacement = self.visit(value)
                if isinstance(replacement, list):
                    raise TypeError(
                        f"cannot splice a list into scalar field "
                        f"{type(node).__name__}.{f.name}"
                    )
                setattr(node, f.name, replacement)
            elif isinstance(value, list):
                new_items: List[object] = []
                for item in value:
                    if not isinstance(item, ast.Node):
                        new_items.append(item)
                        continue
                    replacement = self.visit(item)
                    if replacement is None:
                        continue
                    if isinstance(replacement, list):
                        new_items.extend(replacement)
                    else:
                        new_items.append(replacement)
                setattr(node, f.name, new_items)
        return node


class _IdentRenamer(NodeTransformer):
    def __init__(self, mapping: dict):
        self.mapping = mapping

    def visit_Ident(self, node: ast.Ident) -> ast.Node:
        replacement = self.mapping.get(node.name)
        if replacement is None:
            return node
        if isinstance(replacement, ast.Expr):
            return clone(replacement)
        return ast.Ident(replacement)


def substitute(node: ast.Node, mapping: dict) -> ast.Node:
    """Return a copy of *node* with identifiers renamed / replaced.

    *mapping* maps identifier names to either new names (str) or
    replacement expressions (:class:`~repro.minic.ast_nodes.Expr`).
    """
    return _IdentRenamer(mapping).visit(clone(node))


def find_loops(node: ast.Node) -> List[ast.For]:
    """Return all for loops under *node* in pre-order."""
    return [n for n in walk(node) if isinstance(n, ast.For)]


def find_offload_loops(node: ast.Node) -> List[ast.For]:
    """Return for loops annotated with an offload pragma."""
    return [
        loop
        for loop in find_loops(node)
        if any(isinstance(p, ast.OffloadPragma) for p in loop.pragmas)
    ]


def get_pragma(loop: ast.For, kind: type) -> Optional[ast.Pragma]:
    """Return the first pragma of *kind* on *loop*, or None."""
    for pragma in loop.pragmas:
        if isinstance(pragma, kind):
            return pragma
    return None
