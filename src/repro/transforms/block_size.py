"""The analytic block-count model of Section III-B.

Given a loop with total data transfer time D, total computation time C,
kernel launch overhead K and N blocks, the streamed execution time is

    T(N) = D/N + max(C/N + K, D/N) * (N - 1) + C/N + K

— the first block's transfer, the steady-state pipeline, and the last
block's compute.  The paper derives the optimum:

* compute-bound pipelines (C/N + K > D/N): N* = sqrt(D / K);
* transfer-bound pipelines (C/N + K <= D/N): N* = (D - C) / K.

and reports that in practice "the best number of blocks for most
benchmarks is between 10 and 40".
"""

from __future__ import annotations

import math


def unstreamed_time(transfer: float, compute: float, launch_overhead: float) -> float:
    """Execution time without streaming: D + K + C."""
    _validate(transfer, compute, launch_overhead)
    return transfer + launch_overhead + compute


def streaming_time(
    transfer: float, compute: float, launch_overhead: float, blocks: int
) -> float:
    """The paper's T(N) formula for a streamed loop."""
    _validate(transfer, compute, launch_overhead)
    if blocks < 1:
        raise ValueError(f"block count must be >= 1, got {blocks}")
    d_block = transfer / blocks
    c_block = compute / blocks + launch_overhead
    return d_block + max(c_block, d_block) * (blocks - 1) + c_block


def optimal_block_count(
    transfer: float,
    compute: float,
    launch_overhead: float,
    min_blocks: int = 1,
    max_blocks: int = 1024,
) -> int:
    """The closed-form N*, clamped and rounded to the best neighbour.

    The two closed forms come from minimizing T(N) in each regime; we
    evaluate the integer neighbours of the candidate (plus the regime
    boundary) and return the argmin, which also covers corner cases like
    K = 0 (stream as finely as allowed) and D = 0 (no benefit: N = 1).
    """
    _validate(transfer, compute, launch_overhead)
    if transfer == 0:
        return min_blocks
    if launch_overhead <= 0:
        return max_blocks

    candidates = {min_blocks, max_blocks}
    # Compute-bound optimum.
    candidates.add(int(math.sqrt(transfer / launch_overhead)))
    # Transfer-bound optimum.
    candidates.add(int((transfer - compute) / launch_overhead))
    expanded = set()
    for n in candidates:
        expanded.update({n - 1, n, n + 1})
    feasible = [n for n in expanded if min_blocks <= n <= max_blocks]
    if not feasible:
        feasible = [min_blocks]
    return min(
        feasible,
        key=lambda n: (streaming_time(transfer, compute, launch_overhead, n), n),
    )


def _validate(transfer: float, compute: float, launch_overhead: float) -> None:
    if transfer < 0 or compute < 0 or launch_overhead < 0:
        raise ValueError("times must be non-negative")
