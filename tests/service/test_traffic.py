"""Tests for traffic generation, the virtual queue model, and replay."""

import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import pytest

from repro.service.traffic import (
    Arrival,
    TraceSpec,
    generate_trace,
    replay_trace,
    simulate_queue,
    summary_to_json,
)

#: A cheap trace: interactive runs only (small arrays, no bench suites),
#: sized for unit tests.
CHEAP = TraceSpec(
    seed=11,
    requests=10,
    classes=(("run", 1.0),),
    base_rate=4.0,
)

#: A chaos trace mixing runs with fault-campaign cells.
CHAOS = TraceSpec(
    seed=3,
    requests=6,
    classes=(("run", 1.0), ("faults", 1.0)),
    scenarios=1,
    rates=(("kernel", 0.05),),
)


class TestSpec:
    def test_roundtrip(self):
        spec = replace(CHAOS, policy=(("max_retries", 4),))
        assert TraceSpec.from_dict(spec.as_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            TraceSpec.from_dict({"seed": 1, "bogus": 2})

    def test_validation(self):
        with pytest.raises(ValueError, match="requests"):
            TraceSpec(requests=0)
        with pytest.raises(ValueError, match="model_servers"):
            TraceSpec(model_servers=0)
        with pytest.raises(ValueError, match="job class"):
            TraceSpec(classes=(("mystery", 1.0),))

    def test_file_roundtrip(self, tmp_path):
        from repro.service.traffic import load_trace_spec, save_trace_spec

        path = tmp_path / "trace.json"
        save_trace_spec(str(path), CHEAP)
        assert load_trace_spec(str(path)) == CHEAP


class TestGeneration:
    def test_deterministic(self):
        assert generate_trace(CHAOS) == generate_trace(CHAOS)

    def test_seed_changes_trace(self):
        other = replace(CHAOS, seed=4)
        assert generate_trace(CHAOS) != generate_trace(other)

    def test_arrivals_are_ordered_and_typed(self):
        arrivals = generate_trace(CHAOS)
        assert len(arrivals) == CHAOS.requests
        times = [a.t for a in arrivals]
        assert times == sorted(times)
        assert all(a.kind in ("run", "faults") for a in arrivals)
        for arrival in arrivals:
            arrival.spec.validate()

    def test_tenant_skew(self):
        spec = replace(CHEAP, requests=120, tenants=4, tenant_skew=1.5)
        arrivals = generate_trace(spec)
        counts = {}
        for arrival in arrivals:
            counts[arrival.tenant] = counts.get(arrival.tenant, 0) + 1
        # Zipf-skewed: the rank-0 tenant dominates the tail rank.
        assert counts["t0"] > counts.get("t3", 0)

    def test_bursts_modulate_rate(self):
        smooth = replace(CHEAP, requests=200, burst_factor=1.0)
        bursty = replace(CHEAP, requests=200, burst_factor=20.0)
        # A burst factor compresses total duration: same request count
        # arrives in less virtual time than the unmodulated process.
        assert generate_trace(bursty)[-1].t < generate_trace(smooth)[-1].t

    def test_class_priorities(self):
        arrivals = generate_trace(CHAOS)
        for arrival in arrivals:
            assert arrival.priority == (0 if arrival.kind == "run" else 2)


def _arrival(index, t, priority=1):
    return Arrival(
        index=index, t=t, tenant="t0", kind="run", priority=priority,
        spec=None,
    )


class TestQueueModel:
    def test_single_server_serializes(self):
        arrivals = [_arrival(0, 0.0), _arrival(1, 0.0)]
        records = simulate_queue(arrivals, [1.0, 1.0], 1, high_water=8)
        assert records[0]["queue_latency"] == 0.0
        assert records[1]["queue_latency"] == 1.0
        assert records[1]["finished"] == 2.0

    def test_two_servers_run_in_parallel(self):
        arrivals = [_arrival(0, 0.0), _arrival(1, 0.0)]
        records = simulate_queue(arrivals, [1.0, 1.0], 2, high_water=8)
        assert [r["queue_latency"] for r in records] == [0.0, 0.0]

    def test_priority_jumps_the_queue(self):
        arrivals = [
            _arrival(0, 0.0, priority=1),   # occupies the server
            _arrival(1, 0.1, priority=2),   # batch, waits
            _arrival(2, 0.2, priority=0),   # interactive, overtakes
        ]
        records = simulate_queue(arrivals, [1.0, 1.0, 1.0], 1, high_water=8)
        assert records[2]["started"] < records[1]["started"]

    def test_rejects_past_high_water(self):
        arrivals = [_arrival(i, 0.0) for i in range(5)]
        records = simulate_queue(arrivals, [1.0] * 5, 1, high_water=2)
        rejected = [r for r in records if r.get("rejected")]
        assert len(rejected) == 2  # one running, two waiting, rest shed
        assert all(r["retry_after"] > 0 for r in rejected)

    def test_deterministic(self):
        arrivals = [_arrival(i, i * 0.1) for i in range(6)]
        times = [0.5, 0.1, 0.4, 0.2, 0.3, 0.6]
        a = simulate_queue(arrivals, times, 2, high_water=3)
        b = simulate_queue(arrivals, times, 2, high_water=3)
        assert a == b


class TestReplay:
    def test_summary_byte_identical_across_repeats(self):
        s1 = replay_trace(CHEAP, workers=0)
        s2 = replay_trace(CHEAP, workers=0)
        assert summary_to_json(s1) == summary_to_json(s2)

    def test_summary_byte_identical_across_worker_counts(self):
        # The acceptance invariant: worker count is an execution detail,
        # never an observable of the replay document.
        s_inline = replay_trace(CHEAP, workers=0)
        s_pooled = replay_trace(
            CHEAP, workers=3, pool_cls=ThreadPoolExecutor
        )
        assert summary_to_json(s_inline) == summary_to_json(s_pooled)

    def test_summary_is_json_and_complete(self):
        summary = replay_trace(CHEAP, workers=0)
        parsed = json.loads(summary_to_json(summary))
        assert parsed["schema"] == "repro.service.replay/1"
        assert len(parsed["arrivals"]) == CHEAP.requests
        assert parsed["queue"]["unique_jobs"] == len(parsed["jobs"])
        assert parsed["ok"]
        admitted = [a for a in parsed["arrivals"] if not a["rejected"]]
        for row in admitted:
            assert row["key"] in parsed["jobs"]
            assert row["queue_latency"] >= 0

    def test_duplicates_marked_by_arrival_order(self):
        summary = replay_trace(CHEAP, workers=0)
        seen = set()
        for row in summary["arrivals"]:
            assert row["duplicate"] == (row["key"] in seen)
            seen.add(row["key"])

    def test_chaos_replay_reports_fault_totals(self):
        summary = replay_trace(CHAOS, workers=0)
        assert summary["ok"]
        kinds = {a["kind"] for a in summary["arrivals"]}
        assert "faults" in kinds
        assert "total_injected" in summary["faults"]

    def test_rejections_modelled_under_pressure(self):
        crunch = replace(
            CHEAP, requests=12, base_rate=2000.0, burst_factor=1.0,
            model_servers=1, max_depth=4, high_water=2,
        )
        summary = replay_trace(crunch, workers=0)
        assert summary["queue"]["rejected"] > 0
        rejected = [a for a in summary["arrivals"] if a["rejected"]]
        assert all("retry_after" in a for a in rejected)
        assert all("queue_latency" not in a for a in rejected)

    def test_traced_replay_writes_perfetto_file(self, tmp_path):
        spec = replace(CHEAP, requests=4, traced=True)
        out = tmp_path / "replay-trace.json"
        replay_trace(spec, workers=0, trace_out=str(out))
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_trace_out_requires_traced_spec(self, tmp_path):
        with pytest.raises(ValueError, match="traced"):
            replay_trace(
                CHEAP, workers=0, trace_out=str(tmp_path / "x.json")
            )


class FlakyExecutor(ThreadPoolExecutor):
    """Executor double that breaks like a killed process-pool worker.

    The first ``fails`` submissions raise ``BrokenProcessPool`` — the
    exact failure a SIGKILLed worker surfaces — then the executor (and
    every replacement the supervisor builds, since the counter is
    class-level) behaves normally.
    """

    fails = 0

    def submit(self, fn, *args, **kwargs):
        cls = type(self)
        if cls.fails > 0:
            cls.fails -= 1
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool("simulated worker kill")
        return super().submit(fn, *args, **kwargs)


class TestChaosReplay:
    def test_worker_crashes_leave_summary_byte_identical(self):
        # The tentpole invariant: kill workers mid-replay, supervisor
        # rebuilds and redispatches, and the summary still comes out
        # byte-for-byte equal to an undisturbed inline run.
        from repro.obs.metrics import MetricsRegistry

        baseline = replay_trace(CHEAP, workers=0)
        FlakyExecutor.fails = 2
        metrics = MetricsRegistry()
        try:
            disturbed = replay_trace(
                CHEAP, workers=2, pool_cls=FlakyExecutor, metrics=metrics
            )
        finally:
            FlakyExecutor.fails = 0
        assert summary_to_json(disturbed) == summary_to_json(baseline)
        counters = metrics.snapshot()["counters"]
        assert counters["service.supervisor.worker_failures"] == 2
        assert counters["service.supervisor.restarts"] >= 1
        # Every arrival is accounted for exactly once: nothing lost to
        # the crash, nothing double-counted by the redispatch.
        assert len(disturbed["arrivals"]) == CHEAP.requests
        assert counters.get("service.supervisor.quarantined", 0) == 0

    def test_state_dir_rerun_recovers_and_stays_byte_identical(self, tmp_path):
        # Durable replay: a rerun on a populated state dir warms the
        # result store (zero recompute for finished jobs) and the
        # summary stays byte-identical to a stateless run — recovery is
        # telemetry, never part of the document.
        from repro.obs.metrics import MetricsRegistry

        state = str(tmp_path / "state")
        baseline = replay_trace(CHEAP, workers=0)
        first = replay_trace(CHEAP, workers=0, state_dir=state)
        metrics = MetricsRegistry()
        second = replay_trace(
            CHEAP, workers=0, state_dir=state, metrics=metrics
        )
        assert summary_to_json(first) == summary_to_json(baseline)
        assert summary_to_json(second) == summary_to_json(baseline)
        counters = metrics.snapshot()["counters"]
        assert counters["service.durability.recovered_results"] >= 1
        assert counters.get("service.durability.dropped_corrupt", 0) == 0
        # Every unique job served from the warmed store: no recompute.
        unique = baseline["queue"]["unique_jobs"]
        assert counters["service.store.hits"] >= unique
        assert counters.get("service.store.misses", 0) == 0

    def test_kill_workers_requires_real_pool(self):
        with pytest.raises(ValueError, match="workers"):
            replay_trace(CHEAP, workers=0, kill_workers=1)
        with pytest.raises(ValueError, match="kill_workers"):
            replay_trace(CHEAP, workers=2, kill_workers=-1)


class TestTenantGating:
    def test_rate_limit_gates_hot_tenant_deterministically(self):
        throttled = replace(CHEAP, tenant_rate=0.2, tenant_burst=1.0)
        s1 = replay_trace(throttled, workers=0)
        s2 = replay_trace(throttled, workers=0)
        assert summary_to_json(s1) == summary_to_json(s2)
        iso = s1["isolation"]
        assert iso["gated"] > 0
        assert iso["gated"] == iso["rate_limited"] + iso["circuit_open"]
        gated_rows = [
            a for a in s1["arrivals"]
            if a.get("reject_reason") in ("rate_limited", "circuit_open")
        ]
        assert len(gated_rows) == iso["gated"]
        assert all(a["rejected"] for a in gated_rows)
        assert all(a["retry_after"] >= 0 for a in gated_rows)
        # Tenant buckets reconcile with the per-arrival rows.
        assert sum(t["gated"] for t in s1["tenants"].values()) == iso["gated"]
        assert s1["queue"]["gated"] == iso["gated"]
        assert (
            s1["queue"]["admitted"] + s1["queue"]["rejected"] + iso["gated"]
            == CHEAP.requests
        )

    def test_gating_disabled_by_default(self):
        summary = replay_trace(CHEAP, workers=0)
        assert summary["isolation"]["gated"] == 0
        assert all(
            a.get("reject_reason") != "rate_limited"
            for a in summary["arrivals"]
        )

    def test_gated_arrivals_do_not_count_as_duplicates(self):
        throttled = replace(CHEAP, tenant_rate=0.2, tenant_burst=1.0)
        summary = replay_trace(throttled, workers=0)
        seen = set()
        for row in summary["arrivals"]:
            if row.get("reject_reason") in ("rate_limited", "circuit_open"):
                assert row["duplicate"] is False
                continue
            assert row["duplicate"] == (row["key"] in seen)
            seen.add(row["key"])

    def test_gated_summary_identical_across_worker_counts(self):
        throttled = replace(CHEAP, tenant_rate=0.2, tenant_burst=1.0)
        s_inline = replay_trace(throttled, workers=0)
        s_pooled = replay_trace(
            throttled, workers=3, pool_cls=ThreadPoolExecutor
        )
        assert summary_to_json(s_inline) == summary_to_json(s_pooled)

    def test_isolation_spec_validation(self):
        with pytest.raises(ValueError, match="tenant_rate"):
            TraceSpec(tenant_rate=0.0)
        with pytest.raises(ValueError, match="breaker_failures"):
            TraceSpec(breaker_failures=0)
