"""Execution-trace analysis: where did the time go?

Consumes a machine's :class:`~repro.hardware.event_sim.Timeline` after a
run and answers the questions the paper's evaluation sections ask:

* how much of the makespan is transfer vs. compute vs. idle;
* how much transfer/compute *overlap* the schedule achieved (the quantity
  data streaming exists to create);
* a per-resource utilization summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.hardware.event_sim import Timeline

TRANSFER_RESOURCES = ("dma:h2d", "dma:d2h")
DEVICE_RESOURCE = "mic"


def _intervals(timeline: Timeline, resources: Tuple[str, ...]) -> List[Tuple[float, float]]:
    spans = [
        (entry.start, entry.end)
        for resource in resources
        for entry in timeline.entries(resource)
        if entry.end > entry.start
    ]
    return _merge(sorted(spans))


def _merge(spans: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _covered(spans: List[Tuple[float, float]]) -> float:
    return sum(end - start for start, end in spans)


def _intersect(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> float:
    """Total time covered by both interval sets."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


@dataclass
class TraceSummary:
    """Aggregated view of one execution's timeline."""

    makespan: float
    transfer_busy: float
    device_busy: float
    overlap: float
    utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def overlap_fraction(self) -> float:
        """Share of the hideable work actually hidden.

        At most ``min(transfer, compute)`` can overlap — the longer side
        always pokes out — so the fraction is overlap over that bound:
        0 for a fully serialized schedule (the unoptimized offload model:
        transfer, then compute), approaching 1 when streaming hides the
        entire shorter side.
        """
        bound = min(self.transfer_busy, self.device_busy)
        if bound <= 0:
            return 0.0
        return self.overlap / bound

    @property
    def idle_time(self) -> float:
        """Makespan not covered by either transfers or device work."""
        return max(0.0, self.makespan - self._any_busy)

    _any_busy: float = 0.0


def summarize(timeline: Timeline) -> TraceSummary:
    """Analyze a timeline into busy/overlap/idle components."""
    transfer_spans = _intervals(timeline, TRANSFER_RESOURCES)
    device_spans = _intervals(timeline, (DEVICE_RESOURCE,))
    makespan = timeline.finish_time()
    summary = TraceSummary(
        makespan=makespan,
        transfer_busy=_covered(transfer_spans),
        device_busy=_covered(device_spans),
        overlap=_intersect(transfer_spans, device_spans),
    )
    summary._any_busy = _covered(_merge(sorted(transfer_spans + device_spans)))
    for name, resource in timeline.resources.items():
        busy = timeline.busy_time(name)
        summary.utilization[name] = busy / makespan if makespan else 0.0
    return summary


def render_summary(summary: TraceSummary) -> str:
    """One-paragraph text report of a trace summary."""
    lines = [
        f"makespan            {summary.makespan * 1000:10.3f} ms",
        f"transfer busy       {summary.transfer_busy * 1000:10.3f} ms",
        f"device busy         {summary.device_busy * 1000:10.3f} ms",
        f"transfer/compute overlap {summary.overlap * 1000:6.3f} ms "
        f"({summary.overlap_fraction:.0%} of the hideable side hidden)",
        f"idle                {summary.idle_time * 1000:10.3f} ms",
    ]
    for name in sorted(summary.utilization):
        lines.append(
            f"  {name:<16s} {summary.utilization[name]:6.1%} utilized"
        )
    return "\n".join(lines)
