"""Per-tenant isolation: token-bucket rate limits and circuit breakers.

One hot tenant must not starve everyone else — the Zipf-skewed traces
in :mod:`repro.service.traffic` show exactly that failure shape.  This
module layers two guards *in front of* the shared
:class:`~repro.service.queue.AdmissionQueue`:

* a **token bucket** per tenant caps sustained submission rate while
  allowing short bursts up to the bucket capacity;
* a **circuit breaker** per tenant opens after K consecutive job
  failures, sheds that tenant's load for a cooldown, then lets a single
  half-open probe through — probe success closes the breaker, probe
  failure re-opens it.

Both primitives take the current time as an explicit argument instead of
reading a clock, so the exact same state machines drive the live service
(fed ``time.monotonic()``) and the virtual-time trace replay (fed
arrival timestamps) — which is what keeps replay summaries
byte-deterministic when isolation is enabled.  :class:`TenantGate`
bundles the per-tenant instances, injects the clock, and books metrics.

Rejections are :class:`~repro.service.queue.AdmissionRejected`
subclasses carrying a ``reason`` and the usual deterministic
``retry_after`` hint, so the wire protocol and CLI treat a rate-limited
or circuit-broken tenant exactly like queue backpressure: a normal
response, never a dropped connection.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs.metrics import NULL_METRICS
from repro.service.queue import AdmissionRejected

__all__ = [
    "TokenBucket",
    "CircuitBreaker",
    "TenantGate",
    "TenantRateLimited",
    "TenantCircuitOpen",
]


class TenantRateLimited(AdmissionRejected):
    """A tenant exceeded its admission rate; resubmit after *retry_after*."""

    reason = "rate_limited"

    def __init__(self, tenant: str, retry_after: float):
        self.tenant = tenant
        super().__init__(0, retry_after)
        self.args = (
            f"tenant {tenant!r} over its admission rate; "
            f"retry after {retry_after:.3f}s",
        )


class TenantCircuitOpen(AdmissionRejected):
    """A tenant's circuit breaker is open; resubmit after *retry_after*."""

    reason = "circuit_open"

    def __init__(self, tenant: str, retry_after: float):
        self.tenant = tenant
        super().__init__(0, retry_after)
        self.args = (
            f"tenant {tenant!r} circuit breaker is open; "
            f"retry after {retry_after:.3f}s",
        )


class TokenBucket:
    """A deterministic token bucket: *rate* tokens/second, *burst* capacity.

    The bucket starts full.  Callers pass the current time explicitly;
    given the same sequence of timestamps the bucket makes the same
    sequence of decisions, wall clock or virtual clock alike.
    """

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self.last: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self.last is not None and now > self.last:
            self.tokens = min(
                self.burst, self.tokens + (now - self.last) * self.rate
            )
        self.last = now if self.last is None else max(self.last, now)

    def admit(self, now: float) -> bool:
        """Consume one token at *now* if available."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next whole token accrues (post-reject hint)."""
        deficit = max(0.0, 1.0 - self.tokens)
        return round(deficit / self.rate, 6)


class CircuitBreaker:
    """closed -> open (K consecutive failures) -> half-open probe -> closed.

    While open, :meth:`allow` rejects until *cooldown* seconds have
    passed since the trip; the first allowed call after the cooldown is
    the half-open probe.  A success while half-open closes the breaker;
    a failure re-opens it (and restarts the cooldown).  Like
    :class:`TokenBucket`, time is an explicit argument, so the state
    machine is a pure function of its inputs.
    """

    __slots__ = ("failures", "cooldown", "state", "consecutive", "opened_at",
                 "trips", "probes")

    def __init__(self, failures: int, cooldown: float) -> None:
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {cooldown}")
        self.failures = failures
        self.cooldown = cooldown
        self.state = "closed"
        self.consecutive = 0
        self.opened_at = 0.0
        self.trips = 0
        self.probes = 0

    def allow(self, now: float) -> bool:
        """May a request proceed at *now*?  Transitions open -> half-open."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if now - self.opened_at >= self.cooldown:
                self.state = "half_open"
                self.probes += 1
                return True
            return False
        # Half-open: the probe is already in flight; shed the rest until
        # its outcome is recorded.
        return False

    def record(self, ok: bool, now: float) -> None:
        """Book one executed request's outcome at *now*."""
        if ok:
            self.state = "closed"
            self.consecutive = 0
            return
        self.consecutive += 1
        if self.state == "half_open" or self.consecutive >= self.failures:
            if self.state != "open":
                self.trips += 1
            self.state = "open"
            self.opened_at = now

    def retry_after(self, now: float) -> float:
        """Seconds until the cooldown elapses (0 when not open)."""
        if self.state != "open":
            return 0.0
        return round(max(0.0, self.cooldown - (now - self.opened_at)), 6)


class TenantGate:
    """Per-tenant admission guard: rate limits plus circuit breakers.

    *rate*/*burst* enable the token buckets, *breaker_failures*/
    *breaker_cooldown* the breakers; leaving both ``None`` makes the
    gate a no-op (``enabled`` is False and :meth:`admit` never raises).
    *clock* defaults to ``time.monotonic``; the virtual-time replay
    passes explicit timestamps to :meth:`admit_at`/:meth:`record_at`
    instead.
    """

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: float = 4.0,
        breaker_failures: Optional[int] = None,
        breaker_cooldown: float = 30.0,
        clock=time.monotonic,
        metrics=None,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.breaker_failures = breaker_failures
        self.breaker_cooldown = breaker_cooldown
        self.clock = clock
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._buckets: Dict[str, TokenBucket] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}

    @property
    def enabled(self) -> bool:
        return self.rate is not None or self.breaker_failures is not None

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        if self.rate is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(self.rate, self.burst)
        return bucket

    def breaker(self, tenant: str) -> Optional[CircuitBreaker]:
        if self.breaker_failures is None:
            return None
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = self._breakers[tenant] = CircuitBreaker(
                self.breaker_failures, self.breaker_cooldown
            )
        return breaker

    def admit_at(self, tenant: str, now: float) -> None:
        """Admit or raise at an explicit timestamp (virtual-time path).

        The breaker is consulted before the bucket so an open breaker
        doesn't consume rate tokens the tenant can't use anyway.
        """
        breaker = self.breaker(tenant)
        if breaker is not None and not breaker.allow(now):
            self.metrics.counter("service.tenant.circuit_rejected").inc()
            raise TenantCircuitOpen(tenant, breaker.retry_after(now))
        bucket = self._bucket(tenant)
        if bucket is not None and not bucket.admit(now):
            self.metrics.counter("service.tenant.rate_limited").inc()
            raise TenantRateLimited(tenant, bucket.retry_after())

    def admit(self, tenant: str) -> None:
        """Admit or raise at the injected clock's current time."""
        if self.enabled:
            self.admit_at(tenant, self.clock())

    def record_at(self, tenant: str, ok: bool, now: float) -> None:
        """Book one executed job's outcome at an explicit timestamp."""
        breaker = self.breaker(tenant)
        if breaker is None:
            return
        was_open = breaker.state == "open"
        breaker.record(ok, now)
        if breaker.state == "open" and not was_open:
            self.metrics.counter("service.tenant.breaker_trips").inc()

    def record(self, tenant: str, ok: bool) -> None:
        """Book one executed job's outcome at the injected clock's time."""
        if self.breaker_failures is not None:
            self.record_at(tenant, ok, self.clock())

    def stats(self) -> dict:
        """Per-tenant isolation state, JSON-ready and name-sorted."""
        tenants: Dict[str, dict] = {}
        for name, bucket in self._buckets.items():
            tenants.setdefault(name, {})["tokens"] = round(bucket.tokens, 6)
        for name, breaker in self._breakers.items():
            tenants.setdefault(name, {}).update(
                breaker=breaker.state,
                consecutive_failures=breaker.consecutive,
                trips=breaker.trips,
                probes=breaker.probes,
            )
        return {name: tenants[name] for name in sorted(tenants)}
