"""The MYO shared-memory baseline (page-fault-driven coherence).

Intel MYO implements virtual shared memory "using a scheme similar to page
fault handling.  Shared data structures are copied on the fly at page
level" (Section V).  Three properties make it slow, and all three are in
the model:

* page granularity — every first touch of a page on the device costs a
  fault plus a short, non-streaming copy (:func:`paged_transfer_time`);
* no DMA streaming — the paged bandwidth fraction of the PCIe spec;
* allocation limits — MYO "only supports a limited number of shared
  memory allocations and a limited total size"; exceeding either raises
  :class:`~repro.errors.MyoLimitError`, which is how ferret's 80,298
  runtime allocations fail (Table III).

At each offload boundary the resident set is invalidated (MYO
synchronizes shared data "at the boundary of the offloaded code region"),
so every offload re-faults the pages it touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.errors import MyoLimitError, RuntimeFault
from repro.hardware.pcie import paged_transfer_time
from repro.runtime.coi import CoiRuntime

#: Default MYO limits: allocation slots and total shared bytes.  The paper
#: gives no exact numbers, only that 80,298 allocations exceed the limit
#: while 912 do not; 2^16 slots sits between and matches a plausible
#: fixed-size descriptor table.
DEFAULT_MAX_ALLOCATIONS = 1 << 16
DEFAULT_MAX_TOTAL_BYTES = 512 << 20


@dataclass
class MyoAllocation:
    addr: int
    size: int


@dataclass
class MyoStats:
    allocations: int = 0
    page_faults: int = 0
    bytes_faulted: int = 0
    fault_time: float = 0.0


class MyoRuntime:
    """Simulated MYO: shared malloc + fault-driven device access."""

    def __init__(
        self,
        coi: CoiRuntime,
        max_allocations: int = DEFAULT_MAX_ALLOCATIONS,
        max_total_bytes: int = DEFAULT_MAX_TOTAL_BYTES,
    ):
        self.coi = coi
        self.pcie = coi.spec.pcie
        self.max_allocations = max_allocations
        self.max_total_bytes = max_total_bytes
        self.allocations: Dict[int, MyoAllocation] = {}
        self.total_bytes = 0
        self._next_addr = 1 << 32
        self._resident_pages: Set[int] = set()
        self.stats = MyoStats()

    # -- allocation ------------------------------------------------------------

    def shared_malloc(self, size: int) -> int:
        """``_Offload_shared_malloc``: returns the shared CPU address."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if len(self.allocations) >= self.max_allocations:
            raise MyoLimitError(
                f"MYO allocation limit exceeded "
                f"({self.max_allocations} shared allocations)"
            )
        if self.total_bytes + size > self.max_total_bytes:
            raise MyoLimitError(
                f"MYO total shared size exceeded "
                f"({self.max_total_bytes} bytes)"
            )
        addr = self._next_addr
        # Page-align each allocation, as the page-level protection requires.
        self._next_addr += -(-size // self.pcie.page_bytes) * self.pcie.page_bytes
        self.allocations[addr] = MyoAllocation(addr, size)
        self.total_bytes += size
        self.stats.allocations += 1
        return addr

    # -- device access -------------------------------------------------------------

    def device_access(self, addr: int, size: int = 4) -> None:
        """Touch [addr, addr+size) on the device, faulting pages in."""
        if size <= 0:
            raise RuntimeFault("access size must be positive")
        page_bytes = self.pcie.page_bytes
        first = addr // page_bytes
        last = (addr + size - 1) // page_bytes
        tracer = self.coi.tracer
        for page in range(first, last + 1):
            if page in self._resident_pages:
                continue
            self._resident_pages.add(page)
            self.stats.page_faults += 1
            self.stats.bytes_faulted += page_bytes
            fault_time = paged_transfer_time(page_bytes, self.pcie)
            self.stats.fault_time += fault_time
            # A fault serializes the faulting device thread against the
            # host fault handler; it occupies both the device and the link.
            self.coi.clock.advance(fault_time * self.coi.scale)
            if tracer.enabled:
                metrics = tracer.metrics
                metrics.counter("myo.page_faults").inc()
                metrics.counter("myo.bytes_faulted").inc(float(page_bytes))
                metrics.histogram("myo.fault_seconds").observe(fault_time)

    def offload_boundary(self) -> None:
        """Invalidate residency at an offload region boundary.

        MYO synchronizes shared variables at region boundaries, so the
        next offload faults its working set back in.
        """
        self._resident_pages.clear()
