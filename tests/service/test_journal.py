"""Tests for the write-ahead job journal: framing, corruption, replay.

The satellite contract: recovery must *skip and count* damaged journal
state — truncated final lines, bit-flipped CRCs, duplicate terminal
records, empty files, garbage — never raise, and replaying the same
journal twice must yield identical state (the idempotence property the
hypothesis test checks).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.service.journal import (
    SYNC_MODES,
    TERMINAL_STATES,
    JobJournal,
    decode_record,
    encode_record,
    replay_journal,
    validate_sync_mode,
)


def _write_journal(path, records):
    """A journal holding *records* (accepted/terminal payload dicts)."""
    with open(path, "wb") as fh:
        for payload in records:
            fh.write(encode_record(payload))


def _accepted(key, spec=None):
    return {"record": "accepted", "key": key, "spec": spec or {"kind": "bench"}}


def _terminal(key, status="done"):
    return {"record": "terminal", "key": key, "status": status}


class TestFraming:
    def test_roundtrip(self):
        payload = {"record": "accepted", "key": "a" * 64, "spec": {"n": 1}}
        assert decode_record(encode_record(payload)) == payload

    def test_rejects_truncation(self):
        raw = encode_record({"key": "k"})
        # Any strict prefix loses the newline (and usually CRC bytes):
        # every one must decode to None, never raise.
        for cut in range(len(raw)):
            assert decode_record(raw[:cut]) is None

    def test_rejects_bit_flip(self):
        raw = bytearray(encode_record({"key": "k", "value": 7}))
        raw[len(raw) // 2] ^= 0x01
        assert decode_record(bytes(raw)) is None

    def test_rejects_garbage(self):
        assert decode_record(b"not a journal line\n") is None
        assert decode_record(b"\xff\xfe\x00garbage\n") is None
        assert decode_record(b"00000000 [1,2,3]\n") is None  # non-dict
        assert decode_record(b"zzzzzzzz {}\n") is None  # bad CRC hex

    def test_sync_mode_validation(self):
        for mode in SYNC_MODES:
            assert validate_sync_mode(mode) == mode
        with pytest.raises(ValueError, match="sync mode"):
            validate_sync_mode("sometimes")


class TestJournalWrites:
    def test_append_and_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, sync="always")
        journal.append_accepted("k1", {"kind": "bench"})
        journal.append_accepted("k2", {"kind": "run"})
        journal.append_terminal("k1", "done")
        journal.close()
        replay = replay_journal(path)
        assert set(replay.pending) == {"k2"}
        assert replay.terminal == {"k1": "done"}
        assert replay.records == 3
        assert replay.dropped_corrupt == 0

    def test_rejects_unknown_terminal_status(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        with pytest.raises(ValueError, match="terminal status"):
            journal.append_terminal("k", "exploded")
        journal.close()

    def test_append_after_close_raises(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.close()
        assert journal.closed
        journal.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            journal.append_accepted("k", {})

    def test_sync_modes_equivalent_content(self, tmp_path):
        blobs = []
        for mode in SYNC_MODES:
            path = tmp_path / f"j-{mode}.jsonl"
            journal = JobJournal(path, sync=mode, batch_every=2)
            for i in range(5):
                journal.append_accepted(f"k{i}", {"i": i})
            journal.close()
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1] == blobs[2]

    def test_fsync_cadence_counters(self, tmp_path):
        metrics = MetricsRegistry()
        journal = JobJournal(
            tmp_path / "j.jsonl", sync="batch", batch_every=2, metrics=metrics
        )
        for i in range(5):
            journal.append_accepted(f"k{i}", {})
        journal.close()  # the odd fifth append syncs on close
        counters = metrics.snapshot()["counters"]
        assert counters["service.journal.appends"] == 5
        assert counters["service.journal.fsyncs"] == 3
        assert journal.stats()["appends"] == 5


class TestReplayCorruption:
    def test_missing_file_is_empty(self, tmp_path):
        replay = replay_journal(tmp_path / "absent.jsonl")
        assert replay.pending == {} and replay.terminal == {}
        assert replay.records == 0

    def test_empty_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"")
        replay = replay_journal(path)
        assert replay.pending == {} and replay.dropped_corrupt == 0

    def test_truncated_final_line_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, [_accepted("k1"), _accepted("k2")])
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])  # mid-write crash on the last record
        replay = replay_journal(path)
        assert set(replay.pending) == {"k1"}
        assert replay.dropped_corrupt == 1

    def test_bit_flipped_line_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, [_accepted("k1"), _terminal("k1")])
        raw = bytearray(path.read_bytes())
        raw[5] ^= 0x10  # damage the first line; second stays valid
        path.write_bytes(bytes(raw))
        replay = replay_journal(path)
        assert replay.dropped_corrupt == 1
        # The terminal record survived: k1 is finished, not pending.
        assert replay.terminal == {"k1": "done"}
        assert replay.pending == {}

    def test_duplicate_terminal_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, [
            _accepted("k1"),
            _terminal("k1", "done"),
            _terminal("k1", "failed"),  # at-least-once artifact
            _terminal("k1", "done"),
        ])
        replay = replay_journal(path)
        assert replay.terminal == {"k1": "done"}  # first wins
        assert replay.duplicate_terminals == 2
        assert replay.dropped_corrupt == 0

    def test_accept_after_terminal_does_not_resurrect(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, [
            _accepted("k1"),
            _terminal("k1"),
            _accepted("k1"),  # re-journaled on a post-recovery re-run
        ])
        replay = replay_journal(path)
        assert replay.pending == {}
        assert replay.duplicate_accepts == 1

    def test_unknown_record_shape_counts_corrupt(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_journal(path, [
            {"record": "checkpoint", "epoch": 3},  # future schema
            _accepted("k1"),
            {"record": "terminal", "key": "k1", "status": "eaten"},
        ])
        replay = replay_journal(path)
        assert set(replay.pending) == {"k1"}
        assert replay.dropped_corrupt == 2

    def test_garbage_interleaved_never_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "wb") as fh:
            fh.write(b"\x00\x01\x02 binary junk\n")
            fh.write(encode_record(_accepted("k1")))
            fh.write(b"plain text line\n")
            fh.write(encode_record(_terminal("k1")))
            fh.write(b"\xde\xad\xbe\xef")
        replay = replay_journal(path)
        assert replay.terminal == {"k1": "done"}
        assert replay.dropped_corrupt == 3


_record_strategy = st.one_of(
    st.builds(
        _accepted,
        key=st.sampled_from(["ka", "kb", "kc"]),
        spec=st.dictionaries(
            st.sampled_from(["kind", "seed"]), st.integers(0, 3), max_size=2
        ),
    ),
    st.builds(
        _terminal,
        key=st.sampled_from(["ka", "kb", "kc"]),
        status=st.sampled_from(TERMINAL_STATES),
    ),
)


class TestReplayIdempotence:
    @settings(max_examples=50, deadline=None)
    @given(
        records=st.lists(_record_strategy, max_size=12),
        damage=st.integers(0, 40),
    )
    def test_replaying_twice_yields_identical_state(
        self, tmp_path_factory, records, damage
    ):
        # Replay is a pure function of the file bytes: two replays of
        # the same (arbitrarily damaged) journal must agree exactly.
        path = tmp_path_factory.mktemp("journal") / "j.jsonl"
        _write_journal(path, records)
        raw = bytearray(path.read_bytes())
        if raw and damage:
            raw[damage % len(raw)] ^= 0xFF
        path.write_bytes(bytes(raw[: max(0, len(raw) - damage // 8)]))
        first = replay_journal(path)
        second = replay_journal(path)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
        # And pending/terminal never overlap: a key is one or the other.
        assert not set(first.pending) & set(first.terminal)
