"""cfd (Rodinia): unstructured-grid Euler solver.

Shape: each time step offloads three kernels over the cells — step
factors, fluxes (a regular neighbour stencil in our 1-D surrogate) and
the time integration — moving five state arrays across the bus and
paying three kernel launches per step.  Offload merging hoists the whole
time loop into one device region; the paper measured 27.19x from merging
alone.  Table II: merging applies (27.19x).
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import OptimizationPlan
from repro.transforms.streaming import StreamingOptions
from repro.workloads.base import MiniCWorkload, Table2Row, input_rng

EXEC_CELLS = 448
PAPER_CELLS = 53_000_000  # "53 M data"
STEPS = 30

SOURCE = """
void main() {
    for (int t = 0; t < steps; t++) {
#pragma omp parallel for
        for (int i = 0; i < ncells; i++) {
            float speed = sqrt(momx[i] * momx[i] + momy[i] * momy[i])
                / (density[i] + 0.001);
            factor[i] = 0.5 / (speed + 1.0);
        }
#pragma omp parallel for
        for (int i = 0; i < ncells; i++) {
            if (i > 0 && i < ncells - 1) {
                flux[i] = 0.5 * (density[i - 1] - 2.0 * density[i]
                    + density[i + 1]) + 0.25 * (energy[i - 1] - energy[i + 1]);
            } else {
                flux[i] = 0.0;
            }
        }
#pragma omp parallel for
        for (int i = 0; i < ncells; i++) {
            density[i] = density[i] + factor[i] * flux[i];
            energy[i] = energy[i] * 0.999 + flux[i] * 0.001;
            momx[i] = momx[i] * 0.998;
            momy[i] = momy[i] * 0.998;
        }
    }
}
"""


def make_arrays(seed=None):
    """Build the Euler solver benchmark's executed-scale input arrays."""
    rng = input_rng(seed, 23)
    n = EXEC_CELLS
    return {
        "density": (rng.random(n) + 1.0).astype(np.float32),
        "energy": (rng.random(n) + 2.0).astype(np.float32),
        "momx": rng.random(n).astype(np.float32),
        "momy": rng.random(n).astype(np.float32),
        "factor": np.zeros(n, dtype=np.float32),
        "flux": np.zeros(n, dtype=np.float32),
    }


def make() -> MiniCWorkload:
    """Construct the cfd workload instance."""
    return MiniCWorkload(
        name="cfd",
        source=SOURCE,
        table2=Table2Row(
            suite="Rodinia",
            paper_input="53 M data",
            kloc=0.12,
            merging=27.19,
        ),
        make_arrays=make_arrays,
        scalars={"ncells": EXEC_CELLS, "steps": STEPS},
        sim_scale=PAPER_CELLS / EXEC_CELLS,
        output_arrays=["density", "energy", "momx", "momy"],
        array_length_hints={"density": "ncells", "energy": "ncells"},
        plan=OptimizationPlan(
            streaming_options=StreamingOptions(num_blocks=10)
        ),
        description="Euler solver time steps with three kernels per step",
    )
