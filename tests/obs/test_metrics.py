"""Tests for the metrics registry instruments and snapshots."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_tracks_value_and_max(self):
        g = Gauge()
        g.set(10)
        g.set(4)
        assert g.value == 4
        assert g.max_value == 10


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram()
        for v in (0.001, 0.01, 0.01, 1.0):
            h.observe(v)
        assert h.count == 4
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(1.0)
        assert h.mean == pytest.approx(1.021 / 4)

    def test_bucket_assignment(self):
        h = Histogram(bounds=[1.0, 10.0])
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)  # overflow
        assert h.bucket_counts == [1, 1, 1]
        d = h.as_dict()
        assert d["buckets"] == {"le_1": 1, "le_10": 1, "overflow": 1}

    def test_empty_histogram_serializes_zeroes(self):
        d = Histogram().as_dict()
        assert d["count"] == 0
        assert d["min"] == 0.0
        assert d["max"] == 0.0
        assert d["mean"] == 0.0


class TestRegistry:
    def test_instruments_created_lazily_and_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.counter("a.count").inc(1)
        reg.gauge("mem").set(7)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["counters"]["z.count"] == 2
        assert snap["gauges"]["mem"] == {"value": 7, "max": 7}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_identical_runs_snapshot_identically(self):
        import json

        def build():
            reg = MetricsRegistry()
            reg.counter("dma.bytes").inc(4096)
            reg.histogram("launch").observe(1e-5)
            return json.dumps(reg.snapshot(), sort_keys=True)

        assert build() == build()


class TestNullMetrics:
    def test_all_updates_discarded(self):
        NULL_METRICS.counter("c").inc(9)
        NULL_METRICS.gauge("g").set(9)
        NULL_METRICS.histogram("h").observe(9)
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
