"""Unit tests for the batched execution fast path (runtime/batch_exec).

Each test runs one small MiniC program under the tree walker and under
the batch engine and asserts the two agree bit-for-bit on outputs,
dynamic operation counters, and simulated time — including fallback and
error cases, where the batch engine must behave as if it never ran.
"""

import numpy as np
import pytest

from repro.minic.parser import parse
from repro.runtime.executor import ExecutionError, Executor, Machine


def _execute(source, engine, arrays=None, scalars=None):
    executor = Executor(parse(source), Machine(), engine=engine)
    result = executor.run(
        arrays=arrays or {}, scalars=dict(scalars or {})
    )
    return executor, result


def _run_both(source, make_arrays, scalars=None, outputs=()):
    """Run under both engines; assert parity; return the batch executor."""
    tree_ex, tree = _execute(source, "tree", make_arrays(), scalars)
    batch_ex, batch = _execute(source, "batch", make_arrays(), scalars)
    for name in outputs:
        expected, actual = tree.array(name), batch.array(name)
        assert expected.dtype == actual.dtype, name
        assert expected.tobytes() == actual.tobytes(), name
    assert batch.stats.ops.as_dict() == tree.stats.ops.as_dict()
    assert batch.stats.total_time == tree.stats.total_time
    return batch_ex


def test_simple_loop_batches():
    source = """
    void main(int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            B[i] = A[i] * 2.0 + 1.0;
        }
    }
    """
    batch_ex = _run_both(
        source,
        lambda: {
            "A": np.arange(64, dtype=np.float64),
            "B": np.zeros(64, dtype=np.float64),
        },
        scalars={"n": 64},
        outputs=("B",),
    )
    assert batch_ex._batch_stats["batched"] == 1
    assert batch_ex._batch_stats["fallback"] == 0


def test_masked_control_flow():
    source = """
    void main(int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            if (A[i] > 0.5) {
                B[i] = sqrt(A[i]);
            } else {
                B[i] = A[i] * A[i];
            }
            C[i] = A[i] > 0.25 ? 1.0 : -1.0;
        }
    }
    """
    rng = np.random.default_rng(7)
    data = rng.random(97)
    batch_ex = _run_both(
        source,
        lambda: {
            "A": data.copy(),
            "B": np.zeros(97),
            "C": np.zeros(97),
        },
        scalars={"n": 97},
        outputs=("B", "C"),
    )
    assert batch_ex._batch_stats["batched"] == 1


def test_function_inlining_with_early_return():
    source = """
    double clamp01(double x) {
        if (x < 0.0) {
            return 0.0;
        }
        if (x > 1.0) {
            return 1.0;
        }
        return x;
    }
    void main(int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            B[i] = clamp01(A[i] * 3.0 - 1.0);
        }
    }
    """
    rng = np.random.default_rng(11)
    data = rng.random(80)
    batch_ex = _run_both(
        source,
        lambda: {"A": data.copy(), "B": np.zeros(80)},
        scalars={"n": 80},
        outputs=("B",),
    )
    assert batch_ex._batch_stats["batched"] == 1


def test_inner_sequential_loop():
    source = """
    void main(int n, int m) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            double acc = 0.0;
            for (int j = 0; j < m; j++) {
                acc = acc + A[i * m + j];
            }
            B[i] = acc;
        }
    }
    """
    rng = np.random.default_rng(3)
    data = rng.random(12 * 5)
    batch_ex = _run_both(
        source,
        lambda: {"A": data.copy(), "B": np.zeros(12)},
        scalars={"n": 12, "m": 5},
        outputs=("B",),
    )
    assert batch_ex._batch_stats["batched"] == 1


def test_gather_through_index_array():
    source = """
    void main(int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            B[i] = A[idx[i]] + 1.0;
        }
    }
    """
    rng = np.random.default_rng(5)
    perm = rng.permutation(50).astype(np.int32)
    data = rng.random(50)
    batch_ex = _run_both(
        source,
        lambda: {
            "A": data.copy(),
            "idx": perm.copy(),
            "B": np.zeros(50),
        },
        scalars={"n": 50},
        outputs=("B",),
    )
    assert batch_ex._batch_stats["batched"] == 1


def test_cross_lane_dependence_falls_back():
    source = """
    void main(int n) {
        #pragma omp parallel for
        for (int i = 1; i < n; i++) {
            A[i] = A[i - 1] + 1.0;
        }
    }
    """
    batch_ex = _run_both(
        source,
        lambda: {"A": np.zeros(32)},
        scalars={"n": 32},
        outputs=("A",),
    )
    assert batch_ex._batch_stats["fallback"] == 1
    assert batch_ex._batch_stats["batched"] == 0


def test_scalar_reduction_falls_back():
    source = """
    void main(int n) {
        double total = 0.0;
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            total = total + A[i];
        }
        B[0] = total;
    }
    """
    batch_ex = _run_both(
        source,
        lambda: {"A": np.arange(16, dtype=np.float64), "B": np.zeros(1)},
        scalars={"n": 16},
        outputs=("B",),
    )
    # Statically ineligible: rejected before any batched attempt.
    assert batch_ex._batch_stats["batched"] == 0
    info = next(iter(batch_ex._batch_static_cache.values()))
    assert not info.eligible
    assert "total" in info.reason


def test_while_body_falls_back():
    source = """
    void main(int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            double x = A[i];
            while (x > 1.0) {
                x = x / 2.0;
            }
            B[i] = x;
        }
    }
    """
    batch_ex = _run_both(
        source,
        lambda: {
            "A": np.arange(24, dtype=np.float64),
            "B": np.zeros(24),
        },
        scalars={"n": 24},
        outputs=("B",),
    )
    # Statically ineligible: rejected before any batched attempt.
    assert batch_ex._batch_stats["batched"] == 0
    info = next(iter(batch_ex._batch_static_cache.values()))
    assert not info.eligible


def test_lane_varying_inner_bound_falls_back():
    source = """
    void main(int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            double acc = 0.0;
            for (int j = 0; j < counts[i]; j++) {
                acc = acc + A[j];
            }
            B[i] = acc;
        }
    }
    """
    counts = np.array([1, 3, 2, 5, 4, 2, 1, 3], dtype=np.int32)
    batch_ex = _run_both(
        source,
        lambda: {
            "A": np.arange(8, dtype=np.float64),
            "counts": counts.copy(),
            "B": np.zeros(8),
        },
        scalars={"n": 8},
        outputs=("B",),
    )
    assert batch_ex._batch_stats["fallback"] == 1


def test_out_of_bounds_error_is_identical():
    source = """
    void main(int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            B[i + 2] = A[i];
        }
    }
    """

    def arrays():
        return {"A": np.arange(8, dtype=np.float64), "B": np.zeros(8)}

    messages = {}
    finals = {}
    for engine in ("tree", "batch"):
        executor = Executor(parse(source), Machine(), engine=engine)
        with pytest.raises(ExecutionError) as excinfo:
            executor.run(arrays=arrays(), scalars={"n": 8})
        messages[engine] = str(excinfo.value)
        finals[engine] = executor.machine.host.array("B").copy()
    assert messages["batch"] == messages["tree"]
    assert finals["batch"].tobytes() == finals["tree"].tobytes()


def test_division_by_zero_is_identical():
    source = """
    void main(int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            B[i] = C[i] / D[i];
        }
    }
    """

    def arrays():
        return {
            "C": np.arange(8, dtype=np.int32),
            "D": np.array([1, 2, 1, 0, 1, 1, 1, 1], dtype=np.int32),
            "B": np.zeros(8, dtype=np.int32),
        }

    kinds = {}
    for engine in ("tree", "batch"):
        executor = Executor(parse(source), Machine(), engine=engine)
        with pytest.raises(Exception) as excinfo:
            executor.run(arrays=arrays(), scalars={"n": 8})
        kinds[engine] = (type(excinfo.value).__name__, str(excinfo.value))
    assert kinds["batch"] == kinds["tree"]


def test_tree_engine_never_batches():
    source = """
    void main(int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            B[i] = A[i] + 1.0;
        }
    }
    """
    executor, _ = _execute(
        source,
        "tree",
        {"A": np.arange(8, dtype=np.float64), "B": np.zeros(8)},
        {"n": 8},
    )
    assert executor._batch_stats == {"batched": 0, "fallback": 0}


def test_engine_validation():
    with pytest.raises(ValueError):
        Executor(parse("void main() {}"), Machine(), engine="warp")


def test_dynamic_bail_poisons_static_cache():
    """After a dynamic hazard, the same loop node must not retry batching."""
    source = """
    void main(int n) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            A[idx[i]] = A[i] + 1.0;
        }
    }
    """
    idx = np.zeros(8, dtype=np.int32)  # every lane writes slot 0
    executor, _ = _execute(
        source,
        "batch",
        {"A": np.arange(8, dtype=np.float64), "idx": idx},
        {"n": 8},
    )
    assert executor._batch_stats["fallback"] == 1
    info = next(iter(executor._batch_static_cache.values()))
    assert not info.eligible


def test_opcounters_copy_and_as_dict():
    from repro.hardware.device import OpCounters

    counters = OpCounters(flops=3, loads=2, bytes_read=16)
    clone = counters.copy()
    clone.flops += 1
    assert counters.flops == 3
    assert counters.as_dict()["bytes_read"] == 16
    assert set(counters.as_dict()) >= {
        "flops", "int_ops", "loads", "stores", "bytes_read",
        "bytes_written", "irregular_accesses", "calls", "branches",
    }
