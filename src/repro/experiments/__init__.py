"""Experiment harness reproducing every table and figure of Section VI.

* :mod:`repro.experiments.harness` — runs workload variants (with result
  caching) and isolated-optimization configurations;
* :mod:`repro.experiments.figures` — Figures 1, 4, 10, 11, 12, 13, 14, 15;
* :mod:`repro.experiments.tables` — Tables II and III;
* :mod:`repro.experiments.report` — plain-text rendering.
"""

from repro.experiments.harness import BenchmarkResult, SuiteRunner
from repro.experiments.figures import (
    figure1,
    figure4,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.report import render_bars, render_table
from repro.experiments.tables import table1_demo, table2, table3

__all__ = [
    "BenchmarkResult",
    "SuiteRunner",
    "figure1",
    "figure4",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "render_bars",
    "render_table",
    "table1_demo",
    "table2",
    "table3",
]
