"""AST node definitions for MiniC.

All nodes are mutable dataclasses deriving from :class:`Node`.  Child
traversal for visitors is generic: any field whose value is a ``Node`` or a
list of ``Node`` is a child.  Structural equality ignores source positions,
which keeps transform tests (compare rewritten AST against an expected
parse) straightforward.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple


@dataclass
class Node:
    """Base class for every AST node."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (fields that are nodes or node lists)."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def fields(self) -> Iterator[Tuple[str, object]]:
        """Yield (name, value) for every dataclass field."""
        for f in dataclasses.fields(self):
            yield f.name, getattr(self, f.name)

    def clone(self) -> "Node":
        """A deep, independent copy of this subtree.

        Node fields and node lists are copied recursively; leaf values
        (ints, strings, None) are shared.  Much faster than
        ``copy.deepcopy`` — this is what makes a parse cache that hands
        out mutable ASTs cheap.
        """
        cls = type(self)
        new = cls.__new__(cls)
        for f in dataclasses.fields(self):
            setattr(new, f.name, _clone_value(getattr(self, f.name)))
        return new


def _clone_value(value):
    if isinstance(value, Node):
        return value.clone()
    if isinstance(value, list):
        return [_clone_value(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_clone_value(item) for item in value)
    return value


# ==========================================================================
# Types
# ==========================================================================


@dataclass
class Type(Node):
    """Base class for MiniC types."""

    def is_pointer(self) -> bool:
        """True for pointer types."""
        return isinstance(self, PointerType)


@dataclass
class BaseType(Type):
    """A scalar type: ``int``, ``float``, ``double``, ``char``, ``void``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class PointerType(Type):
    """A pointer type ``T*``."""

    base: Type

    def __str__(self) -> str:
        return f"{self.base}*"


@dataclass
class ArrayType(Type):
    """A fixed-size array type ``T[size]`` (size may be None for params)."""

    base: Type
    size: Optional["Expr"] = None

    def __str__(self) -> str:
        return f"{self.base}[]"


@dataclass
class StructType(Type):
    """A reference to a named struct: ``struct Name``."""

    name: str

    def __str__(self) -> str:
        return f"struct {self.name}"


INT = BaseType("int")
FLOAT = BaseType("float")
DOUBLE = BaseType("double")
VOID = BaseType("void")
CHAR = BaseType("char")


# ==========================================================================
# Expressions
# ==========================================================================


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class Ident(Expr):
    name: str


@dataclass
class BinOp(Expr):
    """A binary operation ``left op right``."""

    op: str
    left: Expr
    right: Expr


@dataclass
class UnOp(Expr):
    """A prefix unary operation ``op operand`` (``-``, ``!``, ``*``, ``&``)."""

    op: str
    operand: Expr


@dataclass
class Subscript(Expr):
    """Array indexing ``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    """Member access ``base.field`` or ``base->field`` (arrow=True)."""

    base: Expr
    field: str
    arrow: bool = False


@dataclass
class Call(Expr):
    """A function call ``func(args...)``."""

    func: str
    args: List[Expr] = field(default_factory=list)


@dataclass
class Cond(Expr):
    """The ternary conditional ``cond ? then : other``."""

    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Cast(Expr):
    """An explicit cast ``(type) operand``."""

    type: Type
    operand: Expr


@dataclass
class SizeOf(Expr):
    """``sizeof(type)``."""

    type: Type


# ==========================================================================
# Pragmas (LEO / OpenMP)
# ==========================================================================


@dataclass
class Pragma(Node):
    """Base class for parsed pragma directives."""


@dataclass
class TransferClause(Node):
    """One data clause of an offload pragma.

    Grammar (following Intel LEO):

    ``in(A[start:length] : into(B[s2]) alloc_if(e) free_if(e))``
    ``out(prices : length(n))``

    ``direction`` is ``in``/``out``/``inout``/``nocopy``; ``var`` names the
    host array or scalar; ``start``/``length`` give the transferred section
    (``None`` means whole object / scalar); ``into`` redirects the data into
    a differently named device buffer (used by double-buffering);
    ``alloc_if``/``free_if`` control device allocation lifetime.
    """

    direction: str
    var: str
    start: Optional[Expr] = None
    length: Optional[Expr] = None
    into: Optional[str] = None
    into_start: Optional[Expr] = None
    alloc_if: Optional[Expr] = None
    free_if: Optional[Expr] = None


@dataclass
class OmpParallelFor(Pragma):
    """``#pragma omp parallel for [private(...)] [reduction(op:var)]``."""

    private: List[str] = field(default_factory=list)
    reduction: List[Tuple[str, str]] = field(default_factory=list)
    num_threads: Optional[Expr] = None
    #: Pipelined-regularization marker (Section IV): this host loop's work
    #: overlaps downstream transfers/compute; only the first block's share
    #: delays the program.  Printed as the ``pipelined(1)`` clause.
    pipelined: bool = False


@dataclass
class OffloadPragma(Pragma):
    """``#pragma offload target(mic:N) <clauses> [signal(e)] [wait(e)]``."""

    target: int = 0
    clauses: List[TransferClause] = field(default_factory=list)
    signal: Optional[Expr] = None
    wait: Optional[Expr] = None
    shared: List[str] = field(default_factory=list)
    #: Thread-reuse marker (Section III-C): the kernel is launched once and
    #: later offloads with the same marker only pay a COI signal, not a
    #: fresh kernel launch.  Printed as the ``persistent(1)`` clause — our
    #: lowering extension to LEO.
    persistent: bool = False
    #: Persistent-kernel session name: offloads sharing a session share one
    #: launched kernel (streaming's even/odd kernel bodies are one kernel).
    #: Printed as the ``session(name)`` clause.
    session: Optional[str] = None


@dataclass
class OffloadTransferPragma(Pragma):
    """``#pragma offload_transfer target(mic:N) <clauses> [signal(e)]``.

    A pure data-movement directive: starts transfers (asynchronously when
    ``signal`` is present) without running any device code.
    """

    target: int = 0
    clauses: List[TransferClause] = field(default_factory=list)
    signal: Optional[Expr] = None


@dataclass
class OffloadWaitPragma(Pragma):
    """``#pragma offload_wait target(mic:N) wait(e)`` — block until signal."""

    target: int = 0
    wait: Optional[Expr] = None


# ==========================================================================
# Statements
# ==========================================================================


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class VarDecl(Stmt):
    """A variable declaration with optional initializer."""

    name: str
    type: Type
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """An assignment ``target op value`` where op is ``=``/``+=``/.../``*=``."""

    target: Expr
    value: Expr
    op: str = "="


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects (typically a call)."""

    expr: Expr


@dataclass
class Block(Stmt):
    """A brace-delimited statement list."""

    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass
class For(Stmt):
    """A for loop.

    ``pragmas`` holds the pragma directives written immediately above the
    loop, in source order (e.g. an :class:`OffloadPragma` followed by an
    :class:`OmpParallelFor`).
    """

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: Stmt
    pragmas: List[Pragma] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    """``do body while (cond);`` — body runs at least once."""

    body: Stmt
    cond: Expr


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class PragmaStmt(Stmt):
    """A standalone pragma that acts as a statement.

    ``offload_transfer`` and ``offload_wait`` do not annotate a following
    statement; they *are* the statement.
    """

    pragma: Pragma


@dataclass
class OffloadBlock(Stmt):
    """A ``#pragma offload`` applied to a compound statement.

    Streaming's thread-reuse variant offloads a whole block (the persistent
    kernel) rather than a single loop.
    """

    pragma: OffloadPragma
    body: Block


# ==========================================================================
# Top-level declarations
# ==========================================================================


@dataclass
class ParamDecl(Node):
    name: str
    type: Type


@dataclass
class FieldDecl(Node):
    name: str
    type: Type


@dataclass
class StructDef(Node):
    """``struct Name { fields... };``."""

    name: str
    fields_: List[FieldDecl] = field(default_factory=list)


@dataclass
class FuncDef(Node):
    name: str
    return_type: Type
    params: List[ParamDecl] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class GlobalDecl(Node):
    """A file-scope variable declaration."""

    decl: VarDecl


@dataclass
class Program(Node):
    """A whole translation unit."""

    decls: List[Node] = field(default_factory=list)

    def functions(self) -> List[FuncDef]:
        """All function definitions in the unit."""
        return [d for d in self.decls if isinstance(d, FuncDef)]

    def structs(self) -> List[StructDef]:
        """All struct definitions in the unit."""
        return [d for d in self.decls if isinstance(d, StructDef)]

    def function(self, name: str) -> FuncDef:
        """Look up a function by name; KeyError when absent."""
        for f in self.functions():
            if f.name == name:
                return f
        raise KeyError(name)
