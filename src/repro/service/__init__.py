"""Campaign-as-a-service: async job runner over the simulated fleet.

This package turns the one-shot CLI commands (``repro run`` /
``repro bench`` / ``repro faults``) into a long-running service:

* :mod:`~repro.service.jobs` — the :class:`JobSpec` provenance model
  and the pure ``execute_job`` worker function;
* :mod:`~repro.service.store` — the shared, concurrency-safe result
  store (identical submissions served from cache across clients);
* :mod:`~repro.service.queue` — bounded priority admission queue with
  reject-past-high-water backpressure;
* :mod:`~repro.service.pool` — persistent warm worker pool;
* :mod:`~repro.service.supervisor` — worker-crash recovery: pool
  rebuilds with backoff, redispatch, poison-spec quarantine;
* :mod:`~repro.service.isolation` — per-tenant token-bucket rate
  limits and circuit breakers;
* :mod:`~repro.service.journal` — the checksummed write-ahead job
  journal (crash-restart recovery replays it);
* :mod:`~repro.service.persist` — the persistent result store:
  checksum-verified segment spill and reload;
* :mod:`~repro.service.service` — the asyncio orchestrator with
  streaming job events, deadlines, graceful drain, and fleet-wide
  metrics;
* :mod:`~repro.service.traffic` — seeded bursty traffic traces and
  byte-deterministic replay (the chaos-testing harness);
* :mod:`~repro.service.server` — the JSON-lines TCP front end.

Import order matters for layering, not correctness: nothing here
imports the experiments/workloads layers at module scope, so the
harness can depend on :mod:`~repro.service.store` without a cycle.
"""

from repro.service.isolation import (
    TenantCircuitOpen,
    TenantGate,
    TenantRateLimited,
)
from repro.service.jobs import JOB_KINDS, Job, JobSpec, execute_job
from repro.service.journal import JobJournal, JournalReplay, replay_journal
from repro.service.persist import PersistentResultStore
from repro.service.queue import AdmissionQueue, AdmissionRejected
from repro.service.service import CampaignService, JobTimeout, ServiceDraining
from repro.service.store import ResultStore
from repro.service.supervisor import PoisonJobError, WorkerSupervisor

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobSpec",
    "execute_job",
    "AdmissionQueue",
    "AdmissionRejected",
    "CampaignService",
    "JobTimeout",
    "ServiceDraining",
    "JobJournal",
    "JournalReplay",
    "replay_journal",
    "PersistentResultStore",
    "ResultStore",
    "WorkerSupervisor",
    "PoisonJobError",
    "TenantGate",
    "TenantRateLimited",
    "TenantCircuitOpen",
]
