"""Ablation: the three Section V-A buffer-allocation strategies.

Quantifies the paper's design argument for segmented arenas against the
two strategies it rejects, on ferret-like (small, 83 MB) and
"recent trend to larger data sets" (3 GB) workloads.
"""

import pytest

from benchmarks.conftest import emit
from repro.errors import RuntimeFault
from repro.experiments.report import render_table
from repro.runtime.alloc_baselines import (
    MAX_CONTIGUOUS_BYTES,
    GrowCopyAllocator,
    PreallocAllocator,
)
from repro.runtime.arena import ArenaAllocator

OBJ_BYTES = 1084


def drive(allocator, total_bytes):
    for _ in range(total_bytes // OBJ_BYTES):
        allocator.allocate(OBJ_BYTES)
    return allocator


def test_alloc_strategy_comparison(benchmark):
    small = 83 << 20  # ferret's shared footprint
    large = 3 << 30  # "many applications use data sets larger than 2 GB"

    def run():
        rows = []
        # -- small structure: waste comparison --------------------------
        prealloc = drive(PreallocAllocator(), small)
        growcopy = drive(GrowCopyAllocator(), small)
        arena = ArenaAllocator(chunk_bytes=64 << 20)
        drive(arena, small)
        rows.append(
            ["small (83 MB)", "preallocate-huge",
             f"{prealloc.stats.waste >> 20} MiB wasted", "ok"]
        )
        rows.append(
            ["small (83 MB)", "grow-and-copy",
             f"{growcopy.stats.moved_bytes >> 20} MiB moved", "ok"]
        )
        rows.append(
            ["small (83 MB)", "segmented arena",
             f"{(arena.total_reserved - arena.total_used) >> 20} MiB wasted, "
             f"0 MiB moved", "ok"]
        )
        # -- large structure: the contiguity ceiling ---------------------
        big_fail = None
        try:
            drive(GrowCopyAllocator(), large)
        except RuntimeFault as exc:
            big_fail = str(exc)
        rows.append(
            ["large (3 GB)", "grow-and-copy",
             "-", "FAILS: contiguity ceiling" if big_fail else "ok"]
        )
        big_arena = ArenaAllocator(chunk_bytes=64 << 20)
        # Allocate coarse objects to keep the loop fast.
        for _ in range(large // (1 << 20)):
            big_arena.allocate(1 << 20)
        rows.append(
            ["large (3 GB)", "segmented arena",
             f"{len(big_arena.buffers)} buffers", "ok"]
        )
        return rows, prealloc, growcopy, arena, big_fail, big_arena

    rows, prealloc, growcopy, arena, big_fail, big_arena = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(render_table(["data set", "strategy", "cost", "outcome"], rows))

    # The paper's three claims, quantified:
    # (1) preallocation wastes memory on small structures;
    assert prealloc.stats.waste > 10 * prealloc.stats.used_bytes
    # (2) grow-and-copy moves a lot of data and cannot exceed the
    #     contiguous-chunk ceiling;
    assert growcopy.stats.moved_bytes > growcopy.stats.used_bytes * 0.5
    assert big_fail is not None
    # (3) the arena wastes at most one chunk, moves nothing, and scales
    #     past the ceiling by adding buffers.
    assert arena.total_reserved - arena.total_used < 64 << 20
    assert big_arena.total_used == 3 << 30
    assert big_arena.total_used > MAX_CONTIGUOUS_BYTES
