"""Property-based tests for the analysis and hardware models."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.array_access import extract_linear_form
from repro.errors import DeviceOutOfMemory
from repro.hardware.cache import locality_factor
from repro.hardware.event_sim import Timeline
from repro.hardware.memory import DeviceMemoryManager
from repro.minic import ast_nodes as ast
from repro.minic.parser import parse_expr
from repro.minic.printer import to_source
from repro.runtime.smartptr import DeltaTable, SharedPtr
from repro.transforms.block_size import (
    optimal_block_count,
    streaming_time,
    unstreamed_time,
)


# --------------------------------------------------------------------------
# Linear forms
# --------------------------------------------------------------------------

def _linear_expr(a: int, b: int, shape: int) -> ast.Expr:
    """Different syntactic spellings of a*i + b."""
    i = ast.Ident("i")
    spellings = [
        f"{a} * i + {b}",
        f"{b} + i * {a}",
        f"i * {a} - {-b}" if b < 0 else f"{b} + {a} * i",
        f"({a} * (i + 0)) + {b}",
    ]
    return parse_expr(spellings[shape % len(spellings)])


class TestLinearFormProperties:
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=-32, max_value=64),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=200, deadline=None)
    def test_extraction_matches_construction(self, a, b, shape):
        expr = _linear_expr(a, b, shape)
        form = extract_linear_form(expr, "i")
        assert (form.coeff, form.const) == (a, b)

    @given(
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=200, deadline=None)
    def test_form_evaluates_like_expression(self, a, b, i_value):
        expr = parse_expr(f"{a} * i + {b}" if b >= 0 else f"{a} * i - {-b}")
        form = extract_linear_form(expr, "i")
        assert form.coeff * i_value + form.const == a * i_value + b


# --------------------------------------------------------------------------
# Block-size model
# --------------------------------------------------------------------------

_times = st.floats(min_value=0.001, max_value=100.0, allow_nan=False)
_overheads = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)


class TestBlockSizeProperties:
    @given(_times, _times, _overheads)
    @settings(max_examples=200, deadline=None)
    def test_one_block_equals_unstreamed(self, d, c, k):
        import pytest

        assert streaming_time(d, c, k, 1) == pytest.approx(
            unstreamed_time(d, c, k)
        )

    @given(_times, _times, _overheads, st.integers(min_value=1, max_value=256))
    @settings(max_examples=200, deadline=None)
    def test_never_beats_physical_lower_bound(self, d, c, k, n):
        """The pipeline cannot finish before max(D, C) (one resource must
        do all its work) nor before any single block's D/N + C/N + K."""
        t = streaming_time(d, c, k, n)
        assert t >= max(d, c) - 1e-12
        assert t >= d / n + c / n + k - 1e-12

    @given(_times, _times, _overheads)
    @settings(max_examples=100, deadline=None)
    def test_optimum_beats_neighbours(self, d, c, k):
        n_star = optimal_block_count(d, c, k, max_blocks=128)
        t_star = streaming_time(d, c, k, n_star)
        for n in (max(1, n_star - 1), min(128, n_star + 1)):
            assert t_star <= streaming_time(d, c, k, n) + 1e-12

    @given(_times, _times, _overheads, st.integers(min_value=1, max_value=128))
    @settings(max_examples=200, deadline=None)
    def test_optimum_is_global_over_sampled_n(self, d, c, k, n):
        n_star = optimal_block_count(d, c, k, max_blocks=128)
        assert streaming_time(d, c, k, n_star) <= (
            streaming_time(d, c, k, n) + 1e-12
        )


# --------------------------------------------------------------------------
# Locality factor
# --------------------------------------------------------------------------


class TestLocalityProperties:
    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, fraction):
        factor = locality_factor(fraction)
        assert 4 / 64 <= factor <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_decreasing(self, f1, f2):
        lo, hi = sorted([f1, f2])
        assert locality_factor(lo) >= locality_factor(hi)


# --------------------------------------------------------------------------
# Device memory manager
# --------------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "free"]),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=1, max_value=300),
    ),
    max_size=40,
)


class TestMemoryManagerProperties:
    @given(_ops)
    @settings(max_examples=200, deadline=None)
    def test_accounting_invariants(self, operations):
        mm = DeviceMemoryManager(capacity=1000)
        live = {}
        for op, slot, size in operations:
            name = f"buf{slot}"
            if op == "alloc":
                try:
                    mm.allocate(name, size)
                except DeviceOutOfMemory:
                    # The failed allocation must actually not fit.
                    assert mm.in_use + max(
                        0, size - live.get(name, 0)
                    ) > 1000 or size > 1000
                    continue
                live[name] = max(live.get(name, 0), size)
            elif name in live:
                mm.free(name)
                del live[name]
        assert mm.in_use == sum(live.values())
        assert mm.peak >= mm.in_use
        assert mm.in_use <= 1000


# --------------------------------------------------------------------------
# Delta table
# --------------------------------------------------------------------------

_buffers = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=1 << 30),  # size
        st.integers(min_value=0, max_value=1 << 20),  # mic base
    ),
    min_size=1,
    max_size=50,
)


class TestDeltaTableProperties:
    @given(_buffers, st.data())
    @settings(max_examples=200, deadline=None)
    def test_translate_take_address_roundtrip(self, buffers, data):
        table = DeltaTable()
        bases = []
        cpu = 1 << 40
        for bid, (size, mic_base) in enumerate(buffers):
            table.register(bid, cpu, mic_base, size)
            bases.append((cpu, size))
            cpu += size + (1 << 20)
        bid = data.draw(st.integers(min_value=0, max_value=len(buffers) - 1))
        offset = data.draw(
            st.integers(min_value=0, max_value=bases[bid][1] - 1)
        )
        ptr = SharedPtr(bases[bid][0] + offset, bid)
        mic_addr = table.translate(ptr)
        assert table.take_address(mic_addr, bid, on_mic=True) == ptr
        linear_addr, comparisons = table.translate_linear(ptr)
        assert linear_addr == mic_addr
        assert 1 <= comparisons <= len(buffers)


# --------------------------------------------------------------------------
# Timeline
# --------------------------------------------------------------------------

_schedule = st.lists(
    st.tuples(
        st.sampled_from(["dma", "mic", "cpu"]),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.booleans(),  # depend on the previous event?
    ),
    max_size=30,
)


class TestTimelineProperties:
    @given(_schedule)
    @settings(max_examples=200, deadline=None)
    def test_causality_and_occupancy(self, operations):
        tl = Timeline()
        prev = None
        for resource, duration, depend in operations:
            deps = [prev] if (depend and prev) else []
            event = tl.schedule(resource, duration, deps=deps)
            if deps:
                assert event.time >= deps[0].time + duration - 1e-12
            prev = event
        # No resource can be busy longer than the makespan.
        finish = tl.finish_time()
        for resource in ("dma", "mic", "cpu"):
            assert tl.busy_time(resource) <= finish + 1e-9
        # Per-resource trace entries never overlap.
        for resource in ("dma", "mic", "cpu"):
            entries = sorted(tl.entries(resource), key=lambda e: e.start)
            for a, b in zip(entries, entries[1:]):
                assert a.end <= b.start + 1e-12
