"""Span-based structured tracing driven by the *simulated* clock.

A :class:`Span` is one timed operation on one *track* (a resource lane:
``cpu``, ``mic``, ``dma:h2d`` ...), with attributes and an optional
parent — host-side phases opened with :meth:`Tracer.phase` form the
hierarchy, and anything recorded while a phase is open becomes its
child.  An :class:`Instant` is a point event (a fault firing, a retry).

Two properties make the tracer safe to leave wired into the runtime:

* **Deterministic** — every timestamp comes from the event simulator's
  clock/timeline, never from wall time, so traces of identical runs are
  byte-identical.
* **Invisible** — the tracer only *observes*: it never advances the
  clock or schedules timeline work, so an instrumented run's outputs,
  counters, and simulated times match an uninstrumented run exactly.
  Disabled runs use :data:`NULL_TRACER`, whose methods are no-ops.

Export formats live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry, NULL_METRICS

#: Track name for host-program phases (matches the timeline's host lane).
HOST_TRACK = "cpu"


@dataclass
class Instant:
    """A point event on a track (fault firing, retry, recovery action)."""

    name: str
    time: float
    track: str = HOST_TRACK
    attrs: Dict[str, object] = field(default_factory=dict)


@dataclass
class Span:
    """One timed operation on one track, with attributes and a parent."""

    name: str
    track: str
    start: float
    end: float
    sid: int = 0
    parent: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """End minus start, in simulated seconds."""
        return self.end - self.start


class _NullPhase:
    """Reusable no-op context manager for :meth:`NullTracer.phase`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class _OpenPhase:
    """Context manager produced by :meth:`Tracer.phase`."""

    __slots__ = ("tracer", "span", "clock")

    def __init__(self, tracer: "Tracer", span: Span, clock) -> None:
        self.tracer = tracer
        self.span = span
        self.clock = clock

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> bool:
        self.tracer.end(self.span, self.clock.now)
        return False


class Tracer:
    """Records spans and instants for one run."""

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._open: List[Span] = []
        self._next_sid = 1

    def _sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def _parent(self) -> Optional[int]:
        return self._open[-1].sid if self._open else None

    # -- recording ----------------------------------------------------------

    def span(
        self, name: str, track: str, start: float, end: float, **attrs
    ) -> Span:
        """Record one completed span (start/end in simulated seconds)."""
        recorded = Span(
            name, track, start, max(start, end), self._sid(),
            parent=self._parent(), attrs=attrs,
        )
        self.spans.append(recorded)
        return recorded

    def begin(self, name: str, track: str, start: float, **attrs) -> Span:
        """Open a hierarchical span; close it with :meth:`end`."""
        span = Span(
            name, track, start, start, self._sid(),
            parent=self._parent(), attrs=attrs,
        )
        self._open.append(span)
        return span

    def end(self, span: Span, end: float) -> Span:
        """Close the innermost open span (must be *span*) at *end*."""
        if not self._open or self._open[-1] is not span:
            raise ValueError(f"span {span.name!r} is not the innermost open span")
        self._open.pop()
        span.end = max(span.start, end)
        self.spans.append(span)
        return span

    def phase(self, name: str, clock, track: str = HOST_TRACK, **attrs):
        """Context manager: a span from ``clock.now`` at entry to exit.

        *clock* is the simulated program clock — the phase brackets
        whatever simulated time the enclosed code consumes.
        """
        return _OpenPhase(self, self.begin(name, track, clock.now, **attrs), clock)

    def instant(
        self, name: str, time: float, track: str = HOST_TRACK, **attrs
    ) -> Instant:
        """Record a point event at simulated *time*."""
        inst = Instant(name, time, track, attrs)
        self.instants.append(inst)
        return inst

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span (no-op outside)."""
        if self._open:
            self._open[-1].attrs.update(attrs)

    # -- views --------------------------------------------------------------

    def track_spans(self, track: str) -> List[Span]:
        """All recorded spans on one track."""
        return [s for s in self.spans if s.track == track]

    def finish_time(self) -> float:
        """Latest span end / instant time recorded (0 when empty)."""
        latest = 0.0
        for span in self.spans:
            latest = max(latest, span.end)
        for inst in self.instants:
            latest = max(latest, inst.time)
        return latest


class NullTracer:
    """The disabled tracer: every method is a no-op.

    ``enabled`` is False so hot paths can skip attribute construction
    entirely; calls that do slip through cost one method dispatch and
    allocate nothing.
    """

    enabled = False
    metrics = NULL_METRICS
    spans: tuple = ()
    instants: tuple = ()

    def span(self, name, track, start, end, **attrs) -> None:
        return None

    def begin(self, name, track, start, **attrs) -> None:
        return None

    def end(self, span, end) -> None:
        return None

    def phase(self, name, clock, track=HOST_TRACK, **attrs) -> _NullPhase:
        return _NULL_PHASE

    def instant(self, name, time, track=HOST_TRACK, **attrs) -> None:
        return None

    def annotate(self, **attrs) -> None:
        return None

    def track_spans(self, track) -> list:
        return []

    def finish_time(self) -> float:
        return 0.0


NULL_TRACER = NullTracer()


def spans_from_timeline(timeline) -> List[Span]:
    """Lift a :class:`~repro.hardware.event_sim.Timeline` trace to spans.

    Used to analyze runs that were not instrumented with a tracer (the
    timeline always records scheduled operations) and to keep the
    span-based overlap analysis backward compatible with raw timelines.
    """
    return [
        Span(
            name=entry.label or entry.resource,
            track=entry.resource,
            start=entry.start,
            end=entry.end,
            sid=i + 1,
        )
        for i, entry in enumerate(timeline.trace)
    ]
