"""Tests for the span tracer: recording, hierarchy, and the null sink."""

import pytest

from repro.hardware.event_sim import Clock, Timeline
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    spans_from_timeline,
)


class TestSpanRecording:
    def test_span_records_fields(self):
        tracer = Tracer()
        span = tracer.span("copy", "dma:h2d", 1.0, 3.0, nbytes=64)
        assert span.name == "copy"
        assert span.track == "dma:h2d"
        assert span.duration == pytest.approx(2.0)
        assert span.attrs == {"nbytes": 64}
        assert tracer.spans == [span]

    def test_span_clamps_reversed_end(self):
        tracer = Tracer()
        span = tracer.span("x", "cpu", 5.0, 4.0)
        assert span.end == 5.0
        assert span.duration == 0.0

    def test_sids_are_unique_and_increasing(self):
        tracer = Tracer()
        sids = [tracer.span("s", "cpu", i, i + 1).sid for i in range(5)]
        assert sids == sorted(sids)
        assert len(set(sids)) == 5

    def test_top_level_span_has_no_parent(self):
        tracer = Tracer()
        assert tracer.span("s", "cpu", 0, 1).parent is None


class TestHierarchy:
    def test_begin_end_nesting_sets_parents(self):
        tracer = Tracer()
        outer = tracer.begin("outer", "cpu", 0.0)
        inner = tracer.begin("inner", "cpu", 1.0)
        child = tracer.span("leaf", "mic", 1.0, 2.0)
        tracer.end(inner, 3.0)
        tracer.end(outer, 4.0)
        assert child.parent == inner.sid
        assert inner.parent == outer.sid
        assert outer.parent is None

    def test_end_out_of_order_raises(self):
        tracer = Tracer()
        outer = tracer.begin("outer", "cpu", 0.0)
        tracer.begin("inner", "cpu", 1.0)
        with pytest.raises(ValueError):
            tracer.end(outer, 2.0)

    def test_phase_brackets_clock_time(self):
        tracer = Tracer()
        clock = Clock()
        clock.advance(1.5)
        with tracer.phase("offload", clock, index=0) as span:
            clock.advance(2.5)
        assert span.start == pytest.approx(1.5)
        assert span.end == pytest.approx(4.0)
        assert span.attrs == {"index": 0}
        assert tracer.spans[-1] is span

    def test_annotate_targets_innermost_open_span(self):
        tracer = Tracer()
        clock = Clock()
        with tracer.phase("p", clock) as span:
            tracer.annotate(blocks=16)
        assert span.attrs["blocks"] == 16

    def test_annotate_outside_any_phase_is_noop(self):
        Tracer().annotate(ignored=True)  # must not raise


class TestInstantsAndViews:
    def test_instant_recorded(self):
        tracer = Tracer()
        inst = tracer.instant("fault:h2d", 2.0, track="cpu", kind="transient")
        assert tracer.instants == [inst]
        assert inst.attrs == {"kind": "transient"}

    def test_track_spans_filters(self):
        tracer = Tracer()
        tracer.span("a", "cpu", 0, 1)
        tracer.span("b", "mic", 0, 1)
        assert [s.name for s in tracer.track_spans("mic")] == ["b"]

    def test_finish_time_covers_spans_and_instants(self):
        tracer = Tracer()
        assert tracer.finish_time() == 0.0
        tracer.span("a", "cpu", 0, 2.0)
        tracer.instant("i", 3.5)
        assert tracer.finish_time() == pytest.approx(3.5)


class TestNullTracer:
    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NULL_TRACER.enabled is False

    def test_all_hooks_are_noops(self):
        null = NullTracer()
        assert null.span("a", "cpu", 0, 1) is None
        assert null.begin("a", "cpu", 0) is None
        null.end(None, 1.0)
        null.instant("i", 0.0)
        null.annotate(x=1)
        with null.phase("p", None):
            pass
        assert null.track_spans("cpu") == []
        assert null.finish_time() == 0.0
        assert list(null.spans) == []

    def test_null_metrics_discard(self):
        NULL_TRACER.metrics.counter("x").inc(5)
        assert NULL_TRACER.metrics.snapshot()["counters"] == {}


class TestSpansFromTimeline:
    def test_lifts_trace_entries(self):
        tl = Timeline()
        xfer = tl.schedule("dma:h2d", 2.0, label="h2d:A")
        tl.schedule("mic", 3.0, deps=[xfer], label="kernel")
        spans = spans_from_timeline(tl)
        assert [(s.name, s.track) for s in spans] == [
            ("h2d:A", "dma:h2d"),
            ("kernel", "mic"),
        ]
        assert spans[1].start == pytest.approx(2.0)
        assert spans[1].end == pytest.approx(5.0)
