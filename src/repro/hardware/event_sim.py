"""Resource-timeline event simulation.

Offloaded execution is a dataflow of operations over a small set of
exclusive resources — the host thread, the device, and the PCIe DMA
channel.  Each operation has a duration and a set of dependency events;
it starts when its dependencies have completed *and* its resource is
free, and occupies the resource until it ends.  This is sufficient to
reproduce the paper's pipelining behaviour exactly: with data streaming,
"the i-th computation block starts right after the i-th data block is
transferred and overlaps with the data transfer of the (i+1)-th block".

The model is deterministic and runs in O(#operations); there is no
speculative event queue because operation submission order already
respects program order per resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class Event:
    """Completion of a scheduled operation."""

    time: float
    label: str = ""


@dataclass
class Resource:
    """An exclusive resource with a FIFO timeline (device, DMA channel...)."""

    name: str
    available_at: float = 0.0

    def reset(self) -> None:
        """Return the resource to time zero."""
        self.available_at = 0.0


@dataclass
class TraceEntry:
    """One scheduled operation, for inspection and Gantt-style reports."""

    resource: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """End minus start."""
        return self.end - self.start


class Timeline:
    """Schedules operations on resources and records the execution trace."""

    def __init__(self) -> None:
        self.resources: dict = {}
        self.trace: List[TraceEntry] = []

    def resource(self, name: str) -> Resource:
        """Get (or lazily create) the named resource."""
        if name not in self.resources:
            self.resources[name] = Resource(name)
        return self.resources[name]

    def schedule(
        self,
        resource: str,
        duration: float,
        deps: Iterable[Event] = (),
        label: str = "",
        not_before: float = 0.0,
    ) -> Event:
        """Schedule one operation; returns its completion event.

        *not_before* lets callers pin an operation to program time (e.g. an
        async transfer cannot start before the host thread issued it).
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration} for {label!r}")
        res = self.resource(resource)
        start = max(
            [res.available_at, not_before] + [d.time for d in deps]
        )
        end = start + duration
        res.available_at = end
        self.trace.append(TraceEntry(resource, label, start, end))
        return Event(end, label)

    def busy_time(self, resource: str) -> float:
        """Total occupied time of *resource* over the recorded trace."""
        return sum(t.duration for t in self.trace if t.resource == resource)

    def finish_time(self) -> float:
        """Completion time of the last operation across all resources."""
        if not self.trace:
            return 0.0
        return max(t.end for t in self.trace)

    def entries(self, resource: Optional[str] = None) -> List[TraceEntry]:
        """Trace entries, optionally filtered to one resource."""
        if resource is None:
            return list(self.trace)
        return [t for t in self.trace if t.resource == resource]

    def reset(self) -> None:
        """Clear the trace and free every resource."""
        self.trace.clear()
        for res in self.resources.values():
            res.reset()


@dataclass
class Clock:
    """The host program clock: synchronous work advances it directly."""

    now: float = 0.0

    def advance(self, duration: float) -> float:
        """Move program time forward by *duration* seconds."""
        if duration < 0:
            raise ValueError(f"cannot advance clock by {duration}")
        self.now += duration
        return self.now

    def wait_until(self, event: Event) -> float:
        """Block until *event*; a past event costs nothing."""
        self.now = max(self.now, event.time)
        return self.now
