"""Traffic-trace scenario generator and deterministic trace replay.

This module gives the campaign service a chaos-testing harness: seeded
synthetic traffic traces with realistically ugly arrival patterns,
replayed against warm simulator workers, summarized in a document that
is **byte-identical for any worker count**.

A :class:`TraceSpec` describes a trace as data: a Markov-modulated
Poisson arrival process (a base rate multiplied by ``burst_factor``
during exponentially-distributed "on" bursts), a mixed job-class
distribution (MiniC runs, bench suites, fault-campaign cells — the
fault cells make the trace a chaos scenario when ``rates`` are set),
and a Zipf-skewed tenant population whose rank also skews request
sizes, so one heavy tenant dominates exactly the way real multi-tenant
traffic does.  :func:`generate_trace` expands the spec into concrete
arrivals, each carrying a full :class:`~repro.service.jobs.JobSpec`.

Replay runs in two phases so determinism and parallelism don't fight:

* **Phase A — execute.**  Every *unique* job spec (by provenance key)
  runs once through a :class:`~repro.service.service.CampaignService`
  with an effectively-unbounded queue.  Results are pure functions of
  the spec, so scheduling and worker count cannot affect them.
* **Phase B — model.**  Queueing behaviour (admission rejections, wait
  latencies, utilization) comes from a *virtual-time* discrete-event
  model with ``model_servers`` abstract servers, using each job's
  simulated time as its service time.  The model is plain arithmetic
  over Phase A's deterministic outputs — no wall clock, no thread
  interleaving — which is what makes the replay summary byte-stable.

Wall-clock service telemetry (actual queue latency, jobs/sec) still
exists — it lives in the service's metrics registry and the
``BENCH_service.json`` artifact, never in replay summaries.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import heapq
import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.service.jobs import JobSpec, _pairs

#: Job-class priorities: interactive runs preempt batch suites, which
#: preempt chaos probes (lower value runs first).
CLASS_PRIORITY = {"run": 0, "bench": 1, "faults": 2}

#: MiniC templates for the interactive ("run") job class.  ``{n}`` is
#: the tenant-skewed request size.
MINIC_TEMPLATES = {
    "scale": """
void main() {{
#pragma offload target(mic:0) in(A : length({n})) in(n) out(B : length({n}))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {{
        B[i] = A[i] * 2.0;
    }}
}}
""",
    "offset": """
void main() {{
#pragma offload target(mic:0) in(A : length({n})) in(n) out(B : length({n}))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {{
        B[i] = A[i] + 3.0;
    }}
}}
""",
}


@dataclass(frozen=True)
class TraceSpec:
    """A seeded synthetic traffic trace, as plain JSON-able data."""

    seed: int = 0
    #: Number of arrivals to generate.
    requests: int = 24
    #: Baseline arrival rate (jobs per virtual second) outside bursts.
    base_rate: float = 2.0
    #: Rate multiplier while the burst state machine is "on".
    burst_factor: float = 5.0
    #: Mean burst ("on") duration, virtual seconds (exponential).
    mean_on: float = 1.5
    #: Mean gap ("off") duration, virtual seconds (exponential).
    mean_off: float = 4.0
    #: Tenant population size; rank-r tenant gets weight 1/(r+1)^skew.
    tenants: int = 3
    tenant_skew: float = 1.1
    #: Job-class mix as (kind, weight) pairs.
    classes: Tuple[Tuple[str, float], ...] = (
        ("run", 4.0), ("bench", 3.0), ("faults", 3.0),
    )
    engine: Optional[str] = None
    devices: int = 1
    #: Fault-campaign cells draw scenario indices from [0, scenarios).
    scenarios: int = 2
    #: Fault rates for the chaos ("faults") class; empty = plan defaults.
    rates: Tuple[Tuple[str, float], ...] = ()
    #: ResiliencePolicy overrides for the chaos class.
    policy: Tuple[Tuple[str, object], ...] = ()
    #: Attach per-job Chrome trace events to results (for Perfetto export).
    traced: bool = False
    #: Abstract server count for the virtual-time queue model.  This is
    #: a *spec* parameter, deliberately independent of how many real
    #: workers execute Phase A, so summaries never depend on worker count.
    model_servers: int = 2
    #: Virtual admission control (see AdmissionQueue semantics).
    max_depth: int = 32
    high_water: Optional[int] = None
    #: Retry-after hint granularity for modelled rejections.
    est_service_seconds: float = 0.25
    #: Per-tenant isolation, modelled in virtual time (None = off): a
    #: token bucket of ``tenant_rate`` admissions/second (burst
    #: ``tenant_burst``) per tenant, and a circuit breaker opening
    #: after ``breaker_failures`` consecutive failed jobs for
    #: ``breaker_cooldown`` virtual seconds.  Same state machines as
    #: the live service (:mod:`repro.service.isolation`), driven by
    #: arrival times instead of the wall clock, so gating decisions are
    #: part of the deterministic summary.
    tenant_rate: Optional[float] = None
    tenant_burst: float = 4.0
    breaker_failures: Optional[int] = None
    breaker_cooldown: float = 5.0

    def __post_init__(self):
        object.__setattr__(
            self, "classes",
            tuple((str(kind), float(weight)) for kind, weight in self.classes),
        )
        object.__setattr__(self, "rates", _pairs(self.rates))
        object.__setattr__(self, "policy", _pairs(self.policy))
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.model_servers < 1:
            raise ValueError(
                f"model_servers must be >= 1, got {self.model_servers}"
            )
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be > 0, got {self.base_rate}")
        if self.tenant_rate is not None and self.tenant_rate <= 0:
            raise ValueError(
                f"tenant_rate must be > 0, got {self.tenant_rate}"
            )
        if self.breaker_failures is not None and self.breaker_failures < 1:
            raise ValueError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        for kind, _ in self.classes:
            if kind not in CLASS_PRIORITY:
                raise ValueError(
                    f"unknown job class {kind!r}: valid classes are "
                    + ", ".join(sorted(CLASS_PRIORITY))
                )

    @property
    def effective_high_water(self) -> int:
        if self.high_water is not None:
            return self.high_water
        return max(1, (self.max_depth * 3) // 4)

    def as_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["classes"] = [list(pair) for pair in self.classes]
        payload["rates"] = [list(pair) for pair in self.rates]
        payload["policy"] = [list(pair) for pair in self.policy]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown trace spec fields {sorted(unknown)}; "
                f"know {sorted(known)}"
            )
        data = dict(payload)
        for name in ("classes", "rates", "policy"):
            if name in data and data[name] is not None:
                data[name] = tuple(tuple(pair) for pair in data[name])
        return cls(**data)


def load_trace_spec(path: str) -> TraceSpec:
    """Read a :class:`TraceSpec` from a JSON file."""
    with open(path) as fh:
        return TraceSpec.from_dict(json.load(fh))


def save_trace_spec(path: str, spec: TraceSpec) -> None:
    """Write a :class:`TraceSpec` to a JSON file."""
    with open(path, "w") as fh:
        json.dump(spec.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


# -- generation ---------------------------------------------------------------


@dataclass(frozen=True)
class Arrival:
    """One generated request: a job spec plus its arrival metadata."""

    index: int
    #: Virtual arrival time (seconds since trace start).
    t: float
    tenant: str
    kind: str
    priority: int
    spec: JobSpec


def _tenant_weights(spec: TraceSpec) -> np.ndarray:
    weights = np.array(
        [1.0 / (rank + 1) ** spec.tenant_skew for rank in range(spec.tenants)]
    )
    return weights / weights.sum()


def _run_spec(spec: TraceSpec, rng: np.random.Generator, tenant: int) -> JobSpec:
    """An interactive MiniC job with a tenant-skewed (quantized) size."""
    template_name = sorted(MINIC_TEMPLATES)[int(rng.integers(len(MINIC_TEMPLATES)))]
    # Rank-0 tenants send small requests, heavier ranks bigger ones;
    # sizes quantize to a small set so identical requests recur (and
    # exercise the shared result store).
    size = 32 * (tenant + 1) * int(2 ** rng.integers(0, 3))
    return JobSpec(
        kind="run",
        source=MINIC_TEMPLATES[template_name].format(n=size),
        arrays=(f"A={size}:float:arange", f"B={size}:float:zeros"),
        scalars=(f"n={size}",),
        optimize=bool(rng.integers(2)),
        seed=spec.seed,
        engine=spec.engine,
        devices=spec.devices,
        trace=spec.traced,
        priority=CLASS_PRIORITY["run"],
        tenant=f"t{tenant}",
    )


def _bench_spec(spec: TraceSpec, rng: np.random.Generator, tenant: int) -> JobSpec:
    from repro.workloads.suite import workload_names

    names = sorted(workload_names())
    return JobSpec(
        kind="bench",
        workload=names[int(rng.integers(len(names)))],
        seed=spec.seed,
        engine=spec.engine,
        devices=spec.devices,
        trace=spec.traced,
        priority=CLASS_PRIORITY["bench"],
        tenant=f"t{tenant}",
    )


def _faults_spec(spec: TraceSpec, rng: np.random.Generator, tenant: int) -> JobSpec:
    from repro.workloads.suite import workload_names

    names = sorted(workload_names())
    return JobSpec(
        kind="faults",
        workload=names[int(rng.integers(len(names)))],
        variant="opt",
        scenario=int(rng.integers(max(1, spec.scenarios))),
        seed=spec.seed,
        engine=spec.engine,
        devices=spec.devices,
        rates=spec.rates,
        policy=spec.policy,
        trace=spec.traced,
        priority=CLASS_PRIORITY["faults"],
        tenant=f"t{tenant}",
    )


_CLASS_BUILDERS = {
    "run": _run_spec,
    "bench": _bench_spec,
    "faults": _faults_spec,
}


def generate_trace(spec: TraceSpec) -> List[Arrival]:
    """Expand *spec* into concrete arrivals; pure function of the spec.

    Arrival times follow a Markov-modulated Poisson process: the trace
    alternates exponentially-distributed "off" (base rate) and "on"
    (rate × ``burst_factor``) phases, so load comes in bursts rather
    than a smooth stream.  Tenants are drawn Zipf-skewed; each arrival's
    class, priority, and size derive from its tenant and class draw.
    """
    rng = np.random.default_rng(spec.seed)
    tenant_p = _tenant_weights(spec)
    class_names = [kind for kind, _ in spec.classes]
    class_w = np.array([weight for _, weight in spec.classes])
    class_p = class_w / class_w.sum()

    arrivals: List[Arrival] = []
    t = 0.0
    burst_on = False
    phase_end = float(rng.exponential(spec.mean_off))
    for index in range(spec.requests):
        rate = spec.base_rate * (spec.burst_factor if burst_on else 1.0)
        t += float(rng.exponential(1.0 / rate))
        while t >= phase_end:
            burst_on = not burst_on
            mean = spec.mean_on if burst_on else spec.mean_off
            phase_end += float(rng.exponential(mean))
        tenant = int(rng.choice(spec.tenants, p=tenant_p))
        kind = str(rng.choice(class_names, p=class_p))
        job = _CLASS_BUILDERS[kind](spec, rng, tenant)
        arrivals.append(
            Arrival(
                index=index,
                t=round(t, 9),
                tenant=f"t{tenant}",
                kind=kind,
                priority=CLASS_PRIORITY[kind],
                spec=job,
            )
        )
    return arrivals


# -- virtual-time queue model -------------------------------------------------


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def simulate_queue(
    arrivals: List[Arrival],
    service_times: List[float],
    model_servers: int,
    high_water: int,
    est_service_seconds: float = 0.25,
) -> List[dict]:
    """Deterministic discrete-event model of the admission queue.

    *service_times* aligns with *arrivals* (duplicates carry 0.0 —
    cache hits are free).  ``model_servers`` abstract servers pull the
    highest-priority waiting job whenever one frees; an arrival seeing
    ``high_water`` jobs already waiting is rejected with the same
    retry-after hint the live queue computes.  Pure arithmetic over its
    inputs — the returned records are what makes replay summaries
    byte-stable across worker counts.
    """
    free_at = [0.0] * model_servers  # heap of server free times
    heapq.heapify(free_at)
    waiting: List[Tuple[int, int, int]] = []  # (priority, seq, arrival idx)
    records: List[Optional[dict]] = [None] * len(arrivals)

    def start_waiting(now: Optional[float]) -> None:
        # Hand waiting jobs to servers that free up to virtual time
        # `now` (None = drain everything at end of trace).
        while waiting and (now is None or free_at[0] <= now):
            free = heapq.heappop(free_at)
            _, _, idx = heapq.heappop(waiting)
            arrival = arrivals[idx]
            start = max(free, arrival.t)
            finish = start + service_times[idx]
            records[idx] = {
                "started": round(start, 9),
                "finished": round(finish, 9),
                "queue_latency": round(start - arrival.t, 9),
            }
            heapq.heappush(free_at, finish)

    for idx, arrival in enumerate(arrivals):
        start_waiting(arrival.t)
        depth = len(waiting)
        if depth >= high_water:
            over = depth - high_water + 1
            records[idx] = {
                "rejected": True,
                "depth": depth,
                "retry_after": round(max(1, over) * est_service_seconds, 6),
            }
            continue
        # Admit: run immediately if a server is idle, else wait.
        if free_at[0] <= arrival.t:
            free = heapq.heappop(free_at)
            finish = arrival.t + service_times[idx]
            records[idx] = {
                "started": arrival.t,
                "finished": round(finish, 9),
                "queue_latency": 0.0,
            }
            heapq.heappush(free_at, finish)
        else:
            heapq.heappush(waiting, (arrival.priority, idx, idx))
    start_waiting(None)
    return [record for record in records]


# -- replay -------------------------------------------------------------------


def _result_digest(result: dict) -> str:
    """Canonical digest of a job result (trace events excluded)."""
    slim = {k: v for k, v in result.items() if k != "trace_events"}
    blob = json.dumps(slim, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _job_summary(result: dict) -> dict:
    """The per-unique-job block the replay summary embeds."""
    entry = {
        "kind": result["kind"],
        "label": result["label"],
        "ok": result["ok"],
        "sim_time": result["sim_time"],
        "digest": _result_digest(result),
    }
    if "outputs" in result:
        entry["outputs"] = result["outputs"]
    if "variants" in result:
        entry["outputs"] = {
            variant: data["outputs"]
            for variant, data in sorted(result["variants"].items())
        }
    if "fault_stats" in result:
        entry["fault_stats"] = result["fault_stats"]
    return entry


async def _chaos_killer(service, kills: int, interval: float = 0.05) -> int:
    """Kill *kills* real pool workers, one every *interval* seconds.

    The chaos loop for ``repro replay-trace --kill-workers``: each kill
    breaks the executor mid-job, exercising the supervisor's
    rebuild-and-redispatch path while Phase A is still running.  Killed
    count is telemetry only — results are pure functions of specs, so
    the replay summary must come out byte-identical anyway.
    """
    killed = 0
    while killed < kills:
        await asyncio.sleep(interval)
        pid = service.pool.kill_one_worker()
        if pid is not None:
            killed += 1
    return killed


async def _execute_unique(
    unique: Dict[tuple, JobSpec],
    workers: int,
    pool_cls,
    metrics,
    kill_workers: int = 0,
    state_dir: Optional[str] = None,
    sync: str = "batch",
) -> Dict[tuple, dict]:
    from repro.service.service import CampaignService

    # The live queue must never reject during Phase A — admission is
    # modelled in virtual time, not measured — so size it above the
    # unique-job count (with headroom for journal-replayed re-admits).
    depth = max(64, 3 * len(unique) + 8)
    service = CampaignService(
        workers=workers,
        max_depth=depth,
        high_water=depth,
        metrics=metrics,
        pool_cls=pool_cls,
        state_dir=state_dir,
        sync=sync,
    )
    await service.start()
    killer = None
    try:
        jobs = {key: service.submit(spec) for key, spec in unique.items()}
        if kill_workers:
            killer = asyncio.create_task(
                _chaos_killer(service, kill_workers)
            )
        return {
            key: await service.result(job) for key, job in jobs.items()
        }
    finally:
        if killer is not None:
            killer.cancel()
            await asyncio.gather(killer, return_exceptions=True)
        await service.close()


def _gate_arrivals(
    spec: TraceSpec,
    arrivals: List[Arrival],
    results: Dict[tuple, dict],
) -> Tuple[List[Optional[str]], List[Optional[float]]]:
    """Virtual-time tenant-isolation pass over the trace.

    Replays the live service's token-bucket and circuit-breaker state
    machines (:mod:`repro.service.isolation`) at each arrival's virtual
    time.  Each admitted arrival's job outcome feeds the tenant's
    breaker immediately — a modelling simplification (completion is
    treated as instantaneous for breaker purposes) that keeps the pass
    a pure function of the trace.  Returns per-arrival reject reasons
    (None = admitted) and retry-after hints.
    """
    from repro.service.isolation import TenantGate
    from repro.service.queue import AdmissionRejected

    gate = TenantGate(
        rate=spec.tenant_rate,
        burst=spec.tenant_burst,
        breaker_failures=spec.breaker_failures,
        breaker_cooldown=spec.breaker_cooldown,
    )
    reasons: List[Optional[str]] = []
    retries: List[Optional[float]] = []
    for arrival in arrivals:
        try:
            gate.admit_at(arrival.tenant, arrival.t)
        except AdmissionRejected as exc:
            reasons.append(exc.reason)
            retries.append(exc.retry_after)
            continue
        reasons.append(None)
        retries.append(None)
        gate.record_at(
            arrival.tenant,
            ok=bool(results[arrival.spec.key()]["ok"]),
            now=arrival.t,
        )
    return reasons, retries


def replay_trace(
    spec: TraceSpec,
    workers: int = 0,
    pool_cls=None,
    metrics=None,
    trace_out: Optional[str] = None,
    kill_workers: int = 0,
    state_dir: Optional[str] = None,
    sync: str = "batch",
) -> dict:
    """Replay *spec* against the service; returns the summary document.

    Phase A executes each unique job spec once on *workers* warm
    workers (0 = inline); Phase B models queueing — and, when the spec
    enables them, per-tenant rate limits and circuit breakers — in
    virtual time.  The returned summary is a pure function of *spec* —
    byte-identical across repeats and worker counts.  *trace_out*
    (requires ``spec.traced``) additionally writes a merged
    Perfetto/Chrome trace of every executed job.

    *kill_workers* is the chaos knob: SIGKILL that many real pool
    workers while Phase A runs (requires ``workers > 0``).  The
    supervisor rebuilds the pool and redispatches interrupted jobs, so
    the summary must still come out byte-identical to an undisturbed
    replay — that equality is the worker-crash determinism check.

    *state_dir* runs Phase A on a durable service (write-ahead journal
    + persistent result store, fsync cadence *sync*): a replay SIGKILLed
    mid-trace and rerun on the same directory recovers journaled jobs
    and serves already-computed results from the warmed store instead of
    recomputing them.  Recovery shows up only in the metrics registry
    and the ``service.durability.*`` counters — never in the summary,
    which must stay byte-identical with or without a state dir.
    """
    if trace_out is not None and not spec.traced:
        raise ValueError(
            "trace output requested but the trace spec has traced=false"
        )
    if kill_workers < 0:
        raise ValueError(f"kill_workers must be >= 0, got {kill_workers}")
    if kill_workers and workers < 1:
        raise ValueError(
            "kill_workers needs a real worker pool (workers >= 1); "
            "inline mode has no processes to kill"
        )
    arrivals = generate_trace(spec)
    unique: Dict[tuple, JobSpec] = {}
    for arrival in arrivals:
        unique.setdefault(arrival.spec.key(), arrival.spec)
    results = asyncio.run(
        _execute_unique(
            unique, workers, pool_cls, metrics, kill_workers,
            state_dir=state_dir, sync=sync,
        )
    )

    # Tenant isolation gates arrivals before the queue model, exactly
    # as the live service gates submissions before queue admission.
    gate_reasons, gate_retries = _gate_arrivals(spec, arrivals, results)

    key_ids = {key: job.key_id() for key, job in unique.items()}
    first_seen: Dict[tuple, int] = {}
    admitted: List[Arrival] = []
    service_times: List[float] = []
    duplicates: List[bool] = []
    for arrival, reason in zip(arrivals, gate_reasons):
        if reason is not None:
            continue
        key = arrival.spec.key()
        duplicate = key in first_seen
        first_seen.setdefault(key, arrival.index)
        admitted.append(arrival)
        duplicates.append(duplicate)
        # Duplicates are served from the shared store: zero service time.
        service_times.append(
            0.0 if duplicate else float(results[key]["sim_time"])
        )

    queue_records = simulate_queue(
        admitted,
        service_times,
        spec.model_servers,
        spec.effective_high_water,
        spec.est_service_seconds,
    )

    arrival_rows = []
    latencies: List[float] = []
    classes: Dict[str, dict] = {}
    tenants: Dict[str, dict] = {}
    rejected = 0
    gated = 0
    gate_counts: Dict[str, int] = {"rate_limited": 0, "circuit_open": 0}
    busy = 0.0
    makespan = 0.0
    qi = 0
    for arrival, reason, gate_retry in zip(arrivals, gate_reasons, gate_retries):
        row = {
            "index": arrival.index,
            "t": arrival.t,
            "tenant": arrival.tenant,
            "kind": arrival.kind,
            "priority": arrival.priority,
            "key": key_ids[arrival.spec.key()],
        }
        for scope, name in ((classes, arrival.kind), (tenants, arrival.tenant)):
            bucket = scope.setdefault(
                name,
                {"arrivals": 0, "rejected": 0, "gated": 0, "sim_time": 0.0},
            )
            bucket["arrivals"] += 1
        if reason is not None:
            gated += 1
            gate_counts[reason] = gate_counts.get(reason, 0) + 1
            classes[arrival.kind]["gated"] += 1
            tenants[arrival.tenant]["gated"] += 1
            row.update({
                "duplicate": False,
                "rejected": True,
                "reject_reason": reason,
                "retry_after": gate_retry,
            })
            arrival_rows.append(row)
            continue
        record = queue_records[qi]
        duplicate = duplicates[qi]
        service_time = service_times[qi]
        qi += 1
        row["duplicate"] = duplicate
        row["rejected"] = bool(record.get("rejected"))
        if row["rejected"]:
            rejected += 1
            classes[arrival.kind]["rejected"] += 1
            tenants[arrival.tenant]["rejected"] += 1
            row["reject_reason"] = "backpressure"
            row["retry_after"] = record["retry_after"]
        else:
            row.update(record)
            row["service_time"] = round(service_time, 9)
            latencies.append(record["queue_latency"])
            busy += service_time
            makespan = max(makespan, record["finished"])
            classes[arrival.kind]["sim_time"] = round(
                classes[arrival.kind]["sim_time"] + service_time, 9
            )
            tenants[arrival.tenant]["sim_time"] = round(
                tenants[arrival.tenant]["sim_time"] + service_time, 9
            )
        arrival_rows.append(row)

    fault_totals: Dict[str, float] = {}
    for key in sorted(unique, key=lambda k: key_ids[k]):
        stats = results[key].get("fault_stats")
        if not stats:
            continue
        for name, value in stats.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                fault_totals[name] = fault_totals.get(name, 0) + value

    latencies.sort()
    from repro.obs.provenance import build_provenance

    summary = {
        "schema": "repro.service.replay/1",
        "provenance": build_provenance(seed=spec.seed, engine=spec.engine),
        "spec": spec.as_dict(),
        "jobs": {
            key_ids[key]: _job_summary(results[key])
            for key in sorted(unique, key=lambda k: key_ids[k])
        },
        "arrivals": arrival_rows,
        "isolation": {
            "tenant_rate": spec.tenant_rate,
            "tenant_burst": spec.tenant_burst,
            "breaker_failures": spec.breaker_failures,
            "breaker_cooldown": spec.breaker_cooldown,
            "gated": gated,
            "rate_limited": gate_counts.get("rate_limited", 0),
            "circuit_open": gate_counts.get("circuit_open", 0),
        },
        "queue": {
            "model_servers": spec.model_servers,
            "max_depth": spec.max_depth,
            "high_water": spec.effective_high_water,
            "admitted": len(arrivals) - gated - rejected,
            "rejected": rejected,
            "gated": gated,
            "duplicates": sum(duplicates),
            "unique_jobs": len(unique),
            "p50_latency": round(_percentile(latencies, 50.0), 9),
            "p95_latency": round(_percentile(latencies, 95.0), 9),
            "max_latency": round(latencies[-1], 9) if latencies else 0.0,
            "makespan": round(makespan, 9),
            "utilization": round(
                busy / (spec.model_servers * makespan), 9
            ) if makespan else 0.0,
        },
        "classes": {name: classes[name] for name in sorted(classes)},
        "tenants": {name: tenants[name] for name in sorted(tenants)},
        "faults": {name: fault_totals[name] for name in sorted(fault_totals)},
        "ok": all(results[key]["ok"] for key in unique),
    }
    blob = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    summary["digest"] = hashlib.sha256(blob.encode()).hexdigest()

    if trace_out is not None:
        _write_replay_trace(trace_out, unique, key_ids, results)
    return summary


def _write_replay_trace(path, unique, key_ids, results) -> None:
    """Merge every executed job's trace events into one Perfetto file."""
    from repro.obs.export import sort_trace_events, write_chrome_trace

    events: List[dict] = []
    pid_base = 0
    for key in sorted(unique, key=lambda k: key_ids[k]):
        job_events = results[key].get("trace_events") or []
        max_pid = 0
        for event in job_events:
            shifted = dict(event)
            pid = int(shifted.get("pid", 0))
            max_pid = max(max_pid, pid)
            shifted["pid"] = pid_base + pid
            events.append(shifted)
        pid_base += max_pid + 1
    write_chrome_trace(path, sort_trace_events(events))


def summary_to_json(summary: dict) -> str:
    """The canonical byte form replay summaries are written in."""
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"
