"""Systematic parser/lexer error-path coverage: every malformed construct
must raise a positioned ParseError, never crash or mis-parse."""

import pytest

from repro.errors import ParseError, PragmaError
from repro.minic.parser import parse, parse_expr, parse_pragma


def rejects(source):
    with pytest.raises(ParseError):
        parse(source)


class TestMalformedDeclarations:
    def test_missing_semicolon(self):
        rejects("void main() { int x }")

    def test_missing_type(self):
        rejects("main() { }")

    def test_missing_closing_brace(self):
        rejects("void main() { int x;")

    def test_bad_struct_missing_semi(self):
        rejects("struct P { float x; }")

    def test_struct_without_name(self):
        rejects("struct { float x; };")

    def test_param_without_name(self):
        rejects("void f(float) { }")


class TestMalformedStatements:
    def test_if_without_parens(self):
        rejects("void main() { if x > 0 { } }")

    def test_for_missing_semicolons(self):
        rejects("void main() { for (int i = 0 i < n; i++) { } }")

    def test_while_missing_cond(self):
        rejects("void main() { while () { } }")

    def test_return_missing_semicolon(self):
        rejects("void main() { return 1 }")

    def test_stray_else(self):
        rejects("void main() { else { } }")

    def test_double_assign_op(self):
        rejects("void main() { x = = 1; }")


class TestMalformedExpressions:
    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_expr("(a + b")

    def test_trailing_operator(self):
        with pytest.raises(ParseError):
            parse_expr("a *")

    def test_empty_subscript(self):
        with pytest.raises(ParseError):
            parse_expr("A[]")

    def test_ternary_missing_colon(self):
        with pytest.raises(ParseError):
            parse_expr("a ? b")

    def test_prefix_increment_rejected_in_expression(self):
        with pytest.raises(ParseError):
            parse_expr("++i + 1")

    def test_member_of_nothing(self):
        with pytest.raises(ParseError):
            parse_expr(".x")

    def test_call_missing_close(self):
        with pytest.raises(ParseError):
            parse_expr("f(a, b")


class TestMalformedPragmas:
    def test_unknown_pragma_kind(self):
        with pytest.raises(PragmaError):
            parse_pragma("simd aligned(A)")

    def test_offload_missing_target(self):
        with pytest.raises((PragmaError, ParseError)):
            parse_pragma("offload in(A : length(n))")

    def test_bad_target_device(self):
        with pytest.raises((PragmaError, ParseError)):
            parse_pragma("offload target(gpu:0)")

    def test_clause_missing_paren(self):
        with pytest.raises((PragmaError, ParseError)):
            parse_pragma("offload target(mic:0) in A : length(n)")

    def test_bad_modifier(self):
        with pytest.raises(PragmaError):
            parse_pragma("offload target(mic:0) in(A : stride(2))")

    def test_omp_unknown_clause(self):
        with pytest.raises(PragmaError):
            parse_pragma("omp parallel for schedule(dynamic)")

    def test_pragma_error_carries_position_through_parse(self):
        try:
            parse("void main() {\n#pragma omp parallel frob\nfor (int i = 0; i < 1; i++) { }\n}")
        except ParseError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_pragma_over_non_loop(self):
        rejects("void main() {\n#pragma omp parallel for\nreturn;\n}")


class TestErrorPositions:
    def test_line_numbers_reported(self):
        try:
            parse("void main() {\n    int x;\n    x = ;\n}")
        except ParseError as exc:
            assert exc.line == 3
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_column_reported(self):
        try:
            parse_expr("a + @")
        except Exception as exc:
            assert "column" in str(exc) or "line" in str(exc)
