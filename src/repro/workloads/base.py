"""Workload infrastructure: the three benchmark variants.

Every benchmark can be materialized in three forms, mirroring Section VI:

* ``cpu`` — the original OpenMP program running on the host;
* ``mic`` — the same program with offload pragmas inserted automatically
  (the Apricot-style port used for Figure 1's unoptimized bars);
* ``opt`` — the offloaded program after the COMP optimization pipeline.

MiniC workloads execute through the interpreter at a reduced element
count (``exec`` scale) while timing and device-memory accounting use the
``sim_scale`` factor to reflect paper-scale inputs; outputs of all three
variants are compared element-for-element.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis.offload import insert_offload_pragmas
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.faults.stats import FaultStats
from repro.minic import ast_nodes as ast
from repro.minic.parser import parse, parse_expr
from repro.runtime.executor import ExecutionStats, Machine, run_program
from repro.transforms.pipeline import (
    CompOptimizer,
    OptimizationPlan,
    PipelineResult,
)

VARIANTS = ("cpu", "mic", "opt")


def input_rng(seed: Optional[int], default: int) -> np.random.Generator:
    """The generator for one workload input stream.

    Every workload owns fixed per-stream *default* seeds so the suite is
    reproducible with no configuration; a global *seed* (the ``--seed``
    flag) derives a new stream per (seed, default) pair, keeping streams
    decorrelated across both workloads and seeds.
    """
    if seed is None:
        return np.random.default_rng(default)
    return np.random.default_rng((seed, default))


@dataclass
class Table2Row:
    """Table II metadata for one benchmark."""

    suite: str
    paper_input: str
    kloc: float
    streaming: Optional[float] = None  # paper's individual speedups
    merging: Optional[float] = None
    regularization: Optional[float] = None
    shared_memory: Optional[float] = None

    @property
    def applicable(self) -> List[str]:
        """Which optimizations the paper marks for this benchmark."""
        names = []
        if self.streaming is not None:
            names.append("streaming")
        if self.merging is not None:
            names.append("merging")
        if self.regularization is not None:
            names.append("regularization")
        if self.shared_memory is not None:
            names.append("shared-memory")
        return names


@dataclass
class WorkloadRun:
    """Result of running one variant of one workload."""

    workload: str
    variant: str
    stats: ExecutionStats
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    pipeline: Optional[PipelineResult] = None
    #: Real (wall-clock) interpretation time of the run, in seconds —
    #: independent of the *simulated* time in ``stats``.
    wall_seconds: float = 0.0
    #: Execution engine the run used ("auto", "batch", or "tree").
    engine: str = "auto"
    #: Fault-injection and recovery accounting for the run (empty when
    #: the machine had no fault plan).
    fault_stats: Optional[FaultStats] = None

    @property
    def time(self) -> float:
        """The run's simulated total time."""
        return self.stats.total_time


class Workload:
    """Common interface implemented by both workload kinds."""

    name: str
    table2: Table2Row

    #: Default execution engine for this workload; None inherits "auto".
    #: A workload whose loops are known batch-hostile can pin "tree".
    engine: Optional[str] = None

    #: Global input seed (the ``--seed`` flag); None keeps each
    #: workload's fixed default input streams.
    input_seed: Optional[int] = None

    #: Timing/accounting scale of the simulated machine.
    sim_scale: float = 1.0

    def run(
        self,
        variant: str,
        machine: Optional[Machine] = None,
        engine: Optional[str] = None,
    ) -> WorkloadRun:
        """Execute one variant; returns a WorkloadRun."""
        raise NotImplementedError

    def resolve_engine(self, engine: Optional[str]) -> str:
        """The engine an explicit request / workload default resolves to."""
        return engine or self.engine or "auto"

    def machine(
        self,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResiliencePolicy] = None,
        tracer=None,
        devices: Optional[int] = None,
    ) -> Machine:
        """A fresh simulated machine at this workload's scale."""
        return Machine(
            scale=self.sim_scale,
            fault_plan=fault_plan,
            resilience=resilience,
            tracer=tracer,
            devices=devices,
        )

    def _rng(self, default: int) -> np.random.Generator:
        """An input generator honouring this workload's ``input_seed``."""
        return input_rng(self.input_seed, default)


class MiniCWorkload(Workload):
    """A benchmark expressed as a MiniC program."""

    def __init__(
        self,
        name: str,
        source: str,
        table2: Table2Row,
        make_arrays: Callable[[], Dict[str, np.ndarray]],
        scalars: Dict[str, object],
        sim_scale: float,
        output_arrays: List[str],
        array_length_hints: Optional[Dict[str, str]] = None,
        plan: Optional[OptimizationPlan] = None,
        description: str = "",
    ):
        self.name = name
        self.source = source
        self.table2 = table2
        self.make_arrays = make_arrays
        self.scalars = dict(scalars)
        self.sim_scale = sim_scale
        self.output_arrays = list(output_arrays)
        self.array_length_hints = {
            key: parse_expr(value) for key, value in (array_length_hints or {}).items()
        }
        self.plan = plan or OptimizationPlan()
        self.description = description

    # -- program variants ------------------------------------------------------

    #: Optional hand-written MIC port (hotspot's device-resident time loop,
    #: dedup's manually streamed pipeline).  When None, the MIC version is
    #: derived from the CPU source by Apricot-style pragma insertion.
    mic_source: Optional[str] = None

    def cpu_program(self) -> ast.Program:
        """The original OpenMP program."""
        return parse(self.source)

    def mic_program(self) -> ast.Program:
        """The offloaded (unoptimized) MIC program."""
        if self.mic_source is not None:
            program = parse(self.mic_source)
            insert_offload_pragmas(program, self.array_length_hints)
            return program
        program = parse(self.source)
        insert_offload_pragmas(program, self.array_length_hints)
        return program

    def opt_program(self) -> ast.Program:
        """The COMP-optimized MIC program."""
        program = self.mic_program()
        for name, expr in self.array_length_hints.items():
            self.plan.array_lengths.setdefault(name, expr)
        self._pipeline = CompOptimizer(self.plan).optimize(program)
        return program

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        variant: str,
        machine: Optional[Machine] = None,
        engine: Optional[str] = None,
    ) -> WorkloadRun:
        """Interpret one variant on the simulated machine."""
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}")
        engine = self.resolve_engine(engine)
        self._pipeline = None
        if variant == "cpu":
            program = self.cpu_program()
        elif variant == "mic":
            program = self.mic_program()
        else:
            program = self.opt_program()
        machine = machine or self.machine()
        arrays = (
            self.make_arrays()
            if self.input_seed is None
            else self.make_arrays(seed=self.input_seed)
        )
        started = time.perf_counter()
        result = run_program(
            program,
            arrays=arrays,
            scalars=dict(self.scalars),
            machine=machine,
            engine=engine,
        )
        wall_seconds = time.perf_counter() - started
        outputs = {
            name: result.array(name).copy() for name in self.output_arrays
        }
        return WorkloadRun(
            workload=self.name,
            variant=variant,
            stats=result.stats,
            outputs=outputs,
            pipeline=self._pipeline,
            wall_seconds=wall_seconds,
            engine=engine,
            fault_stats=machine.fault_stats,
        )

    _pipeline: Optional[PipelineResult] = None


class SharedMemoryWorkload(Workload):
    """A pointer-based benchmark driven through the shared-memory runtimes.

    Subclasses implement the three ``_run_*`` hooks; the base class wires
    them into the common variant interface.  The ``mic`` variant uses the
    MYO baseline, ``opt`` uses the arena + augmented-pointer mechanism.
    """

    def __init__(self, name: str, table2: Table2Row, sim_scale: float = 1.0):
        self.name = name
        self.table2 = table2
        self.sim_scale = sim_scale

    def run(
        self,
        variant: str,
        machine: Optional[Machine] = None,
        engine: Optional[str] = None,
    ) -> WorkloadRun:
        """Drive one variant through the shared-memory runtimes.

        These workloads run as Python drivers, not MiniC programs, so the
        engine choice does not apply; it is accepted for interface parity.
        """
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}")
        machine = machine or self.machine()
        started = time.perf_counter()
        hook = {
            "cpu": self._run_cpu,
            "mic": self._run_mic_myo,
            "opt": self._run_mic_arena,
        }[variant]
        outputs = hook(machine)
        machine.finalize_integrity()
        wall_seconds = time.perf_counter() - started
        stats = ExecutionStats(
            total_time=machine.clock.now,
            device_busy_time=machine.timeline.busy_time("mic"),
            transfer_to_device_time=machine.timeline.busy_time("dma:h2d"),
            transfer_from_device_time=machine.timeline.busy_time("dma:d2h"),
            bytes_to_device=machine.coi.stats.bytes_to_device,
            bytes_from_device=machine.coi.stats.bytes_from_device,
            kernel_launches=machine.coi.stats.kernel_launches,
            device_peak_bytes=machine.device_memory.peak,
        )
        return WorkloadRun(
            workload=self.name,
            variant=variant,
            stats=stats,
            outputs=outputs,
            wall_seconds=wall_seconds,
            engine="tree",
            fault_stats=machine.fault_stats,
        )

    # -- hooks -----------------------------------------------------------------

    def _run_cpu(self, machine: Machine) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def _run_mic_myo(self, machine: Machine) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def _run_mic_arena(self, machine: Machine) -> Dict[str, np.ndarray]:
        raise NotImplementedError
