"""Tests for the MiniC parser, including pragma parsing."""

import pytest

from repro.errors import ParseError, PragmaError
from repro.minic import ast_nodes as ast
from repro.minic.parser import parse, parse_expr, parse_pragma


class TestExpressions:
    def test_int_literal(self):
        assert parse_expr("42") == ast.IntLit(42)

    def test_float_literal(self):
        assert parse_expr("2.5") == ast.FloatLit(2.5)

    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, ast.BinOp)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinOp)
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr == ast.BinOp(
            "-", ast.BinOp("-", ast.Ident("a"), ast.Ident("b")), ast.Ident("c")
        )

    def test_parentheses_override(self):
        expr = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        assert parse_expr("-x") == ast.UnOp("-", ast.Ident("x"))

    def test_unary_plus_is_dropped(self):
        assert parse_expr("+x") == ast.Ident("x")

    def test_dereference_and_address(self):
        assert parse_expr("*p") == ast.UnOp("*", ast.Ident("p"))
        assert parse_expr("&x") == ast.UnOp("&", ast.Ident("x"))

    def test_subscript(self):
        expr = parse_expr("A[i + 1]")
        assert expr == ast.Subscript(
            ast.Ident("A"), ast.BinOp("+", ast.Ident("i"), ast.IntLit(1))
        )

    def test_nested_subscript(self):
        expr = parse_expr("A[B[i]]")
        assert isinstance(expr.index, ast.Subscript)

    def test_member_dot_and_arrow(self):
        assert parse_expr("p.x") == ast.Member(ast.Ident("p"), "x", arrow=False)
        assert parse_expr("p->x") == ast.Member(ast.Ident("p"), "x", arrow=True)

    def test_chained_member(self):
        expr = parse_expr("a.b.c")
        assert expr.field == "c"
        assert expr.base.field == "b"

    def test_call_no_args(self):
        assert parse_expr("f()") == ast.Call("f", [])

    def test_call_with_args(self):
        expr = parse_expr("BlkSchlsEqEuroNoDiv(sptprice[i], strike[i])")
        assert expr.func == "BlkSchlsEqEuroNoDiv"
        assert len(expr.args) == 2

    def test_ternary(self):
        expr = parse_expr("a > b ? a : b")
        assert isinstance(expr, ast.Cond)

    def test_ternary_right_assoc(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr.other, ast.Cond)

    def test_cast(self):
        expr = parse_expr("(float)x")
        assert expr == ast.Cast(ast.BaseType("float"), ast.Ident("x"))

    def test_pointer_cast(self):
        expr = parse_expr("(float*)p")
        assert isinstance(expr.type, ast.PointerType)

    def test_sizeof(self):
        expr = parse_expr("sizeof(float)")
        assert expr == ast.SizeOf(ast.BaseType("float"))

    def test_paren_expr_not_cast(self):
        expr = parse_expr("(a) + b")
        assert expr.op == "+"

    def test_logical_and_comparison(self):
        expr = parse_expr("a < b && c >= d")
        assert expr.op == "&&"

    def test_modulo(self):
        assert parse_expr("i % 2").op == "%"

    def test_unexpected_token_raises(self):
        with pytest.raises(ParseError):
            parse_expr("a + ")


class TestStatements:
    def _body(self, text):
        prog = parse("void main() {\n" + text + "\n}")
        return prog.function("main").body.stmts

    def test_declaration(self):
        (decl,) = self._body("int x;")
        assert decl == ast.VarDecl("x", ast.BaseType("int"))

    def test_declaration_with_init(self):
        (decl,) = self._body("float y = 1.5;")
        assert decl.init == ast.FloatLit(1.5)

    def test_pointer_declaration(self):
        (decl,) = self._body("float *p;")
        assert isinstance(decl.type, ast.PointerType)

    def test_array_declaration(self):
        (decl,) = self._body("int a[10];")
        assert isinstance(decl.type, ast.ArrayType)
        assert decl.type.size == ast.IntLit(10)

    def test_assignment(self):
        (stmt,) = self._body("x = 1;")
        assert stmt == ast.Assign(ast.Ident("x"), ast.IntLit(1))

    def test_compound_assignment(self):
        (stmt,) = self._body("x += 2;")
        assert stmt.op == "+="

    def test_subscript_assignment(self):
        (stmt,) = self._body("A[i] = B[i];")
        assert isinstance(stmt.target, ast.Subscript)

    def test_increment_statement(self):
        (stmt,) = self._body("i++;")
        assert stmt == ast.Assign(ast.Ident("i"), ast.IntLit(1), "+=")

    def test_if_else(self):
        (stmt,) = self._body("if (a < b) { x = 1; } else { x = 2; }")
        assert isinstance(stmt, ast.If)
        assert stmt.other is not None

    def test_if_without_braces(self):
        (stmt,) = self._body("if (a) x = 1;")
        assert isinstance(stmt.then, ast.Assign)

    def test_for_loop(self):
        (stmt,) = self._body("for (int i = 0; i < n; i++) { s += A[i]; }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.step.op == "+="

    def test_for_with_assign_init(self):
        (stmt,) = self._body("for (i = 0; i < n; i = i + 1) x = i;")
        assert isinstance(stmt.init, ast.Assign)

    def test_while(self):
        (stmt,) = self._body("while (x > 0) { x = x - 1; }")
        assert isinstance(stmt, ast.While)

    def test_return_value(self):
        (stmt,) = self._body("return x + 1;")
        assert isinstance(stmt, ast.Return)

    def test_break_continue(self):
        stmts = self._body("while (1) { break; continue; }")
        body = stmts[0].body.stmts
        assert isinstance(body[0], ast.Break)
        assert isinstance(body[1], ast.Continue)

    def test_nested_blocks(self):
        (stmt,) = self._body("{ { int x; } }")
        assert isinstance(stmt, ast.Block)

    def test_call_statement(self):
        (stmt,) = self._body("free_buffer(p);")
        assert isinstance(stmt, ast.ExprStmt)


class TestTopLevel:
    def test_function_with_params(self):
        prog = parse("float f(float x, int n) { return x; }")
        func = prog.function("f")
        assert len(func.params) == 2
        assert func.params[0].type == ast.BaseType("float")

    def test_function_void_params(self):
        prog = parse("void f(void) { }")
        assert prog.function("f").params == []

    def test_function_prototype(self):
        prog = parse("float f(float x);")
        assert prog.function("f").body is None

    def test_array_param_becomes_pointer(self):
        prog = parse("void f(float A[]) { }")
        assert isinstance(prog.function("f").params[0].type, ast.PointerType)

    def test_global_variable(self):
        prog = parse("int gcount = 0;\nvoid main() { }")
        globals_ = [d for d in prog.decls if isinstance(d, ast.GlobalDecl)]
        assert len(globals_) == 1

    def test_struct_definition(self):
        prog = parse("struct Point { float x; float y; };")
        (struct,) = prog.structs()
        assert struct.name == "Point"
        assert [f.name for f in struct.fields_] == ["x", "y"]

    def test_struct_with_pointer_field(self):
        prog = parse("struct Node { float value; struct Node *next; };")
        (struct,) = prog.structs()
        assert isinstance(struct.fields_[1].type, ast.PointerType)

    def test_struct_variable(self):
        prog = parse(
            "struct Point { float x; float y; };\n"
            "void main() { struct Point p; p.x = 1.0; }"
        )
        decl = prog.function("main").body.stmts[0]
        assert decl.type == ast.StructType("Point")

    def test_multiple_functions(self):
        prog = parse("void a() { }\nvoid b() { }")
        assert [f.name for f in prog.functions()] == ["a", "b"]

    def test_missing_function_raises_keyerror(self):
        prog = parse("void a() { }")
        with pytest.raises(KeyError):
            prog.function("nope")


class TestPragmaParsing:
    def test_omp_parallel_for(self):
        pragma = parse_pragma("omp parallel for")
        assert isinstance(pragma, ast.OmpParallelFor)

    def test_omp_private(self):
        pragma = parse_pragma("omp parallel for private(i, j)")
        assert pragma.private == ["i", "j"]

    def test_omp_reduction(self):
        pragma = parse_pragma("omp parallel for reduction(+:sum)")
        assert pragma.reduction == [("+", "sum")]

    def test_offload_target(self):
        pragma = parse_pragma("offload target(mic:0)")
        assert isinstance(pragma, ast.OffloadPragma)
        assert pragma.target == 0

    def test_offload_in_length(self):
        pragma = parse_pragma("offload target(mic:0) in(sptprice : length(n))")
        (clause,) = pragma.clauses
        assert clause.direction == "in"
        assert clause.var == "sptprice"
        assert clause.length == ast.Ident("n")

    def test_offload_multiple_vars_share_modifiers(self):
        pragma = parse_pragma("offload target(mic:0) in(A, B : length(n))")
        assert [c.var for c in pragma.clauses] == ["A", "B"]
        assert all(c.length == ast.Ident("n") for c in pragma.clauses)

    def test_offload_section_syntax(self):
        pragma = parse_pragma("offload target(mic:0) in(A[k*bsize:bsize])")
        (clause,) = pragma.clauses
        assert clause.start is not None
        assert clause.length == ast.Ident("bsize")

    def test_offload_into_with_alloc_free(self):
        text = (
            "offload_transfer target(mic:0) "
            "in(A[k*bsize:bsize] : into(A1) alloc_if(0) free_if(0)) signal(tag)"
        )
        pragma = parse_pragma(text)
        assert isinstance(pragma, ast.OffloadTransferPragma)
        (clause,) = pragma.clauses
        assert clause.into == "A1"
        assert clause.alloc_if == ast.IntLit(0)
        assert pragma.signal == ast.Ident("tag")

    def test_offload_wait(self):
        pragma = parse_pragma("offload_wait target(mic:0) wait(tag)")
        assert isinstance(pragma, ast.OffloadWaitPragma)

    def test_offload_signal_wait_clauses(self):
        pragma = parse_pragma("offload target(mic:0) signal(s1) wait(s0)")
        assert pragma.signal == ast.Ident("s1")
        assert pragma.wait == ast.Ident("s0")

    def test_offload_shared(self):
        pragma = parse_pragma("offload target(mic:0) shared(tree, nodes)")
        assert pragma.shared == ["tree", "nodes"]

    def test_bad_pragma_raises(self):
        with pytest.raises(PragmaError):
            parse_pragma("vectorize always")

    def test_bad_clause_raises(self):
        with pytest.raises(PragmaError):
            parse_pragma("offload target(mic:0) frobnicate(x)")


class TestPragmaAttachment:
    def test_offload_loop(self):
        prog = parse(
            """
            void main() {
            #pragma offload target(mic:0) in(A : length(n)) out(B : length(n))
            #pragma omp parallel for
                for (int i = 0; i < n; i++) {
                    B[i] = A[i] * 2.0;
                }
            }
            """
        )
        (loop,) = prog.function("main").body.stmts
        assert isinstance(loop, ast.For)
        assert isinstance(loop.pragmas[0], ast.OffloadPragma)
        assert isinstance(loop.pragmas[1], ast.OmpParallelFor)

    def test_standalone_transfer_is_statement(self):
        prog = parse(
            """
            void main() {
            #pragma offload_transfer target(mic:0) in(A[0:b] : into(A1)) signal(t)
                x = 1;
            }
            """
        )
        stmts = prog.function("main").body.stmts
        assert isinstance(stmts[0], ast.PragmaStmt)
        assert isinstance(stmts[1], ast.Assign)

    def test_offload_block(self):
        prog = parse(
            """
            void main() {
            #pragma offload target(mic:0) in(A : length(n))
                {
                    x = 1;
                }
            }
            """
        )
        (block,) = prog.function("main").body.stmts
        assert isinstance(block, ast.OffloadBlock)

    def test_pragma_before_non_loop_raises(self):
        with pytest.raises(ParseError):
            parse("void main() {\n#pragma omp parallel for\nx = 1;\n}")
