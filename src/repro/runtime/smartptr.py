"""Augmented shared pointers and the delta translation table (Section V-B).

Table I of the paper defines the pointer operations:

=============  =======================  ==========================================
Operation      CPU                      MIC
=============  =======================  ==========================================
``*p``         ``*(p.addr)``            ``*(p.addr + delta[p.bid])``
``p1 = p2``    ``p1 = p2``              ``p1 = p2``
``p = &obj``   ``p.bid = obj.bid``      ``p.bid = obj.bid``
               ``p.addr = &obj``        ``p.addr = &obj - delta[p.bid]``
=============  =======================  ==========================================

Shared pointers always store *CPU* addresses, even on the coprocessor; the
1-byte ``bid`` field names the arena buffer the pointee lives in, making
translation a single table lookup plus an add — O(1) instead of the linear
base-address search a naive scheme needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import PointerTranslationError

#: The bid field is one byte (Section V-B), capping arena buffer count.
MAX_BUFFERS = 256


@dataclass(frozen=True)
class SharedPtr:
    """An augmented pointer: CPU address + buffer id."""

    addr: int
    bid: int

    def __post_init__(self) -> None:
        if not 0 <= self.bid < MAX_BUFFERS:
            raise PointerTranslationError(
                f"buffer id {self.bid} does not fit the 1-byte bid field"
            )

    def is_null(self) -> bool:
        """True for the null shared pointer."""
        return self.addr == 0


NULL = SharedPtr(0, 0)


class DeltaTable:
    """Per-buffer base-address differences (MIC base minus CPU base)."""

    def __init__(self) -> None:
        self._delta: Dict[int, int] = {}
        #: CPU base addresses, kept for the naive linear-search ablation.
        self._cpu_bases: List[tuple] = []

    def register(self, bid: int, cpu_base: int, mic_base: int, size: int) -> None:
        """Record the copy of buffer *bid* to the device."""
        if not 0 <= bid < MAX_BUFFERS:
            raise PointerTranslationError(f"buffer id {bid} out of range")
        self._delta[bid] = mic_base - cpu_base
        self._cpu_bases.append((cpu_base, size, bid))

    def refresh(self, bid: int, cpu_base: int, mic_base: int) -> None:
        """Re-derive buffer *bid*'s delta after its device copy was rebuilt.

        A device reset destroys every arena buffer; the rebuild places
        each buffer at a freshly computed device base, so the delta is
        recomputed rather than trusted.  Unlike :meth:`register` this
        does not append to the linear-search base list — the buffer is
        the same host-side object, only its device image moved.
        """
        if bid not in self._delta:
            raise PointerTranslationError(
                f"cannot refresh buffer {bid}: it was never registered"
            )
        self._delta[bid] = mic_base - cpu_base

    def __len__(self) -> int:
        return len(self._delta)

    def __contains__(self, bid: int) -> bool:
        return bid in self._delta

    def translate(self, ptr: SharedPtr) -> int:
        """O(1) CPU→MIC address translation using the bid field."""
        if ptr.is_null():
            raise PointerTranslationError("dereference of a null shared pointer")
        delta = self._delta.get(ptr.bid)
        if delta is None:
            raise PointerTranslationError(
                f"buffer {ptr.bid} was never copied to the device"
            )
        return ptr.addr + delta

    def translate_linear(self, ptr: SharedPtr) -> tuple:
        """The naive translation: search every buffer's base address range.

        Returns (device_address, comparisons) so the ablation benchmark can
        report the cost the paper's bid field avoids ("a set of comparison
        operations with the worst time complexity linear to the number of
        buffers").
        """
        if ptr.is_null():
            raise PointerTranslationError("dereference of a null shared pointer")
        comparisons = 0
        for cpu_base, size, bid in self._cpu_bases:
            comparisons += 1
            if cpu_base <= ptr.addr < cpu_base + size:
                return ptr.addr + self._delta[bid], comparisons
        raise PointerTranslationError(
            f"address {ptr.addr:#x} not inside any copied buffer"
        )

    def take_address(self, obj_addr: int, obj_bid: int, on_mic: bool) -> SharedPtr:
        """``p = &obj`` per Table I: the stored address is a CPU address.

        On the MIC the object lives at a translated address, so taking its
        address subtracts the delta back out.
        """
        if on_mic:
            delta = self._delta.get(obj_bid)
            if delta is None:
                raise PointerTranslationError(
                    f"buffer {obj_bid} was never copied to the device"
                )
            return SharedPtr(obj_addr - delta, obj_bid)
        return SharedPtr(obj_addr, obj_bid)
