"""Focused tests for the streaming planner: direction narrowing, dead
clause elimination, section expressions, and resident fallbacks."""

import numpy as np
import pytest

from repro.analysis.array_access import classify_accesses
from repro.minic import ast_nodes as ast
from repro.minic.parser import parse, parse_expr
from repro.minic.printer import to_source
from repro.minic.visitor import find_offload_loops, get_pragma
from repro.runtime.executor import Machine, run_program
from repro.transforms.streaming import (
    StreamingOptions,
    _narrow_direction,
    apply_streaming,
    plan_arrays,
)


def loop_and_pragma(source):
    program = parse(source)
    loop = find_offload_loops(program)[0]
    return loop, get_pragma(loop, ast.OffloadPragma)


class TestNarrowDirection:
    def _accesses(self, body):
        loop, _ = loop_and_pragma(
            "void main() {\n"
            "#pragma offload target(mic:0) in(n) inout(A : length(n)) inout(B : length(n))\n"
            "#pragma omp parallel for\n"
            f"for (int i = 0; i < n; i++) {{ {body} }} }}"
        )
        return [a for a in classify_accesses(loop) if a.array == "A"]

    def test_writeonly_inout_narrows_to_out(self):
        accesses = self._accesses("A[i] = B[i];")
        assert _narrow_direction("inout", accesses) == "out"

    def test_guarded_write_keeps_inout(self):
        accesses = self._accesses("if (B[i] > 0.0) { A[i] = 1.0; }")
        assert _narrow_direction("inout", accesses) == "inout"

    def test_readonly_inout_narrows_to_in(self):
        accesses = self._accesses("B[i] = A[i];")
        assert _narrow_direction("inout", accesses) == "in"

    def test_readonly_out_narrows_to_in(self):
        accesses = self._accesses("B[i] = A[i];")
        assert _narrow_direction("out", accesses) == "in"

    def test_true_inout_unchanged(self):
        accesses = self._accesses("A[i] = A[i] + 1.0;")
        assert _narrow_direction("inout", accesses) == "inout"

    def test_in_never_widened(self):
        accesses = self._accesses("B[i] = A[i];")
        assert _narrow_direction("in", accesses) == "in"


class TestPlanArrays:
    def test_dead_clause_dropped(self):
        loop, pragma = loop_and_pragma(
            "void main() {\n"
            "#pragma offload target(mic:0) in(A : length(n)) in(unused : length(n)) in(n) out(B : length(n))\n"
            "#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { B[i] = A[i]; } }"
        )
        plans, scalars = plan_arrays(loop, pragma, {})
        assert {p.name for p in plans} == {"A", "B"}
        assert {c.var for c in scalars} == {"n"}

    def test_streamed_flags(self):
        loop, pragma = loop_and_pragma(
            "void main() {\n"
            "#pragma offload target(mic:0) in(A : length(n)) in(k) in(n) out(B : length(n))\n"
            "#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { B[i] = A[i] * (float)k; } }"
        )
        plans, _ = plan_arrays(loop, pragma, {})
        by_name = {p.name: p for p in plans}
        assert by_name["A"].streamed
        assert by_name["B"].streamed

    def test_offset_bounds_recorded(self):
        loop, pragma = loop_and_pragma(
            "void main() {\n"
            "#pragma offload target(mic:0) in(A : length(n + 3)) in(n) out(B : length(n))\n"
            "#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { B[i] = A[i] + A[i + 3]; } }"
        )
        plans, _ = plan_arrays(loop, pragma, {})
        plan = next(p for p in plans if p.name == "A")
        assert plan.read_cmin == 0
        assert plan.read_cmax == 3

    def test_negative_offset_not_streamed(self):
        loop, pragma = loop_and_pragma(
            "void main() {\n"
            "#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))\n"
            "#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { B[i] = i > 0 ? A[i - 1] : 0.0; } }"
        )
        plans, _ = plan_arrays(loop, pragma, {})
        plan = next(p for p in plans if p.name == "A")
        assert not plan.streamed

    def test_mixed_coefficients_not_streamed(self):
        loop, pragma = loop_and_pragma(
            "void main() {\n"
            "#pragma offload target(mic:0) in(A : length(2 * n)) in(n) out(B : length(n))\n"
            "#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { B[i] = A[i] + A[2 * i]; } }"
        )
        plans, _ = plan_arrays(loop, pragma, {})
        plan = next(p for p in plans if p.name == "A")
        assert not plan.streamed

    def test_inout_write_outside_read_range_not_streamed(self):
        loop, pragma = loop_and_pragma(
            "void main() {\n"
            "#pragma offload target(mic:0) inout(A : length(n + 1)) in(n)\n"
            "#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { A[i + 1] = A[i]; } }"
        )
        plans, _ = plan_arrays(loop, pragma, {})
        plan = next(p for p in plans if p.name == "A")
        assert not plan.streamed


class TestNarrowedTransfers:
    def test_writeonly_inout_saves_inbound_bytes(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(n)) in(n) inout(C : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { C[i] = A[i] * 2.0; }
        }
        """
        n = 512

        def arrays():
            return {
                "A": np.ones(n, dtype=np.float32),
                "C": np.zeros(n, dtype=np.float32),
            }

        plain = run_program(
            src, arrays=arrays(), scalars={"n": n}, machine=Machine()
        ).stats
        prog = parse(src)
        apply_streaming(prog, StreamingOptions(num_blocks=4))
        streamed = run_program(
            prog, arrays=arrays(), scalars={"n": n}, machine=Machine()
        ).stats
        # C's old contents no longer cross the bus.
        assert streamed.bytes_to_device <= plain.bytes_to_device - n * 4 + 64

    def test_dead_clause_costs_nothing(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(n)) in(unused : length(n)) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { B[i] = A[i]; }
        }
        """
        n = 256
        prog = parse(src)
        apply_streaming(prog, StreamingOptions(num_blocks=4))
        printed = to_source(prog)
        assert "unused" not in printed
