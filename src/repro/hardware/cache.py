"""Cache locality model.

Irregular memory accesses "hurt cache performance, due to the lack of
space locality" (Section IV).  We model this as a multiplier on effective
memory bandwidth: regular streams run at full bandwidth; each irregular
access costs a full cache line of traffic while using only one element of
it, so a loop whose accesses are mostly irregular sees bandwidth collapse
by roughly ``line_bytes / element_bytes``.
"""

from __future__ import annotations

CACHE_LINE_BYTES = 64


def locality_factor(
    irregular_fraction: float,
    element_bytes: int = 4,
    line_bytes: int = CACHE_LINE_BYTES,
) -> float:
    """Effective-bandwidth multiplier in (0, 1].

    *irregular_fraction* is the fraction of dynamic memory accesses whose
    addresses are not sequential across iterations.  With fraction f, the
    average bytes fetched per useful element is
    ``(1-f)*element + f*line``; the factor is the ratio of useful to
    fetched bytes.
    """
    if not 0.0 <= irregular_fraction <= 1.0:
        raise ValueError(f"irregular_fraction {irregular_fraction} out of [0,1]")
    if element_bytes <= 0 or line_bytes < element_bytes:
        raise ValueError("element/line sizes must satisfy 0 < element <= line")
    fetched = (1.0 - irregular_fraction) * element_bytes + (
        irregular_fraction * line_bytes
    )
    return element_bytes / fetched
