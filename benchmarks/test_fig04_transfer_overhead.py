"""Figure 4: data transfer time over calculation time on the MIC.

For blackscholes, kmeans and nn, PCIe transfer takes longer than the
device computation — the motivation for data streaming.
"""

from benchmarks.conftest import emit
from repro.experiments.figures import figure4
from repro.experiments.report import render_figure


def test_figure4_transfer_overhead(benchmark, runner):
    fig = benchmark.pedantic(
        lambda: figure4(runner), rounds=1, iterations=1
    )
    emit(render_figure(fig))
    for name, ratio in fig.series.items():
        assert ratio > 1.0, (name, ratio)
