"""Regeneration of Tables I, II and III."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MyoLimitError
from repro.experiments.harness import SuiteRunner
from repro.minic.parser import parse
from repro.transforms.shared_memory import lower_shared_memory
from repro.workloads.base import MiniCWorkload
from repro.workloads.suite import get_workload, workload_names


@dataclass
class TableData:
    table_id: str
    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)


def table1_demo() -> TableData:
    """Table I: pointer operations on CPU and MIC, demonstrated live.

    The semantics are implemented by
    :class:`~repro.runtime.smartptr.DeltaTable`; this table shows one
    concrete pointer round-tripping through each operation.
    """
    from repro.runtime.smartptr import DeltaTable, SharedPtr

    table = DeltaTable()
    table.register(bid=2, cpu_base=0x4000, mic_base=0x900, size=0x1000)
    p = SharedPtr(addr=0x4010, bid=2)
    mic_addr = table.translate(p)
    back = table.take_address(mic_addr, 2, on_mic=True)

    data = TableData(
        table_id="table1",
        title="Pointer operations on CPU and MIC",
        headers=["Operation", "CPU", "MIC", "demo"],
    )
    data.rows = [
        ["*p", "*(p.addr)", "*(p.addr + delta[p.bid])",
         f"0x{p.addr:x} -> 0x{mic_addr:x}"],
        ["p1 = p2", "p1 = p2", "p1 = p2", "plain copy"],
        ["p = &obj", "p.bid = obj.bid; p.addr = &obj",
         "p.bid = obj.bid; p.addr = &obj - delta[p.bid]",
         f"0x{mic_addr:x} -> 0x{back.addr:x}"],
    ]
    data.notes.append(
        "shared pointers always store CPU addresses; translation is one "
        "table lookup plus an add"
    )
    return data


def table2(
    runner: SuiteRunner, names: Optional[List[str]] = None
) -> TableData:
    """Table II: benchmark info plus per-optimization applicability.

    The applicability columns come from actually running the optimizer:
    a benchmark gets a mark when the corresponding transform fired (or,
    for the shared-memory runtimes, when the workload uses them), and the
    measured isolated speedup is reported in parentheses like the paper.
    """
    data = TableData(
        table_id="table2",
        title="Benchmark information and applicability of each optimization",
        headers=[
            "Name", "Source", "Input", "KLOC",
            "Streaming", "Merging", "Regularization", "Shared Memory",
        ],
    )
    for name in names or workload_names():
        workload = get_workload(name)
        row = [
            name,
            workload.table2.suite,
            workload.table2.paper_input,
            f"{workload.table2.kloc:.3f}",
        ]
        marks = _applicability(runner, name, workload)
        for column in ("streaming", "merging", "regularization", "shared"):
            gain = marks.get(column)
            row.append("-" if gain is None else f"yes ({gain:.2f})")
        data.rows.append(row)
    data.notes.append(
        "parenthesized numbers are measured isolated speedups over the "
        "unoptimized MIC version"
    )
    return data


def _applicability(
    runner: SuiteRunner, name: str, workload
) -> Dict[str, float]:
    marks: Dict[str, float] = {}
    if not isinstance(workload, MiniCWorkload):
        # ferret / freqmine: the shared-memory mechanism.
        marks["shared"] = runner.run_benchmark(name).relative_gain
        return marks
    opt_run = runner.run_variant(name, "opt")
    pipeline = opt_run.pipeline
    if pipeline is None:
        return marks
    if pipeline.was_applied("data-streaming"):
        marks["streaming"] = runner.isolated_gain(name, "streaming")
    if pipeline.was_applied("offload-merging"):
        marks["merging"] = runner.isolated_gain(name, "merging")
    if pipeline.was_applied("regularization:reorder") or pipeline.was_applied(
        "regularization:split"
    ):
        marks["regularization"] = runner.isolated_gain(name, "regularization")
    return marks


def table3(runner: SuiteRunner) -> TableData:
    """Table III: the shared-memory mechanism versus Intel MYO."""
    data = TableData(
        table_id="table3",
        title="Performance gain by our shared memory mechanism",
        headers=["Name", "Static", "Dynamic", "Speedup", "MYO at full scale"],
    )
    for name in ("ferret", "freqmine"):
        workload = get_workload(name)
        # Static allocation sites: count them by running the lowering pass
        # on the benchmark's allocation code.
        report = lower_shared_memory(parse(workload.minic_snippet))
        static_sites = int(report.details[0].split()[1]) if report.applied else 0
        result = runner.run_benchmark(name)
        myo_note = "runs"
        if name == "ferret":
            if workload.myo_fails_at_full_scale():
                myo_note = "fails (allocation limit)"
        data.rows.append(
            [
                name,
                str(static_sites),
                str(workload.total_allocations),
                f"{result.relative_gain:.2f}",
                myo_note,
            ]
        )
    data.notes.append(
        "paper: ferret 19 static / 80298 dynamic / 7.81x (cannot run under "
        "MYO at 3500 images); freqmine 7 static / 912 dynamic / 1.16x"
    )
    return data
