"""Interpreter throughput: tree walker vs batch vs codegen engines.

Times a blackscholes-style parallel kernel under all three engines and
writes ``BENCH_interp.json`` at the repo root with iterations/second per
engine, so CI tracks the interpreter's raw speed alongside the paper
figures.  The codegen tier must hold >= 3x throughput over the batch
engine on this kernel (the generated function pays zero per-op Python
dispatch and frees dead temps so passes stay L2-resident).

Each engine runs the kernel with its own repetition count — the tree
walker is ~three orders of magnitude slower per entry, so equal reps
would either starve the fast engines of measurement resolution or take
minutes.  Throughput normalizes by each engine's own iteration count,
and the kernel is idempotent (C[i] depends only on the inputs), so the
cross-engine output assertion is unaffected by differing reps.
"""

import json
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.report import render_table
from repro.obs.provenance import build_provenance
from repro.runtime.executor import Machine, run_program

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_interp.json"

N = 20_000

#: Loop repetitions per engine: enough that per-entry cost dominates the
#: fixed parse/setup overhead (~0.5 ms), small enough to keep the bench
#: quick.  (reps, timing repeats — best-of is reported.)
ENGINE_REPS = {
    "tree": (1, 1),
    "batch": (40, 3),
    "codegen": (40, 3),
}

KERNEL = """
void main() {
    for (int r = 0; r < reps; r++) {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            double d1 = (log(S[i] / K[i]) + 0.573 * T[i]) / (0.3 * sqrt(T[i]));
            double d2 = d1 - 0.3 * sqrt(T[i]);
            double nd1 = 1.0 / (1.0 + exp(0.0 - 1.702 * d1));
            double nd2 = 1.0 / (1.0 + exp(0.0 - 1.702 * d2));
            C[i] = S[i] * nd1 - K[i] * exp(0.0 - 0.05 * T[i]) * nd2;
        }
    }
}
"""


def _arrays():
    rng = np.random.default_rng(42)
    return {
        "S": (rng.random(N) * 90 + 10).astype(np.float64),
        "K": (rng.random(N) * 90 + 10).astype(np.float64),
        "T": (rng.random(N) * 2 + 0.1).astype(np.float64),
        "C": np.zeros(N, dtype=np.float64),
    }


def _time_engine(engine):
    reps, repeats = ENGINE_REPS[engine]
    best = float("inf")
    result = None
    for _ in range(repeats):
        arrays = _arrays()
        started = time.perf_counter()
        result = run_program(
            KERNEL,
            arrays=arrays,
            scalars={"n": N, "reps": reps},
            machine=Machine(),
            engine=engine,
        )
        best = min(best, time.perf_counter() - started)
    return best, reps, result


def test_interpreter_throughput():
    report = {
        "provenance": build_provenance(
            seed=42, engine="tree,batch,codegen", workers=1
        ),
        "benchmark": "interp_throughput",
        "kernel": "blackscholes-style parallel for",
        "lanes": N,
        "engines": {},
    }
    outputs = {}
    for engine in ("tree", "batch", "codegen"):
        seconds, reps, result = _time_engine(engine)
        outputs[engine] = result.array("C").copy()
        iterations = N * reps
        report["engines"][engine] = {
            "seconds": round(seconds, 6),
            "reps": reps,
            "iterations_per_sec": round(iterations / seconds, 1),
        }

    # Throughput claims are only meaningful if all engines computed the
    # same thing.
    assert outputs["batch"].tobytes() == outputs["tree"].tobytes()
    assert outputs["codegen"].tobytes() == outputs["tree"].tobytes()

    tree = report["engines"]["tree"]["iterations_per_sec"]
    batch = report["engines"]["batch"]["iterations_per_sec"]
    codegen = report["engines"]["codegen"]["iterations_per_sec"]
    report["batch_speedup"] = round(batch / tree, 2)
    report["codegen_speedup_vs_batch"] = round(codegen / batch, 2)
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    emit(render_table(
        ["engine", "seconds", "iters/sec"],
        [
            [engine, f"{entry['seconds']:10.4f}",
             f"{entry['iterations_per_sec']:14.1f}"]
            for engine, entry in report["engines"].items()
        ],
    ))
    assert report["batch_speedup"] > 1.0
    assert report["codegen_speedup_vs_batch"] >= 3.0
