"""JSON-lines TCP front end for the campaign service.

The wire protocol is a single JSON request line followed by a stream of
JSON event lines — no framing, no dependencies, easy to drive from
``nc`` or a five-line client:

* ``{"op": "submit", "spec": {...JobSpec...}}`` — admit one job and
  stream its lifecycle events (``queued`` → ``started``/``cached`` →
  ``result`` → ``done``/``failed``/``timeout``) back as they happen, so
  results reach the client incrementally rather than at the end.
  Backpressure is a normal response, not a dropped connection: a
  refused submission answers ``{"event": "rejected", "reason": ...,
  "retry_after": ...}`` — reason ``backpressure`` for a full queue,
  ``rate_limited``/``circuit_open`` for tenant isolation
  (:mod:`repro.service.isolation`), ``draining`` during shutdown.
* ``{"op": "stats"}`` — one line of fleet-wide service telemetry
  (queue depth, store hit rate, supervisor restarts, tenant gates,
  worker warm-cache state, metrics).
* ``{"op": "ping"}`` — liveness probe.
* ``{"op": "shutdown"}`` — drain and stop the server.

Shutdown — whether by the ``shutdown`` op or by SIGTERM/SIGINT in
:func:`serve` — is graceful: admission closes first (late submissions
get ``draining`` rejects with a retry-after hint while the listener
stays up), in-flight jobs get a grace period to finish, stragglers are
cancelled, and only then does the process exit.

Every response line carries an ``"event"`` field; protocol errors come
back as ``{"event": "error", "error": ...}`` instead of killing the
connection silently.
"""

from __future__ import annotations

import asyncio
import json
import signal as _signal
import socket
from typing import List, Optional

from repro.service.jobs import JobSpec
from repro.service.queue import AdmissionRejected
from repro.service.service import CampaignService


def _line(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


class CampaignServer:
    """Serves one :class:`CampaignService` over JSON-lines TCP."""

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> "CampaignServer":
        """Bind and start accepting; resolves ``port=0`` to the real port."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def request_shutdown(self) -> None:
        """Close admission and wake :meth:`serve_until_shutdown`.

        Signal-handler safe: nothing async happens here — the waiter
        performs the actual drain.  New submissions are rejected with
        ``reason="draining"`` from this point on, but the listener stays
        up so those rejects reach clients as protocol events rather
        than refused connections.
        """
        self.service.begin_drain()
        self._shutdown.set()

    async def serve_until_shutdown(
        self, grace_seconds: Optional[float] = None
    ) -> bool:
        """Block until a shutdown request, then drain and close.

        Returns True when every in-flight job finished within the grace
        period (None = wait forever), False when stragglers had to be
        cancelled.
        """
        await self._shutdown.wait()
        return await self.drain_and_close(grace_seconds)

    async def drain_and_close(
        self, grace_seconds: Optional[float] = None
    ) -> bool:
        """Graceful stop: reject new work, drain in-flight, then close."""
        self.service.begin_drain()
        drained = await self.service.drain_gracefully(grace_seconds)
        await self.close()
        return drained

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()
        self._shutdown.set()

    # -- request handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            raw = await reader.readline()
            if not raw:
                return
            try:
                request = json.loads(raw)
            except json.JSONDecodeError as exc:
                writer.write(_line({"event": "error", "error": f"bad JSON: {exc}"}))
                return
            op = request.get("op")
            if op == "ping":
                writer.write(_line({"event": "pong"}))
            elif op == "stats":
                await self._handle_stats(writer)
            elif op == "submit":
                await self._handle_submit(request, writer)
            elif op == "shutdown":
                writer.write(_line({"event": "bye"}))
                self.request_shutdown()
            else:
                writer.write(_line({
                    "event": "error",
                    "error": f"unknown op {op!r}: valid ops are "
                             "submit, stats, ping, shutdown",
                }))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_stats(self, writer: asyncio.StreamWriter) -> None:
        snapshot = self.service.snapshot()
        snapshot["warm"] = await self.service.pool.warm_stats()
        writer.write(_line({"event": "stats", **snapshot}))

    async def _handle_submit(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        try:
            spec = JobSpec.from_dict(request.get("spec") or {})
            job = self.service.submit(spec)
        except AdmissionRejected as exc:
            writer.write(_line({
                "event": "rejected",
                "reason": exc.reason,
                "depth": exc.depth,
                "retry_after": exc.retry_after,
            }))
            return
        except (ValueError, TypeError) as exc:
            writer.write(_line({"event": "error", "error": str(exc)}))
            return
        async for event in self.service.stream(job):
            writer.write(_line(event))
            await writer.drain()


async def serve(
    host: str = "127.0.0.1",
    port: int = 8753,
    workers: int = 0,
    max_depth: int = 64,
    high_water: Optional[int] = None,
    ready=None,
    grace_seconds: Optional[float] = 30.0,
    final_stats=None,
    store_max_entries: Optional[int] = None,
    tenant_rate: Optional[float] = None,
    tenant_burst: float = 4.0,
    breaker_failures: Optional[int] = None,
    breaker_cooldown: float = 30.0,
    state_dir: Optional[str] = None,
    sync: str = "batch",
    recovered=None,
) -> bool:
    """Run a campaign service on TCP until a shutdown request or signal.

    *ready* (optional callable) receives the bound port once the server
    is accepting — the CLI uses it to print the endpoint, tests use it
    to learn an ephemeral port.  SIGTERM/SIGINT trigger the same
    graceful drain as the ``shutdown`` op (where the platform supports
    loop signal handlers): admission closes, in-flight jobs get
    *grace_seconds* to finish, then the server exits cleanly.  Returns
    True when the drain completed within the grace period.

    *final_stats* (optional callable) receives the service's last
    snapshot after the drain — the CLI uses it to print closing
    telemetry.

    *state_dir* turns on the durability layer (write-ahead journal +
    persistent result store, see :mod:`repro.service.journal` and
    :mod:`repro.service.persist`) with the given fsync cadence *sync*;
    on a restart the journal is replayed before the port binds, and
    *recovered* (optional callable) receives the service's recovery
    dict — called before *ready*, so the banner can report what a
    crash-restart brought back.
    """
    service = CampaignService(
        workers=workers,
        max_depth=max_depth,
        high_water=high_water,
        store_max_entries=store_max_entries,
        tenant_rate=tenant_rate,
        tenant_burst=tenant_burst,
        breaker_failures=breaker_failures,
        breaker_cooldown=breaker_cooldown,
        state_dir=state_dir,
        sync=sync,
    )
    server = CampaignServer(service, host=host, port=port)
    await server.start()
    if recovered is not None and state_dir is not None:
        recovered(dict(service.recovery))
    loop = asyncio.get_running_loop()
    installed: List[int] = []
    for sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.request_shutdown)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            # Platforms/threads without loop signal support still get
            # the wire-protocol shutdown op.
            continue
    # Announce readiness only once signal handlers are live, so a
    # supervisor that signals right after the banner can't kill us.
    if ready is not None:
        ready(server.port)
    try:
        drained = await server.serve_until_shutdown(grace_seconds)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    if final_stats is not None:
        final_stats(service.snapshot())
    return drained


# -- synchronous client (CLI / tests) -----------------------------------------


def request(
    host: str, port: int, payload: dict, timeout: float = 60.0
) -> List[dict]:
    """Send one request line; return every response event line."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(_line(payload))
        events: List[dict] = []
        with sock.makefile("r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return events


def submit(
    host: str, port: int, spec: JobSpec, timeout: float = 300.0
) -> List[dict]:
    """Submit one job; returns its streamed event lines."""
    return request(
        host, port, {"op": "submit", "spec": spec.as_dict()}, timeout=timeout
    )
