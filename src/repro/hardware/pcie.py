"""PCIe transfer timing: bulk DMA versus MYO's paged mode.

The paper's Section V observation drives the model split: MYO copies
shared data "on the fly at page level", so it pays a software fault per
page and "direct memory access (DMA) is not fully utilized", whereas the
proposed arena mechanism copies entire preallocated buffers with full DMA
bandwidth ("copying data with 256 MB granularity can improve the
performance of ferret by 7.81x").
"""

from __future__ import annotations

import math

from repro.hardware.spec import PcieSpec


def dma_transfer_time(nbytes: float, pcie: PcieSpec) -> float:
    """Time for one bulk DMA transfer of *nbytes* over the link."""
    if nbytes < 0:
        raise ValueError(f"negative transfer size {nbytes}")
    if nbytes == 0:
        return 0.0
    return pcie.latency + nbytes / pcie.bandwidth


def transfer_breakdown(nbytes: float, pcie: PcieSpec) -> dict:
    """Decompose one bulk DMA transfer into its cost components.

    Observability hook: the COI runtime attaches this breakdown to DMA
    span attributes so a trace shows how much of each transfer was fixed
    link latency versus wire time — the distinction that decides whether
    a streamed loop should use fewer, larger blocks.
    """
    if nbytes <= 0:
        return {"bytes": max(0.0, nbytes), "latency": 0.0, "wire": 0.0}
    return {
        "bytes": nbytes,
        "latency": pcie.latency,
        "wire": nbytes / pcie.bandwidth,
    }


def paged_transfer_time(nbytes: float, pcie: PcieSpec) -> float:
    """Time to move *nbytes* under MYO's fault-driven page transfers.

    Every touched page costs a fault-handling overhead plus a short,
    non-streaming copy.  This is the per-access-time model Table III's
    baseline runs under.
    """
    if nbytes < 0:
        raise ValueError(f"negative transfer size {nbytes}")
    if nbytes == 0:
        return 0.0
    pages = max(1, math.ceil(nbytes / pcie.page_bytes))
    per_page_copy = pcie.page_bytes / (pcie.bandwidth * pcie.paged_bandwidth_fraction)
    return pages * (pcie.page_fault_overhead + per_page_copy)
