"""Offload-region identification and clause inference (Apricot-like).

The paper's baseline MIC versions were produced by "adding pragmas to
offload the parallel loops" — Apricot automates exactly that: find
``omp parallel for`` loops and synthesize the ``#pragma offload`` with its
``in``/``out``/``inout`` clauses from liveness and access analysis.  Our
Figure 1 experiment uses this pass to create the unoptimized MIC versions
of the twelve benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import AnalysisError
from repro.minic import ast_nodes as ast
from repro.minic.visitor import NodeTransformer, get_pragma, clone
from repro.analysis.array_access import (
    AccessKind,
    classify_accesses,
    loop_variable,
)
from repro.analysis.liveness import analyze_loop_liveness


def loop_bound(loop: ast.For) -> ast.Expr:
    """Extract the iteration-count expression of a canonical loop.

    Handles ``i < bound`` / ``i <= bound`` with a zero or nonzero start.
    """
    var = loop_variable(loop)
    cond = loop.cond
    if not isinstance(cond, ast.BinOp) or cond.op not in ("<", "<="):
        raise AnalysisError("loop condition is not i < bound")
    if not (isinstance(cond.left, ast.Ident) and cond.left.name == var):
        raise AnalysisError("loop condition does not compare the loop variable")
    bound = cond.right
    if cond.op == "<=":
        bound = ast.BinOp("+", clone(bound), ast.IntLit(1))
    start = _loop_start(loop)
    if isinstance(start, ast.IntLit) and start.value == 0:
        return bound
    return ast.BinOp("-", clone(bound), clone(start))


def _loop_start(loop: ast.For) -> ast.Expr:
    if isinstance(loop.init, ast.VarDecl) and loop.init.init is not None:
        return loop.init.init
    if isinstance(loop.init, ast.Assign):
        return loop.init.value
    raise AnalysisError("loop has no recognizable start value")


def infer_offload_pragma(
    loop: ast.For,
    array_lengths: Optional[Dict[str, ast.Expr]] = None,
    target: int = 0,
) -> ast.OffloadPragma:
    """Synthesize the ``#pragma offload`` for a parallel loop.

    *array_lengths* supplies whole-array lengths for arrays whose extent
    cannot be derived from the loop (indirect accesses transfer the entire
    array — exactly the waste regularization later removes).
    """
    array_lengths = array_lengths or {}
    liveness = analyze_loop_liveness(loop)
    accesses = classify_accesses(loop)
    bound = loop_bound(loop)

    extents: Dict[str, ast.Expr] = {}
    for access in accesses:
        length = _access_extent(access, bound, array_lengths)
        if length is None:
            continue
        previous = extents.get(access.array)
        extents[access.array] = _max_extent(previous, length)

    pragma = ast.OffloadPragma(target=target)

    def add(direction: str, name: str) -> None:
        if name in liveness.arrays:
            length = extents.get(name)
            if length is None:
                if name not in array_lengths:
                    raise AnalysisError(
                        f"cannot infer transfer length for array {name!r}"
                    )
                length = clone(array_lengths[name])
            pragma.clauses.append(
                ast.TransferClause(direction, name, length=length)
            )
        else:
            pragma.clauses.append(ast.TransferClause(direction, name))

    # A write-only array whose writes are all guarded may leave elements
    # untouched; the copy-back would replace them with uninitialized device
    # memory unless the original contents are transferred in first.
    partially_written = set()
    for name in liveness.out_only:
        writes = [a for a in accesses if a.array == name and a.is_write]
        if writes and all(a.guarded for a in writes):
            partially_written.add(name)

    for name in sorted(liveness.in_only):
        add("in", name)
    for name in sorted(liveness.inout | partially_written):
        add("inout", name)
    for name in sorted(liveness.out_only - partially_written):
        add("out", name)
    return pragma


def _access_extent(
    access, bound: ast.Expr, array_lengths: Dict[str, ast.Expr]
) -> Optional[ast.Expr]:
    """Upper bound on elements of the accessed array touched by the loop."""
    if access.guarded and access.array in array_lengths:
        # A guard may clamp the index range (boundary stencils); the
        # caller-provided whole-array length is the safe extent.
        return clone(array_lengths[access.array])
    if access.kind is AccessKind.UNIT:
        extent: ast.Expr = clone(bound)
        if access.linear.const:
            extent = ast.BinOp("+", extent, ast.IntLit(access.linear.const))
        return extent
    if access.kind is AccessKind.AFFINE:
        # Last touched element is a*(bound-1) + b; extent is that plus one.
        coeff = abs(access.linear.coeff)
        last = ast.BinOp("-", clone(bound), ast.IntLit(1))
        extent = ast.BinOp("*", ast.IntLit(coeff), last)
        extent = ast.BinOp("+", extent, ast.IntLit(access.linear.const + 1))
        return extent
    if access.kind in (AccessKind.INDIRECT, AccessKind.NONLINEAR, AccessKind.AOS):
        # Whole-array transfer; caller-provided length (or None to defer).
        length = array_lengths.get(access.array)
        return clone(length) if length is not None else None
    return None  # invariant: scalar-like, handled by liveness


def _max_extent(a: Optional[ast.Expr], b: ast.Expr) -> ast.Expr:
    if a is None:
        return b
    if a == b:
        return a
    return ast.Call("max", [a, b])


class _OffloadInserter(NodeTransformer):
    def __init__(
        self,
        array_lengths: Optional[Dict[str, ast.Expr]],
        target: int,
        strict: bool = True,
    ):
        self.array_lengths = array_lengths
        self.target = target
        self.strict = strict
        self.count = 0

    def visit_OffloadBlock(self, node: ast.OffloadBlock) -> ast.OffloadBlock:
        # Code already inside a device region must not be offloaded again.
        return node

    def visit_For(self, node: ast.For) -> ast.For:
        if get_pragma(node, ast.OffloadPragma) is not None:
            return node  # already a device region; don't annotate inside
        has_omp = get_pragma(node, ast.OmpParallelFor) is not None
        if has_omp:
            try:
                pragma = infer_offload_pragma(
                    node, self.array_lengths, self.target
                )
            except AnalysisError:
                if self.strict:
                    raise
                # Cannot work out the transfers: leave the loop on the
                # host rather than emit an unsound offload.
                self.generic_visit(node)
                return node
            node.pragmas.insert(0, pragma)
            self.count += 1
            return node  # the loop body now runs on the device
        self.generic_visit(node)
        return node


def insert_offload_pragmas(
    program: ast.Program,
    array_lengths: Optional[Dict[str, ast.Expr]] = None,
    target: int = 0,
    strict: bool = True,
) -> int:
    """Annotate every un-offloaded ``omp parallel for`` loop in place.

    With *strict* (the default), failing to infer a loop's transfers
    raises; otherwise that loop is left on the host.  Returns the number
    of offload pragmas inserted.
    """
    inserter = _OffloadInserter(array_lengths, target, strict=strict)
    inserter.visit(program)
    return inserter.count
