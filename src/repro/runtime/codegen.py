"""Codegen execution of parallel loops: MiniC → generated numpy source.

The batch engine re-walks the kernel AST on every loop entry, paying one
Python dispatch per operator per block.  This tier lowers an eligible
``#pragma omp parallel for`` body to a *self-contained Python function*
over numpy arrays — vectorized expressions, guards lowered to masks,
every analytic op-counter charge coalesced per masked region — compiles
it once with :func:`compile`/``exec``, and caches it keyed on the
kernel's canonical printed form plus the transform-pipeline provenance
and the concrete dtype/scalar-kind signature.

Semantics are bit-identical to the tree walker (and therefore the batch
engine) by construction:

* All lanes gather their inputs once per loop entry; the per-site load
  and store charges are accumulated statically and emitted as a handful
  of ``counters.field += k * n_active`` statements per masked region —
  every increment is an integer-valued float far below 2**53, so the
  coalesced totals equal the tree's per-lane ``+= 1`` sums exactly.
* Math builtins route through :mod:`repro.runtime.mathops`, the same
  numpy-backed reference implementations the other engines use.
* Guards become mask refinements with popcount-gated regions; a region
  whose mask is empty never executes, exactly like the tree's untaken
  branch; lane-invariant conditions keep the enclosing mask, exactly
  like the batch engine's scalar-truth path.
* Writes land in shadow copies committed only after the generated
  function finishes, so a faulting kernel leaves no side effects and
  the fallback engine (batch, then tree) replays the fault exactly.

Eligibility is deliberately strict — every subscript index must be the
induction variable itself (slot == lane: no cross-lane hazards, always
unit-stride), locals must be declared with initializers, and only
builtin calls are allowed.  Everything else falls back to the batch
engine, which handles the general affine/indirect cases.
"""

from __future__ import annotations

import keyword
import re
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ExecutionError, ReproError
from repro.hardware.device import OpCounters
from repro.minic import ast_nodes as ast
from repro.minic.printer import to_source
from repro.runtime import batch_exec, mathops
from repro.runtime.batch_exec import BatchIneligible, _loop_var_name


class CodegenIneligible(Exception):
    """The emitter cannot prove this construct vectorizable."""


class _TransientBail(Exception):
    """A per-call check failed (bounds/aliasing); retry next entry."""


#: Builtins the emitter lowers, with their fixed arity (None = variadic,
#: at least two arguments).
_BUILTIN_ARITY = {
    "exp": 1,
    "log": 1,
    "sqrt": 1,
    "sin": 1,
    "cos": 1,
    "fabs": 1,
    "abs": 1,
    "floor": 1,
    "ceil": 1,
    "pow": 2,
    "min": None,
    "max": None,
}

#: Names the generated module namespace reserves.
_RESERVED = {"np", "rt"}

_ASSIGN_OPS = ("+", "-", "*", "/", "%")


def _bad_name(name: str) -> bool:
    return (
        keyword.iskeyword(name) or name.startswith("__cg") or name in _RESERVED
    )


# ==========================================================================
# Static screen
# ==========================================================================


class _StaticInfo:
    """Cacheable per-loop-node verdict plus the loop's free names."""

    __slots__ = (
        "eligible",
        "reason",
        "var",
        "array_names",
        "scalar_names",
        "written",
        "src",
    )

    def __init__(self):
        self.eligible = True
        self.reason: Optional[str] = None
        self.var: Optional[str] = None
        self.array_names: List[str] = []
        self.scalar_names: List[str] = []
        self.written: set = set()
        self.src: Optional[str] = None

    def reject(self, reason: str) -> None:
        self.eligible = False
        self.reason = reason


class _Screen:
    """Scope-aware syntactic walk: statement/expression shape only.

    Collects the loop's free names (subscript bases become the array
    signature, bare free identifiers the scalar signature) in order of
    first appearance, so the generated function's parameter list is
    deterministic.
    """

    def __init__(self, var: str):
        self.var = var
        self.scopes: List[set] = [set()]
        self.arrays: List[str] = []
        self.scalars: List[str] = []
        self.written: set = set()

    def _is_local(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    def _free_scalar(self, name: str) -> None:
        if _bad_name(name):
            raise CodegenIneligible(f"unsupported name {name!r}")
        if name in self.arrays:
            raise CodegenIneligible(f"{name!r} used both bare and subscripted")
        if name not in self.scalars:
            self.scalars.append(name)

    def _free_array(self, name: str) -> None:
        if _bad_name(name):
            raise CodegenIneligible(f"unsupported name {name!r}")
        if self._is_local(name) or name == self.var:
            raise CodegenIneligible("subscript of a local value")
        if name in self.scalars:
            raise CodegenIneligible(f"{name!r} used both bare and subscripted")
        if name not in self.arrays:
            self.arrays.append(name)

    # -- statements --------------------------------------------------------

    def stmt(self, node: ast.Stmt) -> None:
        t = type(node)
        if t is ast.Block:
            self.scopes.append(set())
            try:
                for s in node.stmts:
                    self.stmt(s)
            finally:
                self.scopes.pop()
        elif t is ast.VarDecl:
            self.decl(node)
        elif t is ast.Assign:
            self.assign(node)
        elif t is ast.If:
            self.expr(node.cond)
            for arm in (node.then, node.other):
                if arm is None:
                    continue
                if type(arm) is ast.VarDecl:
                    # A bare declaration as an arm would leak a partially
                    # defined name into the enclosing scope.
                    raise CodegenIneligible("declaration as a bare if-arm")
                self.stmt(arm)
        else:
            raise CodegenIneligible(f"statement {t.__name__}")

    def decl(self, node: ast.VarDecl) -> None:
        if not isinstance(node.type, ast.BaseType):
            raise CodegenIneligible("non-scalar local declaration")
        if node.init is None:
            raise CodegenIneligible("uninitialized local")
        if node.name == self.var:
            raise CodegenIneligible("local shadows the induction variable")
        if _bad_name(node.name):
            raise CodegenIneligible(f"unsupported name {node.name!r}")
        self.expr(node.init)
        self.scopes[-1].add(node.name)

    def assign(self, node: ast.Assign) -> None:
        op = node.op
        if op != "=" and not (
            len(op) == 2 and op[0] in _ASSIGN_OPS and op[1] == "="
        ):
            raise CodegenIneligible(f"assignment operator {op!r}")
        self.expr(node.value)
        target = node.target
        if type(target) is ast.Ident:
            if target.name == self.var:
                raise CodegenIneligible("write to the induction variable")
            if not self._is_local(target.name):
                raise CodegenIneligible(
                    f"assignment to non-local {target.name!r}"
                )
        elif type(target) is ast.Subscript:
            self.subscript(target)
            self.written.add(target.base.name)
        else:
            raise CodegenIneligible(
                f"assignment to {type(target).__name__}"
            )

    # -- expressions -------------------------------------------------------

    def subscript(self, node: ast.Subscript) -> None:
        if type(node.base) is not ast.Ident:
            raise CodegenIneligible("subscript base is not a name")
        index = node.index
        if type(index) is not ast.Ident or index.name != self.var:
            # slot == lane is the whole safety argument: any other index
            # could alias across lanes, so it belongs to the batch engine.
            raise CodegenIneligible("subscript index is not the loop variable")
        self._free_array(node.base.name)

    def expr(self, node: ast.Expr) -> None:
        t = type(node)
        if t in (ast.IntLit, ast.FloatLit):
            return
        if t is ast.Ident:
            if node.name != self.var and not self._is_local(node.name):
                self._free_scalar(node.name)
            return
        if t is ast.BinOp:
            self.expr(node.left)
            self.expr(node.right)
            return
        if t is ast.UnOp:
            if node.op not in ("-", "!"):
                raise CodegenIneligible(f"unary operator {node.op!r}")
            self.expr(node.operand)
            return
        if t is ast.Cond:
            self.expr(node.cond)
            self.expr(node.then)
            self.expr(node.other)
            return
        if t is ast.Cast:
            if not isinstance(node.type, ast.BaseType):
                raise CodegenIneligible("non-scalar cast")
            self.expr(node.operand)
            return
        if t is ast.Subscript:
            self.subscript(node)
            return
        if t is ast.Call:
            arity = _BUILTIN_ARITY.get(node.func)
            if node.func not in _BUILTIN_ARITY:
                raise CodegenIneligible(f"call to {node.func!r}")
            if arity is None:
                if len(node.args) < 2:
                    raise CodegenIneligible(f"{node.func}() arity")
            elif len(node.args) != arity:
                raise CodegenIneligible(f"{node.func}() arity")
            for arg in node.args:
                self.expr(arg)
            return
        raise CodegenIneligible(f"expression {t.__name__}")


def analyze_loop(loop: ast.For) -> _StaticInfo:
    """The per-loop-node static verdict (cached by the driver)."""
    info = _StaticInfo()
    var = _loop_var_name(loop)
    if var is None:
        info.reject("unrecognized induction variable")
        return info
    if _bad_name(var):
        info.reject(f"unsupported name {var!r}")
        return info
    info.var = var
    screen = _Screen(var)
    try:
        screen.stmt(loop.body)
    except CodegenIneligible as exc:
        info.reject(str(exc))
        return info
    info.array_names = screen.arrays
    info.scalar_names = screen.scalars
    info.written = screen.written
    return info


# ==========================================================================
# Emitter
# ==========================================================================


class _Val:
    """A generated expression: its Python text and its static kind."""

    __slots__ = ("py", "kind")

    def __init__(self, py: str, kind: str):
        self.py = py
        self.kind = kind


class _Local:
    __slots__ = ("py", "kind", "region")

    def __init__(self, py: str, kind: str, region: "_Region"):
        self.py = py
        self.kind = kind
        self.region = region


class _Region:
    """One masked region: charges coalesce here and flush at its end."""

    __slots__ = ("mask", "count", "charges", "abytes")

    def __init__(self, mask: str, count: str):
        self.mask = mask
        self.count = count
        self.charges: Dict[str, float] = {}
        self.abytes: Dict[str, List[int]] = {}

    def charge(self, field: str, amount) -> None:
        self.charges[field] = self.charges.get(field, 0) + amount

    def charge_bytes(self, array: str, nbytes: int, is_write: bool) -> None:
        slot = self.abytes.setdefault(array, [0, 0])
        slot[1 if is_write else 0] += nbytes


class _ArrInfo:
    __slots__ = ("name", "kind", "itemsize", "written", "view", "shadow")

    def __init__(self, name, kind, itemsize, written):
        self.name = name
        self.kind = kind  # 'f' or 'i' (the *lane* kind after gathering)
        self.itemsize = itemsize
        self.written = written
        self.view = f"__cg_v_{name}"
        self.shadow = f"__cg_sh_{name}"


class _Emitter:
    """Lowers one screened loop body to Python source.

    Three-address style: every subexpression lands in a ``__cg_t<k>``
    temp, masks in ``__cg_m<k>``, active-lane counts in ``__cg_n<k>``.
    Kinds ('i'/'f') are tracked flow-sensitively per local, mirroring the
    tree walker's runtime coercions; any construct whose kind cannot be
    proven statically raises :class:`CodegenIneligible`.
    """

    def __init__(self, var, arrays: Dict[str, _ArrInfo], scalars: Dict[str, str]):
        self.var = var
        self.arrays = arrays
        self.scalars = scalars
        self.lines: List[str] = []
        self.indent = 1
        self.counter = 0
        self.used = set(_RESERVED) | {var} | set(arrays) | set(scalars)
        self.regions = [_Region("None", "__cg_n0")]
        self.scopes: List[Dict[str, _Local]] = [{}]
        # Common-subexpression tables, one per region (a temp emitted
        # under a mask guard is only defined inside that guard).  Keys
        # never mention reassignable local names, so no invalidation is
        # needed; charges accrue per *site*, so a CSE hit still counts
        # every operation the tree would perform.
        self.cse: List[Dict[tuple, _Val]] = [{}]
        self.local_pys: set = set()
        # Every name the liveness post-pass may ``del`` after its last
        # textual use.  A kernel body holds ~25 live full-width temps —
        # several MB that overflow L2 and make every numpy pass stream
        # from L3; freeing each temp as it dies keeps the working set to
        # a handful of hot buffers (measured ~2.3x on the bench kernel).
        self.deletable: set = set()

    # -- plumbing ----------------------------------------------------------

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        name = f"__cg_{prefix}{self.counter}"
        self.deletable.add(name)
        return name

    def fresh_local(self, name: str) -> str:
        if name not in self.used and not _bad_name(name):
            self.used.add(name)
            return name
        k = 2
        while f"{name}__{k}" in self.used:
            k += 1
        py = f"{name}__{k}"
        self.used.add(py)
        return py

    def find_local(self, name: str) -> Optional[_Local]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    @property
    def region(self) -> _Region:
        return self.regions[-1]

    def flush(self, region: _Region) -> None:
        for field in ("flops", "int_ops", "loads", "stores", "calls", "branches"):
            amount = region.charges.get(field)
            if amount:
                self.line(f"__cg_c.{field} += {amount!r} * {region.count}")
        for name, (rbytes, wbytes) in region.abytes.items():
            if not (rbytes or wbytes):
                continue
            self.line(f"if not __cg_cached_{name}:")
            self.indent += 1
            if rbytes:
                self.line(f"__cg_c.bytes_read += {rbytes} * {region.count}")
            if wbytes:
                self.line(f"__cg_c.bytes_written += {wbytes} * {region.count}")
            self.indent -= 1

    def masked_block(self, guard_count: str, region: _Region, body) -> None:
        """Emit ``if <count>:`` around *body* emitted inside *region*."""
        self.line(f"if {guard_count}:")
        self.indent += 1
        mark = len(self.lines)
        self.regions.append(region)
        self.cse.append({})
        try:
            body()
            self.flush(region)
        finally:
            self.regions.pop()
            self.cse.pop()
        if len(self.lines) == mark:
            self.line("pass")
        self.indent -= 1

    # -- common subexpressions ---------------------------------------------

    def cse_key(self, *parts) -> Optional[tuple]:
        """A value number for a pure operation, or None when any operand
        is a reassignable local (whose name does not pin its value)."""
        for part in parts:
            if part in self.local_pys:
                return None
        return parts

    def cse_get(self, key) -> Optional[_Val]:
        for table in reversed(self.cse):
            hit = table.get(key)
            if hit is not None:
                return hit
        return None

    def cse_put(self, key, val: _Val) -> None:
        self.cse[-1][key] = val

    # -- coercions ---------------------------------------------------------

    def to_int(self, val: _Val) -> _Val:
        if val.kind == "i":
            return val
        return self._coerce_emit("rt.toi", val.py, "i")

    def to_float(self, val: _Val) -> _Val:
        if val.kind == "f":
            return val
        return self._coerce_emit("rt.tof", val.py, "f")

    def _coerce_emit(self, fn: str, operand: str, kind: str) -> _Val:
        key = self.cse_key(fn, operand)
        if key is not None:
            hit = self.cse_get(key)
            if hit is not None:
                return hit
        t = self.fresh("t")
        self.line(f"{t} = {fn}({operand})")
        out = _Val(t, kind)
        if key is not None:
            self.cse_put(key, out)
        return out

    def coerce_decl(self, type_name: str, val: _Val) -> _Val:
        if type_name == "int":
            return self.to_int(val)
        if type_name in ("float", "double"):
            return self.to_float(val)
        return val  # char and friends pass through, like the tree's _coerce

    # -- statements --------------------------------------------------------

    def stmt(self, node: ast.Stmt) -> None:
        t = type(node)
        if t is ast.Block:
            self.scopes.append({})
            try:
                for s in node.stmts:
                    self.stmt(s)
            finally:
                self.scopes.pop()
        elif t is ast.VarDecl:
            self.emit_decl(node)
        elif t is ast.Assign:
            self.emit_assign(node)
        elif t is ast.If:
            self.emit_if(node)
        else:  # pragma: no cover - screened earlier
            raise CodegenIneligible(f"statement {t.__name__}")

    def emit_decl(self, node: ast.VarDecl) -> None:
        val = self.coerce_decl(node.type.name, self.expr(node.init))
        py = self.fresh_local(node.name)
        self.local_pys.add(py)
        self.line(f"{py} = {val.py}")
        self.scopes[-1][node.name] = _Local(py, val.kind, self.region)

    def emit_assign(self, node: ast.Assign) -> None:
        val = self.expr(node.value)
        target = node.target
        if node.op != "=":
            current = (
                self.ident(target.name)
                if type(target) is ast.Ident
                else self.subscript_read(target)
            )
            val = self.binop_value(node.op[0], current, val)
        if type(target) is ast.Ident:
            self.assign_ident(target.name, val)
        else:
            self.subscript_write(target, val)

    def assign_ident(self, name: str, val: _Val) -> None:
        loc = self.find_local(name)
        if loc is None:  # pragma: no cover - screened earlier
            raise CodegenIneligible(f"assignment to non-local {name!r}")
        if loc.kind == "i":
            # The tree coerces to int whenever the old value is an int.
            val = self.to_int(val)
        if loc.region is self.region:
            self.line(f"{loc.py} = {val.py}")
            loc.kind = val.kind
        else:
            if loc.kind != val.kind:
                raise CodegenIneligible("blend of int and float lanes")
            self.line(
                f"{loc.py} = rt.blend({self.region.mask}, {val.py}, {loc.py})"
            )

    def subscript_write(self, node: ast.Subscript, val: _Val) -> None:
        arr = self.arrays[node.base.name]
        region = self.region
        region.charge("stores", 1)
        region.charge_bytes(arr.name, arr.itemsize, is_write=True)
        self.line(f"rt.store({arr.shadow}, {region.mask}, {val.py})")

    def emit_if(self, node: ast.If) -> None:
        region = self.region
        region.charge("branches", 1)
        cond = self.expr(node.cond)
        truth = self.fresh("t")
        self.line(f"{truth} = rt.truth({cond.py})")
        mask, count = self.fresh("m"), self.fresh("n")
        self.line(
            f"{mask}, {count} = rt.refine({region.mask}, {truth}, {region.count})"
        )
        self.masked_block(
            count, _Region(mask, count), lambda: self.stmt(node.then)
        )
        if node.other is not None:
            emask, ecount = self.fresh("m"), self.fresh("n")
            self.line(
                f"{emask}, {ecount} = "
                f"rt.refine_not({region.mask}, {truth}, {region.count})"
            )
            self.masked_block(
                ecount, _Region(emask, ecount), lambda: self.stmt(node.other)
            )

    # -- expressions -------------------------------------------------------

    def expr(self, node: ast.Expr) -> _Val:
        t = type(node)
        if t is ast.IntLit:
            return _Val(repr(int(node.value)), "i")
        if t is ast.FloatLit:
            return _Val(repr(float(node.value)), "f")
        if t is ast.Ident:
            return self.ident(node.name)
        if t is ast.BinOp:
            if node.op in ("&&", "||"):
                return self.emit_logic(node)
            left = self.expr(node.left)
            right = self.expr(node.right)
            return self.binop_value(node.op, left, right)
        if t is ast.UnOp:
            return self.emit_unop(node)
        if t is ast.Cond:
            return self.emit_cond(node)
        if t is ast.Cast:
            return self.coerce_decl(node.type.name, self.expr(node.operand))
        if t is ast.Subscript:
            return self.subscript_read(node)
        if t is ast.Call:
            return self.emit_call(node)
        raise CodegenIneligible(f"expression {t.__name__}")

    def ident(self, name: str) -> _Val:
        loc = self.find_local(name)
        if loc is not None:
            return _Val(loc.py, loc.kind)
        if name == self.var:
            return _Val(name, "i")
        kind = self.scalars.get(name)
        if kind is None:  # pragma: no cover - screened earlier
            raise CodegenIneligible(f"unresolved name {name!r}")
        return _Val(name, kind)

    def subscript_read(self, node: ast.Subscript) -> _Val:
        arr = self.arrays[node.base.name]
        region = self.region
        region.charge("loads", 1)
        region.charge_bytes(arr.name, arr.itemsize, is_write=False)
        if not arr.written:
            return _Val(arr.view, arr.kind)
        # Reads of a written array must snapshot the shadow: a later
        # store may not alias a value loaded earlier.
        t = self.fresh("t")
        read = "rt.read_f64" if arr.kind == "f" else "rt.read_i64"
        self.line(f"{t} = {read}({arr.shadow})")
        return _Val(t, arr.kind)

    def binop_value(self, op: str, left: _Val, right: _Val) -> _Val:
        region = self.region
        is_float = "f" in (left.kind, right.kind)
        if op in ("+", "-", "*", "/") and is_float:
            region.charge("flops", 1)
        else:
            region.charge("int_ops", 1)
        # Division and modulo take the mask (zero checks are masked), so
        # their value numbers are mask-specific; the rest are pure over
        # full-width lanes and reusable across nested regions.
        mask = region.mask if op in ("/", "%") else ""
        key = self.cse_key("b", op, left.py, right.py, mask)
        if key is not None:
            hit = self.cse_get(key)
            if hit is not None:
                return hit
        t = self.fresh("t")
        if op in ("+", "-", "*"):
            self.line(f"{t} = ({left.py} {op} {right.py})")
            val = _Val(t, "f" if is_float else "i")
        elif op == "/":
            fn = "rt.fdiv" if is_float else "rt.idiv"
            self.line(f"{t} = {fn}({left.py}, {right.py}, {region.mask})")
            val = _Val(t, "f" if is_float else "i")
        elif op == "%":
            self.line(f"{t} = rt.imod({left.py}, {right.py}, {region.mask})")
            val = _Val(t, "i")
        elif op in ("<", ">", "<=", ">=", "==", "!="):
            self.line(f"{t} = rt.asint({left.py} {op} {right.py})")
            val = _Val(t, "i")
        elif op in ("<<", ">>", "&", "|", "^"):
            self.line(f"{t} = (rt.toi({left.py}) {op} rt.toi({right.py}))")
            val = _Val(t, "i")
        else:
            raise CodegenIneligible(f"operator {op!r}")
        if key is not None:
            self.cse_put(key, val)
        return val

    def emit_unop(self, node: ast.UnOp) -> _Val:
        val = self.expr(node.operand)
        if node.op == "-":
            self.region.charge("flops" if val.kind == "f" else "int_ops", 1)
            text, kind = f"(-{val.py})", val.kind
        else:
            self.region.charge("int_ops", 1)
            text, kind = f"rt.lnot({val.py})", "i"
        key = self.cse_key("u", node.op, val.py)
        if key is not None:
            hit = self.cse_get(key)
            if hit is not None:
                return hit
        t = self.fresh("t")
        self.line(f"{t} = {text}")
        out = _Val(t, kind)
        if key is not None:
            self.cse_put(key, out)
        return out

    def emit_logic(self, node: ast.BinOp) -> _Val:
        region = self.region
        region.charge("int_ops", 1)
        left = self.expr(node.left)
        truth = self.fresh("t")
        self.line(f"{truth} = rt.truth({left.py})")
        refine = "rt.refine" if node.op == "&&" else "rt.refine_not"
        mask, count = self.fresh("m"), self.fresh("n")
        self.line(f"{mask}, {count} = {refine}({region.mask}, {truth}, {region.count})")
        result = self.fresh("t")

        def rhs():
            right = self.expr(node.right)
            rtruth = self.fresh("t")
            self.line(f"{rtruth} = rt.truth({right.py})")
            if node.op == "&&":
                self.line(f"{result} = rt.land({truth}, {rtruth})")
            else:
                self.line(f"{result} = rt.lor({truth}, {rtruth}, {mask})")

        self.masked_block(count, _Region(mask, count), rhs)
        self.line("else:")
        self.indent += 1
        self.line(f"{result} = rt.asint({truth})")
        self.indent -= 1
        return _Val(result, "i")

    def emit_cond(self, node: ast.Cond) -> _Val:
        region = self.region
        region.charge("branches", 1)
        cond = self.expr(node.cond)
        truth = self.fresh("t")
        self.line(f"{truth} = rt.truth({cond.py})")
        then_res, else_res = self.fresh("t"), self.fresh("t")
        self.line(f"{then_res} = None")
        self.line(f"{else_res} = None")
        kinds = []

        def arm(expr_node, result):
            def body():
                val = self.expr(expr_node)
                kinds.append(val.kind)
                self.line(f"{result} = {val.py}")

            return body

        mask, count = self.fresh("m"), self.fresh("n")
        self.line(f"{mask}, {count} = rt.refine({region.mask}, {truth}, {region.count})")
        self.masked_block(count, _Region(mask, count), arm(node.then, then_res))
        emask, ecount = self.fresh("m"), self.fresh("n")
        self.line(
            f"{emask}, {ecount} = rt.refine_not({region.mask}, {truth}, {region.count})"
        )
        self.masked_block(ecount, _Region(emask, ecount), arm(node.other, else_res))
        if len(set(kinds)) != 1:
            raise CodegenIneligible("conditional arms of mixed kinds")
        t = self.fresh("t")
        self.line(f"{t} = rt.sel({truth}, {then_res}, {else_res})")
        return _Val(t, kinds[0])

    def emit_call(self, node: ast.Call) -> _Val:
        region = self.region
        args = [self.expr(a) for a in node.args]
        region.charge("calls", 1)
        from repro.runtime.executor import BUILTIN_COSTS

        region.charge("flops", BUILTIN_COSTS[node.func])
        name = node.func
        mask = region.mask
        if name in ("exp", "log", "sin", "cos", "sqrt"):
            text, kind = f"rt.c_{name}({args[0].py}, {mask})", "f"
        elif name == "pow":
            text, kind = f"rt.c_pow({args[0].py}, {args[1].py}, {mask})", "f"
        elif name in ("fabs", "abs"):
            text, kind = f"rt.c_abs({args[0].py})", args[0].kind
        elif name in ("floor", "ceil"):
            text, kind = f"rt.c_{name}({args[0].py}, {mask})", "i"
        elif name in ("min", "max"):
            kinds = {a.kind for a in args}
            if len(kinds) != 1:
                raise CodegenIneligible(f"{name}() with mixed argument types")
            arglist = ", ".join(a.py for a in args)
            text, kind = f"rt.c_{name}({arglist})", kinds.pop()
        else:  # pragma: no cover - screened earlier
            raise CodegenIneligible(f"call to {name!r}")
        key = self.cse_key("call", name, mask, *[a.py for a in args])
        if key is not None:
            hit = self.cse_get(key)
            if hit is not None:
                return hit
        t = self.fresh("t")
        self.line(f"{t} = {text}")
        out = _Val(t, kind)
        if key is not None:
            self.cse_put(key, out)
        return out


def generate_source(
    loop: ast.For, info: _StaticInfo, array_sig, scalar_sig
) -> str:
    """Emit the kernel function's full Python source for one signature.

    *array_sig* is ``((name, dtype_str, itemsize, written), ...)`` and
    *scalar_sig* is ``((name, kind), ...)`` in parameter order.
    """
    arrays = {}
    for name, dtype_str, itemsize, written in array_sig:
        kind = "f" if np.dtype(dtype_str).kind == "f" else "i"
        arrays[name] = _ArrInfo(name, kind, itemsize, written)
    scalars = dict(scalar_sig)
    em = _Emitter(info.var, arrays, scalars)

    params = ["__cg", "__cg_idx", info.var]
    params += [a[0] for a in array_sig]
    params += [s[0] for s in scalar_sig]
    head = [
        f"def __cg_kernel({', '.join(params)}):",
        "    __cg_c = __cg.counters",
        f"    __cg_n0 = {info.var}.shape[0]",
    ]
    for arr in arrays.values():
        head.append(
            f"    __cg_cached_{arr.name} = "
            f"{arr.name}.nbytes * __cg.scale <= __cg.cached_bytes"
        )
    for arr in arrays.values():
        if arr.written:
            head.append(f"    {arr.shadow} = {arr.name}[__cg_idx].copy()")
        else:
            gather = "rt.as_f64" if arr.kind == "f" else "rt.as_i64"
            head.append(f"    {arr.view} = {gather}({arr.name}[__cg_idx])")

    em.stmt(loop.body)
    em.flush(em.regions[0])

    tail = []
    for arr in arrays.values():
        if arr.written:
            tail.append(f"    {arr.name}[__cg_idx] = {arr.shadow}")
    lines = _insert_dels(head + em.lines + tail, em.deletable | em.local_pys)
    return "\n".join(lines) + "\n"


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _insert_dels(lines: List[str], candidates: set) -> List[str]:
    """Free each temp right after its last textual use.

    Full-width f64 temps are ~8 bytes/lane; a straight-line kernel body
    keeps dozens alive at once, overflowing L2 so every subsequent numpy
    pass streams from L3/DRAM.  Dropping each name at its last mention
    returns the buffer to the allocator, which hands the same hot pages
    to the next temp.  Definitions dominate uses (CSE tables are
    region-scoped), so a ``del`` placed at the indent of the last use
    only runs when the name is bound.  Names whose last mention is a
    block header (``if ...:``) are left for frame exit — a ``del``
    there would detach the header from its suite.
    """
    last: Dict[str, int] = {}
    for i, text in enumerate(lines):
        for tok in _IDENT_RE.findall(text):
            if tok in candidates:
                last[tok] = i
    out: List[str] = []
    for i, text in enumerate(lines):
        out.append(text)
        if text.rstrip().endswith(":"):
            continue
        dead = sorted(name for name, j in last.items() if j == i)
        if dead:
            pad = text[: len(text) - len(text.lstrip())]
            out.append(f"{pad}del {', '.join(dead)}")
    return out


# ==========================================================================
# Runtime helpers (the ``rt`` namespace inside generated kernels)
# ==========================================================================


class _RT:
    """Masked-vector primitives generated kernels call at runtime.

    Every helper is polymorphic over "scalar" (lane-invariant Python
    value) and "vector" (full-width ndarray) operands, mirroring the
    batch engine's ``_Lanes``-or-scalar values; masks are full-width
    bool vectors or ``None`` (= all active lanes).  Each helper's
    semantics are copied from the batch-engine function named in its
    docstring, which in turn mirrors the tree walker.
    """

    # -- truth, masks, blending -------------------------------------------

    @staticmethod
    def truth(v):
        """``_BatchRunner._truthy``."""
        if isinstance(v, np.ndarray):
            return v != 0
        return bool(v)

    @staticmethod
    def asint(t):
        if isinstance(t, np.ndarray):
            return t.astype(np.int64)
        return int(t)

    @staticmethod
    def refine(m, t, n):
        """Narrow mask *m* by truth *t*; scalar truth keeps *m* (the
        batch engine's scalar-cond path runs the arm under an unchanged
        mask)."""
        if isinstance(t, np.ndarray):
            nm = t if m is None else (m & t)
            return nm, int(np.count_nonzero(nm))
        return (m, n) if t else (m, 0)

    @staticmethod
    def refine_not(m, t, n):
        if isinstance(t, np.ndarray):
            nm = ~t if m is None else (m & ~t)
            return nm, int(np.count_nonzero(nm))
        return (m, 0) if t else (m, n)

    @staticmethod
    def blend(m, new, old):
        """``_BatchRunner._where`` (kinds are checked at generation
        time, so only the merge remains)."""
        if m is None:
            return new
        return np.where(m, new, old)

    @staticmethod
    def sel(t, a, b):
        """``_BatchRunner._expr_cond``'s merge step."""
        if a is None:
            return b
        if b is None:
            return a
        if isinstance(t, np.ndarray):
            return np.where(t, a, b)
        return a if t else b

    @staticmethod
    def land(lt, rt_t):
        """``&&`` merge (``_expr_logic``): *lt* scalar means the left
        side was lane-invariantly true (false short-circuited)."""
        if not isinstance(lt, np.ndarray):
            return _RT.asint(rt_t)
        rvec = (
            rt_t
            if isinstance(rt_t, np.ndarray)
            else np.full(lt.shape[0], bool(rt_t))
        )
        return (lt & rvec).astype(np.int64)

    @staticmethod
    def lor(lt, rt_t, m):
        """``||`` merge (``_expr_logic``): *m* is the refined rhs mask
        (``eff & ~lt``) — exactly the lanes whose right side counts."""
        if not isinstance(lt, np.ndarray):
            return _RT.asint(rt_t)
        rvec = (
            rt_t
            if isinstance(rt_t, np.ndarray)
            else np.full(lt.shape[0], bool(rt_t))
        )
        return (lt | (rvec & m)).astype(np.int64)

    @staticmethod
    def lnot(v):
        if isinstance(v, np.ndarray):
            return (~(v != 0)).astype(np.int64)
        return int(not v)

    # -- coercions ---------------------------------------------------------

    @staticmethod
    def toi(v):
        """``_BatchRunner._to_int`` / ``_coerce_int``."""
        if isinstance(v, np.ndarray):
            if v.dtype.kind == "f":
                return np.trunc(v).astype(np.int64)
            return v
        return int(v)

    @staticmethod
    def tof(v):
        """``_BatchRunner._vcoerce`` for float/double."""
        if isinstance(v, np.ndarray):
            if v.dtype.kind != "f":
                return v.astype(np.float64)
            return v
        return float(v)

    # -- gathers, shadow reads, stores ------------------------------------

    @staticmethod
    def as_f64(a):
        """Widen a read-only gather to float64 lanes (the tree's
        ``.item()`` on every load is exactly this widening)."""
        if a.dtype == np.float64:
            return a
        return a.astype(np.float64)

    @staticmethod
    def as_i64(a):
        if a.dtype == np.int64:
            return a
        return a.astype(np.int64)

    @staticmethod
    def read_f64(sh):
        """Snapshot-read of a written array's shadow.  ``astype`` always
        copies, so a value loaded here never aliases a later store."""
        return sh.astype(np.float64)

    @staticmethod
    def read_i64(sh):
        return sh.astype(np.int64)

    @staticmethod
    def store(sh, m, v):
        """Masked store into the shadow (slot == lane), downcasting to
        the array dtype exactly as the tree's ``arr[i] = value`` does."""
        if m is None:
            sh[...] = v
        elif isinstance(v, np.ndarray):
            sh[m] = v[m]
        else:
            sh[m] = v

    # -- division ----------------------------------------------------------

    @staticmethod
    def _safe_divisor(rv, m, message):
        """The divisor with zero lanes checked (raise if any is active)
        and sanitized to 1.  The common all-nonzero case costs one
        comparison + one reduction and returns the divisor unchanged."""
        if not isinstance(rv, np.ndarray):
            if rv == 0:
                raise ZeroDivisionError(message)
            return rv
        zero = rv == 0
        if zero.any():
            active = zero if m is None else (zero & m)
            if bool(active.any()):
                raise ZeroDivisionError(message)
            return np.where(zero, 1, rv)
        return rv

    @staticmethod
    def fdiv(lv, rv, m):
        """``_BatchRunner._divide`` with ``is_float=True``."""
        if not (isinstance(lv, np.ndarray) or isinstance(rv, np.ndarray)):
            return lv / rv
        safe = _RT._safe_divisor(rv, m, "float division by zero")
        return np.asarray(lv, dtype=np.float64) / safe

    @staticmethod
    def idiv(lv, rv, m):
        """``_BatchRunner._divide`` with ``is_float=False``.

        The sign merge may use the sanitized divisor: it only differs
        from the original on zero lanes, where both 0 and the substitute
        1 count as non-negative."""
        if not (isinstance(lv, np.ndarray) or isinstance(rv, np.ndarray)):
            q = abs(int(lv)) // abs(int(rv))
            return q if (lv >= 0) == (rv >= 0) else -q
        safe = _RT._safe_divisor(rv, m, "integer division or modulo by zero")
        la = np.asarray(lv)
        q = np.abs(la) // np.abs(safe)
        return np.where((la >= 0) == (safe >= 0), q, -q).astype(np.int64)

    @staticmethod
    def imod(lv, rv, m):
        """``_BatchRunner._modulo``."""
        if not (isinstance(lv, np.ndarray) or isinstance(rv, np.ndarray)):
            r = abs(int(lv)) % abs(int(rv))
            return r if lv >= 0 else -r
        safe = _RT.toi(
            _RT._safe_divisor(rv, m, "integer division or modulo by zero")
        )
        la = _RT.toi(np.asarray(lv))
        r = np.abs(la) % np.abs(safe)
        return np.where(la >= 0, r, -r).astype(np.int64)

    # -- builtins ----------------------------------------------------------

    @staticmethod
    def _sanitize(v, m):
        """``_BatchRunner._builtin_f64``: float64 lanes with inactive
        lanes forced to 1.0 so they cannot trip a domain check the tree
        would never perform."""
        vec = v if v.dtype.kind == "f" else v.astype(np.float64)
        if m is not None:
            vec = np.where(m, vec, 1.0)
        return vec

    @staticmethod
    def _scalar_call(name, args):
        from repro.runtime.executor import _BUILTIN_IMPL

        try:
            return _BUILTIN_IMPL[name](*args)
        except ValueError as exc:
            raise ExecutionError(f"math domain error in {name}: {exc}")

    @staticmethod
    def _ufunc(name, v, m):
        """``_vb_pyloop``."""
        if not isinstance(v, np.ndarray):
            return _RT._scalar_call(name, [v])
        vec = _RT._sanitize(v, m)
        try:
            out = mathops.VECTOR_IMPL[name](vec)
        except ValueError as exc:
            raise ExecutionError(f"math domain error in {name}: {exc}")
        return np.asarray(out, dtype=np.float64)

    @staticmethod
    def c_exp(v, m):
        return _RT._ufunc("exp", v, m)

    @staticmethod
    def c_log(v, m):
        return _RT._ufunc("log", v, m)

    @staticmethod
    def c_sin(v, m):
        return _RT._ufunc("sin", v, m)

    @staticmethod
    def c_cos(v, m):
        return _RT._ufunc("cos", v, m)

    @staticmethod
    def c_sqrt(v, m):
        """``_vb_sqrt``."""
        if not isinstance(v, np.ndarray):
            return _RT._scalar_call("sqrt", [v])
        vec = _RT._sanitize(v, m)
        if (vec < 0).any():
            raise ExecutionError("math domain error in sqrt: math domain error")
        return np.sqrt(vec)

    @staticmethod
    def c_pow(a, b, m):
        """``_vb_pow``."""
        av = _RT._sanitize(a, m) if isinstance(a, np.ndarray) else a
        bv = _RT._sanitize(b, m) if isinstance(b, np.ndarray) else b
        if not (isinstance(av, np.ndarray) or isinstance(bv, np.ndarray)):
            return _RT._scalar_call("pow", [av, bv])
        try:
            out = mathops.vector_pow(av, bv)
        except ValueError as exc:
            raise ExecutionError(f"math domain error in pow: {exc}")
        return np.asarray(out, dtype=np.float64)

    @staticmethod
    def c_abs(v):
        """``_vb_abs`` — the tree's fabs is plain ``abs()``, kind kept."""
        if isinstance(v, np.ndarray):
            return np.abs(v)
        return _RT._scalar_call("fabs", [v])

    @staticmethod
    def _floorceil(name, v, m):
        """``_vb_floorceil``."""
        if not isinstance(v, np.ndarray):
            return _RT._scalar_call(name, [v])
        vec = _RT._sanitize(v, m)
        fn = np.floor if name == "floor" else np.ceil
        return fn(vec).astype(np.int64)

    @staticmethod
    def c_floor(v, m):
        return _RT._floorceil("floor", v, m)

    @staticmethod
    def c_ceil(v, m):
        return _RT._floorceil("ceil", v, m)

    @staticmethod
    def _minmax(name, args):
        """``_vb_minmax`` (uniform kinds checked at generation time)."""
        if not any(isinstance(a, np.ndarray) for a in args):
            return _RT._scalar_call(name, args)
        fn = np.minimum if name == "min" else np.maximum
        result = args[0]
        for arg in args[1:]:
            result = fn(result, arg)
        return np.asarray(result)

    @staticmethod
    def c_min(*args):
        return _RT._minmax("min", list(args))

    @staticmethod
    def c_max(*args):
        return _RT._minmax("max", list(args))


# ==========================================================================
# Kernel cache
# ==========================================================================


class _CgCtx:
    """Per-invocation context handed to a generated kernel."""

    __slots__ = ("counters", "scale", "cached_bytes")

    def __init__(self, counters: OpCounters, scale: float, cached_bytes: int):
        self.counters = counters
        self.scale = scale
        self.cached_bytes = cached_bytes


#: Compiled kernels keyed on (canonical source, transform provenance,
#: array signature, scalar-kind signature).
_KERNELS: Dict[tuple, object] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def cache_stats() -> dict:
    """A snapshot of the module-wide generated-kernel cache counters."""
    return dict(_CACHE_STATS)


def clear_cache() -> None:
    """Drop all compiled kernels and reset the hit/miss counters."""
    _KERNELS.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def _get_kernel(loop, info: _StaticInfo, provenance, array_sig, scalar_sig):
    """Compile (or fetch) the kernel for one concrete signature.

    Returns ``(fn, was_miss)``.  Generation failures raise
    :class:`CodegenIneligible` (the caller rejects the loop — falling
    back to the batch engine is always correct)."""
    if info.src is None:
        info.src = to_source(loop)
    key = (info.src, provenance, array_sig, scalar_sig)
    fn = _KERNELS.get(key)
    if fn is not None:
        _CACHE_STATS["hits"] += 1
        return fn, False
    _CACHE_STATS["misses"] += 1
    source = generate_source(loop, info, array_sig, scalar_sig)
    code = compile(source, f"<codegen:{info.var}>", "exec")
    ns = {"np": np, "rt": _RT}
    exec(code, ns)
    fn = ns["__cg_kernel"]
    fn.__cg_source__ = source  # introspection for docs/tests
    _KERNELS[key] = fn
    return fn, True


def kernel_source(loop: ast.For, provenance: str = "") -> str:
    """Generated source for *loop* against a float64 signature guess.

    Documentation/debugging helper: screens the loop, fabricates a
    float64 array signature and float scalar kinds, and returns the
    emitted source without compiling or caching it."""
    info = analyze_loop(loop)
    if not info.eligible:
        raise CodegenIneligible(info.reason or "ineligible")
    array_sig = tuple(
        (name, "<f8", 8, name in info.written) for name in info.array_names
    )
    scalar_sig = tuple((name, "f") for name in info.scalar_names)
    return generate_source(loop, info, array_sig, scalar_sig)


# ==========================================================================
# Driver
# ==========================================================================


def _scalar_kind(name: str, value):
    """Classify a free scalar binding, normalized to plain Python.

    Anything whose arithmetic the emitter cannot model with 'i'/'f'
    lanes (float32's narrower rounding, strings, handles) bails."""
    if isinstance(value, (bool, int, np.integer)):
        return int(value), "i"
    if isinstance(value, float):
        return value, "f"
    if isinstance(value, np.float64):
        return float(value), "f"
    raise _TransientBail(f"free scalar {name!r} of {type(value).__name__}")


def _run(executor, loop: ast.For, env, info: _StaticInfo) -> int:
    """Generate/fetch the kernel, check dynamic safety, run it."""
    bounds = batch_exec.recognize_bounds(executor, loop, env)
    trips, start, stride = bounds.trips, bounds.start, bounds.stride
    if trips == 0:
        bounds.finalize_induction()
        return 0

    arrays = []
    for name in info.array_names:
        value = env.get(name)
        if not isinstance(value, np.ndarray):
            raise CodegenIneligible(f"{name!r} is not an array")
        if value.ndim != 1 or value.dtype.kind not in "fiub":
            raise CodegenIneligible(f"{name!r} has unsupported dtype/shape")
        arrays.append(value)

    scalars = []
    scalar_sig = []
    for name in info.scalar_names:
        value, kind = _scalar_kind(name, env.get(name))
        scalars.append(value)
        scalar_sig.append((name, kind))

    # Every subscript index is the induction variable, so one range
    # check covers all accesses; a violating lane means the tree must
    # produce the exact mid-loop fault (and its partial writes).
    lo = min(start, start + stride * (trips - 1))
    hi = max(start, start + stride * (trips - 1))
    for name, value in zip(info.array_names, arrays):
        if lo < 0 or hi >= len(value):
            raise _TransientBail(f"lane index out of range for {name!r}")

    # Lanes are independent only if no written array aliases another
    # operand: a write through one name must not be visible through
    # another within the same loop entry.
    for wname in info.written:
        warr = arrays[info.array_names.index(wname)]
        for name, value in zip(info.array_names, arrays):
            if name != wname and np.shares_memory(warr, value):
                raise _TransientBail(f"{wname!r} aliases {name!r}")

    array_sig = tuple(
        (name, value.dtype.str, value.dtype.itemsize, name in info.written)
        for name, value in zip(info.array_names, arrays)
    )
    provenance = getattr(executor.program, "comp_provenance", "")
    fn, was_miss = _get_kernel(
        loop, info, provenance, array_sig, tuple(scalar_sig)
    )
    stats = executor._codegen_stats
    if was_miss:
        stats["compiled"] += 1
    else:
        stats["cache_hits"] += 1

    if stride == 1:
        idx = slice(start, start + trips)
    else:
        idx = start + stride * np.arange(trips, dtype=np.int64)
    lanes = start + stride * np.arange(trips, dtype=np.int64)

    cg = _CgCtx(
        OpCounters(), executor.machine.scale, executor.CACHED_ARRAY_BYTES
    )
    fn(cg, idx, lanes, *arrays, *scalars)
    executor._ctx.pending.add(cg.counters)
    bounds.finalize_induction()
    return trips


def try_run_parallel_for(executor, loop: ast.For, env) -> Optional[int]:
    """Attempt codegen execution of one parallel loop.

    On success, array writes are committed, the induction variable's
    final value lands where the tree would leave it, the loop's counters
    are merged into the executor's pending set, and the trip count is
    returned.  Returns ``None`` — with no lasting side effects — when
    the loop is ineligible or a dynamic check failed, in which case the
    caller falls down the ladder (batch, then tree)."""
    cache = executor._codegen_static_cache
    info = cache.get(id(loop))
    if info is None:
        info = analyze_loop(loop)
        cache[id(loop)] = info
    if not info.eligible:
        return None

    stats = executor._codegen_stats
    ctx = executor._ctx
    entry_pending = ctx.pending
    ctx.pending = OpCounters()
    try:
        trips = _run(executor, loop, env, info)
    except (CodegenIneligible, BatchIneligible) as exc:
        # Shape problems repeat on every entry; stop re-attempting.
        info.reject(f"dynamic: {exc}")
        ctx.pending = entry_pending
        stats["fallback"] += 1
        return None
    except _TransientBail:
        # Value-dependent (bounds, aliasing, odd scalar): the next entry
        # may be eligible again, so no permanent verdict.
        ctx.pending = entry_pending
        stats["fallback"] += 1
        return None
    except (ReproError, ZeroDivisionError, OverflowError):
        # The kernel faults; shadows were never committed, so the
        # fallback engine reproduces the exact error and the exact
        # partial state sequential execution mandates.
        ctx.pending = entry_pending
        stats["fallback"] += 1
        return None
    entry_pending.add(ctx.pending)
    ctx.pending = entry_pending
    stats["ran"] += 1
    tracer = executor.machine.tracer
    if tracer.enabled:
        tracer.metrics.counter("codegen.loops").inc()
    return trips
