"""blackscholes (PARSEC): option pricing, the paper's running example.

Shape: one large, perfectly parallel loop over options, six input arrays
and one output, with heavy transcendental math per element (the
Black-Scholes closed form, repeated ``runs`` times as PARSEC's NUM_RUNS
does).  All indexes are the loop variable itself, so the loop passes the
streaming legality check — this is the Figure 5 example.  Table II:
data streaming applies (1.54x).
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import OptimizationPlan
from repro.transforms.streaming import StreamingOptions
from repro.workloads.base import MiniCWorkload, Table2Row, input_rng

EXEC_OPTIONS = 768
PAPER_OPTIONS = 10_000_000  # "10^7 options"
#: PARSEC repeats the pricing NUM_RUNS times; the executed repeat count is
#: calibrated so transfer dominates compute the way Figure 4 shows.
RUNS = 5

SOURCE = """
float CNDF(float x) {
    float ax = fabs(x);
    float k = 1.0 / (1.0 + 0.2316419 * ax);
    float poly = 0.319381530 + k * (-0.356563782 + k * (1.781477937
        + k * (-1.821255978 + k * 1.330274429)));
    float pdf = 0.39894228 * exp(-0.5 * x * x);
    float cnd = 1.0 - pdf * k * poly;
    if (x < 0.0) {
        return 1.0 - cnd;
    }
    return cnd;
}

float BlkSchlsEqEuroNoDiv(float spt, float strike, float rate, float vol,
                          float otime, int otype) {
    float sqrtt = sqrt(otime);
    float d1 = (log(spt / strike) + (rate + 0.5 * vol * vol) * otime)
        / (vol * sqrtt);
    float d2 = d1 - vol * sqrtt;
    float n1 = CNDF(d1);
    float n2 = CNDF(d2);
    float fut = strike * exp(-rate * otime);
    if (otype == 1) {
        return fut * (1.0 - n2) - spt * (1.0 - n1);
    }
    return spt * n1 - fut * n2;
}

void main() {
#pragma omp parallel for
    for (int i = 0; i < numOptions; i++) {
        float price = 0.0;
        for (int r = 0; r < runs; r++) {
            price = BlkSchlsEqEuroNoDiv(sptprice[i], strike[i], rate[i],
                                        volatility[i], otime[i], otype[i]);
        }
        prices[i] = price;
    }
}
"""


def make_arrays(seed=None):
    """Build the option pricing benchmark's executed-scale input arrays."""
    rng = input_rng(seed, 1234)
    n = EXEC_OPTIONS
    return {
        "sptprice": (rng.random(n) * 100.0 + 5.0).astype(np.float32),
        "strike": (rng.random(n) * 100.0 + 5.0).astype(np.float32),
        "rate": (rng.random(n) * 0.1 + 0.01).astype(np.float32),
        "volatility": (rng.random(n) * 0.5 + 0.05).astype(np.float32),
        "otime": (rng.random(n) * 2.0 + 0.1).astype(np.float32),
        "otype": rng.integers(0, 2, n).astype(np.int32),
        "prices": np.zeros(n, dtype=np.float32),
    }


def make() -> MiniCWorkload:
    """Construct the blackscholes workload instance."""
    return MiniCWorkload(
        name="blackscholes",
        source=SOURCE,
        table2=Table2Row(
            suite="PARSEC",
            paper_input="10^7 options",
            kloc=0.415,
            streaming=1.54,
        ),
        make_arrays=make_arrays,
        scalars={"numOptions": EXEC_OPTIONS, "runs": RUNS},
        sim_scale=PAPER_OPTIONS / EXEC_OPTIONS,
        output_arrays=["prices"],
        plan=OptimizationPlan(
            streaming_options=StreamingOptions(num_blocks=20)
        ),
        description="Black-Scholes option pricing: the Figure 5 streaming example",
    )
