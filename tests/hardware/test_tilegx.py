"""The Tile-Gx target: the optimizations are target-agnostic.

Section VIII: "Although all the optimizations are presented in the
context of Intel Xeon Phi coprocessors, we believe that these techniques
can also be applied to other emerging manycore processors, such as the
Tilera Tile-Gx processors."  These tests run the same transformed
programs against the Tile-Gx-like preset.
"""

import numpy as np
import pytest

from repro.hardware.spec import tilegx_machine
from repro.minic.parser import parse
from repro.runtime.executor import Machine, run_program
from repro.transforms.merge_offload import merge_offloads
from repro.transforms.streaming import StreamingOptions, apply_streaming

STREAM_SRC = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) { B[i] = sqrt(A[i]) * 2.0 + log(A[i] + 1.0); }
}
"""

MERGE_SRC = """
void main() {
    for (int t = 0; t < iters; t++) {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
        for (int i = 0; i < n; i++) { B[i] = A[i] * 2.0; }
#pragma offload target(mic:0) in(B : length(n)) in(n) out(C : length(n))
#pragma omp parallel for
        for (int j = 0; j < n; j++) { C[j] = B[j] + 1.0; }
    }
}
"""


def tile(scale=1.0):
    return Machine(spec=tilegx_machine(), scale=scale)


class TestSpecSanity:
    def test_no_wide_simd(self):
        spec = tilegx_machine()
        assert spec.mic.simd_lanes < 16

    def test_bigger_memory_than_phi(self):
        assert tilegx_machine().mic.memory_capacity == 16 << 30

    def test_slower_link(self):
        from repro.hardware.spec import paper_machine

        assert tilegx_machine().pcie.bandwidth < paper_machine().pcie.bandwidth


class TestStreamingOnTileGx:
    def test_correct_and_faster(self):
        n = 2048
        scale = 2.0e6 / n

        def arrays():
            rng = np.random.default_rng(1)
            return {
                "A": (rng.random(n) + 0.5).astype(np.float32),
                "B": np.zeros(n, dtype=np.float32),
            }

        baseline = run_program(
            STREAM_SRC, arrays=arrays(), scalars={"n": n},
            machine=tile(scale),
        )
        prog = parse(STREAM_SRC)
        report = apply_streaming(prog, StreamingOptions(num_blocks=12))
        assert report.applied
        streamed = run_program(
            prog, arrays=arrays(), scalars={"n": n}, machine=tile(scale)
        )
        assert np.array_equal(baseline.array("B"), streamed.array("B"))
        assert streamed.stats.total_time < baseline.stats.total_time

    def test_slower_link_makes_streaming_matter_more(self):
        """On the 3.2 GB/s link, transfer dominates harder, so overlap
        buys a larger fraction than on the Phi's 6 GB/s."""
        from repro.hardware.spec import paper_machine

        n = 2048
        scale = 2.0e6 / n

        def arrays():
            rng = np.random.default_rng(1)
            return {
                "A": (rng.random(n) + 0.5).astype(np.float32),
                "B": np.zeros(n, dtype=np.float32),
            }

        def gain(machine_factory):
            base = run_program(
                STREAM_SRC, arrays=arrays(), scalars={"n": n},
                machine=machine_factory(),
            ).stats.total_time
            prog = parse(STREAM_SRC)
            apply_streaming(prog, StreamingOptions(num_blocks=12))
            opt = run_program(
                prog, arrays=arrays(), scalars={"n": n},
                machine=machine_factory(),
            ).stats.total_time
            return base / opt

        tile_gain = gain(lambda: tile(scale))
        phi_gain = gain(lambda: Machine(scale=scale))
        assert tile_gain > phi_gain * 0.95  # at least comparable


class TestMergingOnTileGx:
    def test_merging_still_an_order_of_magnitude(self):
        n, iters = 256, 20
        scale = 100_000 / n

        def arrays():
            return {
                "A": np.arange(n, dtype=np.float32),
                "B": np.zeros(n, dtype=np.float32),
                "C": np.zeros(n, dtype=np.float32),
            }

        base = run_program(
            MERGE_SRC, arrays=arrays(), scalars={"n": n, "iters": iters},
            machine=tile(scale),
        )
        prog = parse(MERGE_SRC)
        assert merge_offloads(prog).applied
        merged = run_program(
            prog, arrays=arrays(), scalars={"n": n, "iters": iters},
            machine=tile(scale),
        )
        assert np.array_equal(base.array("C"), merged.array("C"))
        assert base.stats.total_time / merged.stats.total_time > 5
