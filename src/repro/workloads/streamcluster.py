"""streamcluster (PARSEC): online clustering.

Shape: Figure 6 — "a large loop may contain multiple parallel inner
loops.  Each inner loop is offloaded."  Every pass of the outer
facility-evaluation loop offloads two small kernels (distance gains and
assignment), so the naive port pays two kernel launches and re-transfers
the point set per pass — the worst offender in Figure 1.  Offload
merging hoists the whole outer loop into one device region; data
streaming alone (Figure 12) can only overlap the per-pass transfers.
Table II: streaming (1.34x) and merging (38.89x).
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import OptimizationPlan
from repro.transforms.streaming import StreamingOptions
from repro.workloads.base import MiniCWorkload, Table2Row, input_rng

EXEC_POINTS = 448
PAPER_POINTS = 163_840  # "163840 points"
PASSES = 40

SOURCE = """
void main() {
    for (int t = 0; t < passes; t++) {
        float cx0 = cx[t];
        float cx1 = cy[t];
        float cx2 = cz[t];
        float cx3 = cw[t];
#pragma omp parallel for
        for (int i = 0; i < npoints; i++) {
            float d0 = px[i] - cx0;
            float d1 = py[i] - cx1;
            float d2 = pz[i] - cx2;
            float d3 = pw[i] - cx3;
            gains[i] = d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3;
        }
#pragma omp parallel for
        for (int j = 0; j < npoints; j++) {
            if (gains[j] < cost[j]) {
                cost[j] = gains[j];
                assign[j] = t;
            }
        }
    }
}
"""


def make_arrays(seed=None):
    """Build the online clustering benchmark's executed-scale input arrays."""
    rng = input_rng(seed, 99)
    n = EXEC_POINTS
    return {
        "px": rng.random(n).astype(np.float32),
        "py": rng.random(n).astype(np.float32),
        "pz": rng.random(n).astype(np.float32),
        "pw": rng.random(n).astype(np.float32),
        "cx": rng.random(PASSES).astype(np.float32),
        "cy": rng.random(PASSES).astype(np.float32),
        "cz": rng.random(PASSES).astype(np.float32),
        "cw": rng.random(PASSES).astype(np.float32),
        "gains": np.zeros(n, dtype=np.float32),
        "cost": np.full(n, 1.0e30, dtype=np.float32),
        "assign": np.zeros(n, dtype=np.int32),
    }


def make() -> MiniCWorkload:
    """Construct the streamcluster workload instance."""
    return MiniCWorkload(
        name="streamcluster",
        source=SOURCE,
        table2=Table2Row(
            suite="PARSEC",
            paper_input="163840 points",
            kloc=1.79,
            streaming=1.34,
            merging=38.89,
        ),
        make_arrays=make_arrays,
        scalars={"npoints": EXEC_POINTS, "passes": PASSES},
        sim_scale=PAPER_POINTS / EXEC_POINTS,
        output_arrays=["cost", "assign"],
        plan=OptimizationPlan(
            streaming_options=StreamingOptions(num_blocks=10)
        ),
        description="per-pass kernels inside a facility-evaluation loop (Figure 6)",
    )
