"""Tests for the offload-choreography validator."""

import pytest

from repro.analysis.validate import assert_valid, validate_program
from repro.minic.parser import parse
from repro.transforms.pipeline import CompOptimizer
from repro.workloads.base import MiniCWorkload
from repro.workloads.suite import get_workload, workload_names


def errors(source):
    return [
        d for d in validate_program(parse(source)) if d.level == "error"
    ]


def warnings(source):
    return [
        d for d in validate_program(parse(source)) if d.level == "warning"
    ]


class TestCleanPrograms:
    def test_plain_offload_is_clean(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { B[i] = A[i]; }
        }
        """
        assert errors(src) == []
        assert warnings(src) == []

    def test_hand_pipeline_is_clean(self):
        src = """
        void main() {
        #pragma offload_transfer target(mic:0) nocopy(A1 : length(b) alloc_if(1) free_if(0))
        #pragma offload_transfer target(mic:0) in(A[0:b] : into(A1) alloc_if(0) free_if(0)) signal(0)
        #pragma offload target(mic:0) nocopy(A1 : alloc_if(0) free_if(0)) in(b) wait(0) out(B : length(b))
        #pragma omp parallel for
            for (int i = 0; i < b; i++) { B[i] = A1[i]; }
        #pragma offload_transfer target(mic:0) nocopy(A1 : alloc_if(0) free_if(1))
        }
        """
        assert errors(src) == []
        assert warnings(src) == []


class TestDefects:
    def test_use_before_alloc(self):
        src = """
        void main() {
        #pragma offload target(mic:0) nocopy(A1 : alloc_if(0) free_if(0)) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { B[i] = A1[i]; }
        }
        """
        codes = {d.code for d in errors(src)}
        assert "use-before-alloc" in codes

    def test_use_after_free(self):
        src = """
        void main() {
        #pragma offload_transfer target(mic:0) nocopy(A1 : length(n) alloc_if(1) free_if(1))
        #pragma offload target(mic:0) nocopy(A1 : alloc_if(0) free_if(0)) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { B[i] = A1[i]; }
        }
        """
        codes = {d.code for d in errors(src)}
        assert "use-after-free" in codes

    def test_unmatched_wait(self):
        src = """
        void main() {
        #pragma offload_wait target(mic:0) wait(9)
            x = 1;
        }
        """
        codes = {d.code for d in errors(src)}
        assert "unmatched-wait" in codes

    def test_untransferred_array(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { B[i] = A[i]; }
        }
        """
        codes = {d.code for d in errors(src)}
        assert "untransferred-array" in codes

    def test_leak_warning(self):
        src = """
        void main() {
        #pragma offload_transfer target(mic:0) nocopy(A1 : length(n) alloc_if(1) free_if(0))
            x = 1;
        }
        """
        assert {d.code for d in warnings(src)} == {"leaked-buffer"}

    def test_assert_valid_raises_with_listing(self):
        src = """
        void main() {
        #pragma offload_wait target(mic:0) wait(3)
            x = 1;
        }
        """
        with pytest.raises(AssertionError, match="unmatched-wait"):
            assert_valid(parse(src))


class TestTransformedProgramsAreValid:
    """Every benchmark's optimized program must lint clean — the validator
    double-checks the transforms' pragma choreography structurally, on top
    of the executor's behavioural checks."""

    @pytest.mark.parametrize(
        "name",
        [n for n in workload_names() if n not in ("ferret", "freqmine")],
    )
    def test_optimized_program_valid(self, name):
        workload = get_workload(name)
        assert isinstance(workload, MiniCWorkload)
        program = workload.opt_program()
        bad = [
            d for d in validate_program(program) if d.level == "error"
        ]
        assert bad == [], f"{name}: {[str(d) for d in bad]}"

    @pytest.mark.parametrize(
        "name",
        [n for n in workload_names() if n not in ("ferret", "freqmine")],
    )
    def test_unoptimized_program_valid(self, name):
        workload = get_workload(name)
        program = workload.mic_program()
        bad = [
            d for d in validate_program(program) if d.level == "error"
        ]
        assert bad == [], f"{name}: {[str(d) for d in bad]}"
