"""srad (Rodinia): speckle-reducing anisotropic diffusion.

Shape: the Figure 7 loop — every iteration of the diffusion sweep starts
with irregular reads through the precomputed neighbour-index arrays
(``J[iN[k]]`` etc.), then performs a long regular run of
diffusion-coefficient arithmetic.  srad iterates the sweep, and its MIC
port (like hotspot's) keeps the image resident on the device across
sweeps, so transfers are already amortized.  Regularization splits the
sweep after the irregular prefix so the math half vectorizes; the split
is plain loop fission inside the device region, with "no runtime
overhead".  Table II: regularization applies (1.25x).
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import OptimizationPlan
from repro.workloads.base import MiniCWorkload, Table2Row, input_rng

EXEC_SIZE = 1024
PAPER_SIZE = 4096 * 4096  # "4096 x 4096 matrix"
SWEEPS = 4

_LOOP_BODY = """
            float Jc = J[k];
            dN[k] = J[iN[k]] - Jc;
            dS[k] = J[iS[k]] - Jc;
            dW[k] = J[jW[k]] - Jc;
            dE[k] = J[jE[k]] - Jc;
            float G2 = (dN[k] * dN[k] + dS[k] * dS[k]
                + dW[k] * dW[k] + dE[k] * dE[k]) / (Jc * Jc + 0.0001);
            float L = (dN[k] + dS[k] + dW[k] + dE[k]) / (Jc + 0.0001);
            float num = 0.5 * G2 - 0.0625 * L * L;
            float den = 1.0 + 0.25 * L;
            float qsqr = num / (den * den);
            float cden = qsqr - q0sqr;
            float cnum = q0sqr * (1.0 + q0sqr);
            float cval = 1.0 / (1.0 + cden / cnum);
            if (cval < 0.0) {
                cval = 0.0;
            }
            if (cval > 1.0) {
                cval = 1.0;
            }
            C[k] = cval * exp(-0.25 * L) + 0.05 * sqrt(G2 + 0.0001);
"""

SOURCE = f"""
void main() {{
    for (int s = 0; s < sweeps; s++) {{
#pragma omp parallel for
        for (int k = 0; k < size; k++) {{
{_LOOP_BODY}
        }}
#pragma omp parallel for
        for (int k = 0; k < size; k++) {{
            J[k] = J[k] + 0.125 * C[k];
        }}
    }}
}}
"""

# The hand LEO port: the image and index arrays cross the bus once; every
# sweep runs on the device.
MIC_SOURCE = f"""
void main() {{
#pragma offload target(mic:0) inout(J : length(size)) in(iN, iS, jW, jE : length(size)) nocopy(dN, dS, dW, dE : length(size)) out(C : length(size)) in(size) in(sweeps) in(q0sqr)
    {{
        for (int s = 0; s < sweeps; s++) {{
#pragma omp parallel for
            for (int k = 0; k < size; k++) {{
{_LOOP_BODY}
            }}
#pragma omp parallel for
            for (int k = 0; k < size; k++) {{
                J[k] = J[k] + 0.125 * C[k];
            }}
        }}
    }}
}}
"""


def make_arrays(seed=None):
    """Build the speckle-reducing diffusion benchmark's executed-scale input arrays."""
    rng = input_rng(seed, 55)
    n = EXEC_SIZE
    # Neighbour indexes of a flattened grid, clamped at the borders, the
    # way srad precomputes iN/iS/jW/jE.
    rows = 32
    cols = n // rows
    idx = np.arange(n)
    i_n = np.where(idx - cols >= 0, idx - cols, idx)
    i_s = np.where(idx + cols < n, idx + cols, idx)
    j_w = np.where(idx % cols != 0, idx - 1, idx)
    j_e = np.where(idx % cols != cols - 1, idx + 1, idx)
    return {
        "J": (rng.random(n) * 0.9 + 0.1).astype(np.float32),
        "iN": i_n.astype(np.int32),
        "iS": i_s.astype(np.int32),
        "jW": j_w.astype(np.int32),
        "jE": j_e.astype(np.int32),
        "dN": np.zeros(n, dtype=np.float32),
        "dS": np.zeros(n, dtype=np.float32),
        "dW": np.zeros(n, dtype=np.float32),
        "dE": np.zeros(n, dtype=np.float32),
        "C": np.zeros(n, dtype=np.float32),
    }


def make() -> MiniCWorkload:
    """Construct the srad workload instance."""
    workload = MiniCWorkload(
        name="srad",
        source=SOURCE,
        table2=Table2Row(
            suite="Rodinia",
            paper_input="4096 x 4096 matrix",
            kloc=0.138,
            regularization=1.25,
        ),
        make_arrays=make_arrays,
        scalars={"size": EXEC_SIZE, "q0sqr": 0.05, "sweeps": SWEEPS},
        sim_scale=PAPER_SIZE / EXEC_SIZE,
        output_arrays=["J", "C"],
        plan=OptimizationPlan(),
        description="SRAD diffusion sweeps: irregular index prefix + regular math",
    )
    workload.mic_source = MIC_SOURCE
    return workload
