"""Hand-written tokenizer for MiniC.

The lexer is line-aware so that ``#pragma`` directives — which are
line-oriented in C — can be captured as single :data:`~repro.minic.tokens.PRAGMA`
tokens whose value is the directive text.  Everything else is ordinary
maximal-munch tokenization.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import LexError
from repro.minic.tokens import (
    EOF,
    FLOAT_LIT,
    IDENT,
    INT_LIT,
    KEYWORD,
    KEYWORDS,
    OPERATORS,
    PRAGMA,
    STRING_LIT,
    Token,
)


def tokenize(source: str) -> List[Token]:
    """Tokenize *source* and return the token list, ending with an EOF token."""
    return list(_iter_tokens(source))


def _iter_tokens(source: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    n = len(source)

    def column() -> int:
        return pos - line_start + 1

    while pos < n:
        ch = source[pos]

        # -- whitespace and newlines ------------------------------------
        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue

        # -- comments -----------------------------------------------------
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = n if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, column())
            # Keep the line counter correct across multi-line comments.
            line += source.count("\n", pos, end)
            nl = source.rfind("\n", pos, end)
            if nl >= 0:
                line_start = nl + 1
            pos = end + 2
            continue

        # -- pragma directives ---------------------------------------------
        if ch == "#":
            end = source.find("\n", pos)
            if end < 0:
                end = n
            text = source[pos:end]
            # Support line continuation with trailing backslash.
            while text.rstrip().endswith("\\") and end < n:
                nxt = source.find("\n", end + 1)
                if nxt < 0:
                    nxt = n
                text = text.rstrip()[:-1] + " " + source[end + 1 : nxt]
                line += 1
                end = nxt
            stripped = text.strip()
            if not stripped.startswith("#pragma"):
                raise LexError(
                    f"unsupported preprocessor directive {stripped.split()[0]!r}",
                    line,
                    column(),
                )
            directive = stripped[len("#pragma") :].strip()
            yield Token(PRAGMA, directive, line, column())
            pos = end
            continue

        # -- string literals -------------------------------------------------
        if ch == '"':
            end = pos + 1
            while end < n and source[end] != '"':
                if source[end] == "\\":
                    end += 1
                end += 1
            if end >= n:
                raise LexError("unterminated string literal", line, column())
            yield Token(STRING_LIT, source[pos + 1 : end], line, column())
            pos = end + 1
            continue

        # -- numbers --------------------------------------------------------
        if ch.isdigit() or (ch == "." and pos + 1 < n and source[pos + 1].isdigit()):
            start = pos
            is_float = False
            while pos < n and source[pos].isdigit():
                pos += 1
            if pos < n and source[pos] == ".":
                is_float = True
                pos += 1
                while pos < n and source[pos].isdigit():
                    pos += 1
            if pos < n and source[pos] in "eE":
                is_float = True
                pos += 1
                if pos < n and source[pos] in "+-":
                    pos += 1
                if pos >= n or not source[pos].isdigit():
                    raise LexError("malformed exponent", line, column())
                while pos < n and source[pos].isdigit():
                    pos += 1
            if pos < n and source[pos] in "fF":
                is_float = True
                pos += 1
            text = source[start:pos].rstrip("fF")
            kind = FLOAT_LIT if is_float else INT_LIT
            yield Token(kind, text, line, start - line_start + 1)
            continue

        # -- identifiers and keywords ----------------------------------------
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < n and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = KEYWORD if text in KEYWORDS else IDENT
            yield Token(kind, text, line, start - line_start + 1)
            continue

        # -- operators and punctuation -----------------------------------------
        for op in OPERATORS:
            if source.startswith(op, pos):
                yield Token(op, op, line, column())
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column())

    yield Token(EOF, "", line, 1)
