"""Multi-device fleet: block sharding, health tracking, and failover.

One simulated machine can carry N coprocessor cards
(``MachineSpec.devices``).  Each :class:`FleetDevice` owns its *timing*
resources — a memory manager, a compute track, and a DMA channel pair on
the shared :class:`~repro.hardware.event_sim.Timeline` — while the
*correctness* layer (the eager host-ordered numpy arrays in
``coi.device.arrays``) stays shared, exactly the decoupling the rest of
the simulator relies on.  That split is what makes the fleet invariant
cheap to state and possible to test: outputs and op counters are
bit-identical to the fault-free single-device run for any device count
and any survivable fault schedule, because sharding only ever moves
*time* between tracks.

The :class:`DeviceFleet` is the block-sharding scheduler plus the
failover layer:

* **sharding** — each offload entry (a streamed loop's block) is dealt
  round-robin over the currently healthy devices; buffers are placed on
  the device that first allocates them and their DMA rides that owner's
  channel from then on.
* **health** — every device carries a
  :class:`~repro.hardware.device.DeviceHealth` ledger.  A ``device:reset``
  drawn on a device's own fault stream quarantines it (or evicts it
  permanently once its ``max_resets`` budget is spent).  Quarantined
  cards are re-probed with seeded re-admission coin flips
  (:class:`~repro.hardware.device.ProbeSemantics`) before later blocks
  are assigned — but never by the re-assignment of the very block they
  just dropped.
* **failover** — a lost device's buffers are redistributed round-robin
  over the survivors.  With a :class:`~repro.runtime.checkpoint
  .CheckpointManager` attached, only the *live write windows* its shadow
  records for those buffers are re-uploaded (the same bookkeeping the
  single-device restart path uses); without one the full charged
  footprint is conservatively re-sent.  Kernel seconds of the lost
  device's blocks completed since the last commit are re-executed on a
  survivor's compute track.  All of it is charged to the simulated
  clock — degraded-mode capacity is accounted honestly, never waved
  away.

Exhaustion semantics: the run raises
:class:`~repro.errors.DeviceLost` only when *every* device has been
permanently evicted and the policy disables host fallback.  With
fallback enabled the run completes on the host (correctness is
unaffected; the fallback time is charged per offload).  Quarantine alone
can never wedge a run: when no healthy device exists but non-evicted
quarantined ones do, the least-failed card is force-readmitted (its
probe cost still charged).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.hardware.device import (
    PROBE_SEMANTICS,
    RESET_SEMANTICS,
    DeviceHealth,
    ProbeSemantics,
)
from repro.hardware.memory import DeviceMemoryManager
from repro.obs.tracer import NULL_TRACER
from repro.runtime.coi import DMA_FROM_DEVICE, DMA_TO_DEVICE, DEVICE

#: Entropy discriminator for the per-device re-admission probe streams.
#: Far outside the fault-site index range (0..6), so probe coins can
#: never collide with any fault stream of any device.
_PROBE_STREAM_TAG = 101


class FleetDevice:
    """One card of the fleet: its identity, timing resources, health."""

    def __init__(self, index: int, spec, scale: float):
        self.index = index
        self.device_id = f"dev{index}"
        self.memory = DeviceMemoryManager(
            capacity=spec.mic.usable_memory, scale=scale, device_index=index
        )
        self.health = DeviceHealth()
        #: Blocks the sharding scheduler assigned to this device.
        self.blocks_assigned = 0
        #: Buffers this device absorbed from lost peers.
        self.blocks_absorbed = 0
        #: Timeline resource names.  Tracks are created lazily by the
        #: shared Timeline, so a fleet needs no event-sim changes.
        self.compute_track = f"{self.device_id}:{DEVICE}"
        self.h2d_track = f"{self.device_id}:{DMA_TO_DEVICE}"
        self.d2h_track = f"{self.device_id}:{DMA_FROM_DEVICE}"


class DeviceFleet:
    """Block-sharding scheduler and failover layer over N devices."""

    def __init__(
        self,
        spec,
        scale: float,
        count: int,
        seed=None,
        policy=None,
        stats=None,
        tracer=None,
        probe: ProbeSemantics = PROBE_SEMANTICS,
    ):
        if count < 2:
            raise ValueError(
                f"a fleet needs at least 2 devices, got {count}; "
                f"single-device runs use the legacy runtime unchanged"
            )
        self.spec = spec
        self.policy = policy
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.probe = probe
        self.devices: List[FleetDevice] = [
            FleetDevice(i, spec, scale) for i in range(count)
        ]
        self.seed = seed
        self._probe_rngs: Dict[int, np.random.Generator] = {}
        #: Buffer name → owning device index (placement map).
        self.placement: Dict[str, int] = {}
        #: Buffer name → unscaled charged bytes.  Kept fleet-side because
        #: :class:`Allocation` footprints are already scaled while the
        #: checkpoint shadow (and the re-allocation API) work unscaled.
        self._charged: Dict[str, float] = {}
        #: Fleet-wide block assignment ordinal (drives round-robin and
        #: the probe-eligibility rule).
        self.total_assigned = 0
        #: Device the current offload block is assigned to.
        self.active: Optional[FleetDevice] = None

    # -- health / scheduling ---------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True when every device has been permanently evicted."""
        return all(d.health.evicted for d in self.devices)

    def healthy_devices(self) -> List[FleetDevice]:
        """The devices currently accepting blocks, in index order."""
        return [d for d in self.devices if d.health.healthy]

    def _quarantined_devices(self) -> List[FleetDevice]:
        return [d for d in self.devices if d.health.state == "quarantined"]

    def _probe_rng(self, device: int) -> np.random.Generator:
        rng = self._probe_rngs.get(device)
        if rng is None:
            seed = 0 if self.seed is None else self.seed
            if isinstance(seed, (tuple, list)):
                entropy = tuple(seed) + (_PROBE_STREAM_TAG, device)
            else:
                entropy = (seed, _PROBE_STREAM_TAG, device)
            rng = np.random.default_rng(entropy)
            self._probe_rngs[device] = rng
        return rng

    def _charge_probe(self, coi, dev: FleetDevice) -> None:
        coi.clock.advance(self.probe.cost)
        dev.health.probes_sent += 1
        if self.stats is not None:
            self.stats.readmission_probes += 1
            self.stats.recovery_seconds += self.probe.cost
            self.stats.record_action(f"{dev.device_id}:device", "probe")
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet:probe", coi.clock.now, track="cpu",
                device=dev.device_id, probes=dev.health.probes_sent,
            )
            self.tracer.metrics.counter("fleet.readmission_probes").inc()

    def _readmit(self, coi, dev: FleetDevice) -> None:
        dev.health.state = "healthy"
        dev.health.consecutive_failures = 0
        dev.health.quarantined_at = None
        if self.stats is not None:
            self.stats.readmissions += 1
            self.stats.record_action(f"{dev.device_id}:device", "readmitted")
        if self.tracer.enabled:
            self.tracer.instant(
                "fleet:readmit", coi.clock.now, track="cpu",
                device=dev.device_id,
            )
            self.tracer.metrics.counter("fleet.readmissions").inc()

    def _probe_quarantined(self, coi) -> None:
        """Offer every eligible quarantined device a re-admission probe.

        Eligibility requires at least one block assigned *since* the
        quarantine, so the re-assignment of the block a device just
        dropped can never immediately re-admit it.
        """
        for dev in self._quarantined_devices():
            at = dev.health.quarantined_at
            if at is not None and self.total_assigned <= at:
                continue
            self._charge_probe(coi, dev)
            coin = float(self._probe_rng(dev.index).random())
            if coin < self.probe.readmit_probability:
                self._readmit(coi, dev)

    def _force_readmit(self, coi) -> Optional[FleetDevice]:
        """Re-admit the least-failed quarantined card unconditionally.

        Called when no healthy device exists: waiting out quarantine
        would wedge the run, and the card with the fewest survived
        resets is the best bet.  The probe cost is still charged.
        """
        candidates = self._quarantined_devices()
        if not candidates:
            return None
        dev = min(
            candidates, key=lambda d: (d.health.resets_survived, d.index)
        )
        self._charge_probe(coi, dev)
        self._readmit(coi, dev)
        return dev

    def begin_block(self, coi) -> Optional[FleetDevice]:
        """Assign the next offload block to a healthy device.

        Probes eligible quarantined cards first, then deals the block
        round-robin over the healthy pool.  Returns None only when the
        fleet is exhausted (every card evicted) — the caller decides
        between :class:`~repro.errors.DeviceLost` and host fallback.
        """
        self._probe_quarantined(coi)
        healthy = self.healthy_devices()
        if not healthy:
            forced = self._force_readmit(coi)
            if forced is None:
                self.active = None
                return None
            healthy = [forced]
        dev = healthy[self.total_assigned % len(healthy)]
        self.total_assigned += 1
        dev.blocks_assigned += 1
        dev.health.consecutive_failures = 0
        self.active = dev
        return dev

    # -- placement bookkeeping -------------------------------------------------

    def device_for_alloc(self, name: str) -> FleetDevice:
        """The device buffer *name* lives (or will live) on.

        Existing placement wins — a buffer's DMA always rides its
        owner's channel.  New buffers land on the active device (the one
        executing the current block); outside any block they land on the
        first healthy device.
        """
        owner = self.placement.get(name)
        if owner is not None:
            return self.devices[owner]
        if self.active is not None and self.active.health.healthy:
            return self.active
        healthy = self.healthy_devices()
        return healthy[0] if healthy else self.devices[0]

    def note_alloc(self, name: str, dev: FleetDevice, unscaled_nbytes: float) -> None:
        """Record placement and the unscaled footprint of an allocation."""
        self.placement[name] = dev.index
        self._charged[name] = max(self._charged.get(name, 0.0), float(unscaled_nbytes))

    def note_free(self, name: str) -> None:
        """Forget placement and footprint of a freed buffer."""
        self.placement.pop(name, None)
        self._charged.pop(name, None)

    def owner_of(self, name: str) -> Optional[FleetDevice]:
        """The owning device of buffer *name*, or None if unplaced."""
        owner = self.placement.get(name)
        return None if owner is None else self.devices[owner]

    def resident_bytes(self) -> int:
        """Simulated bytes resident across the whole fleet."""
        return sum(d.memory.in_use for d in self.devices)

    def peak_bytes(self) -> int:
        """Summed per-device memory peaks (the fleet footprint)."""
        return sum(d.memory.peak for d in self.devices)

    # -- failover ----------------------------------------------------------------

    def handle_device_loss(self, coi, fault=None) -> None:
        """Ride out a ``device:reset`` on the active device.

        Charges the detection + re-init dead time, quarantines or
        permanently evicts the lost card, and redistributes its buffers
        to the survivors: re-allocate on the absorbing device, re-upload
        the live state over the absorber's own h2d channel (checkpoint
        write windows when a manager is attached, the full charged
        footprint otherwise), and re-execute the lost card's uncommitted
        kernel seconds on a survivor's compute track.  Values need no
        restoring — the correctness layer is eager host-ordered numpy —
        so only *time* and *accounting* move here.
        """
        lost = self.active if self.active is not None else self.devices[0]
        stats = self.stats
        policy = self.policy
        started = coi.clock.now
        tracer = self.tracer

        # 1. Dead time: watchdog detection + driver/thread-pool re-init.
        overhead = RESET_SEMANTICS.overhead(self.spec.mic.threads_used)
        coi.clock.advance(overhead)
        if stats is not None:
            stats.timeouts += 1
            stats.device_resets += 1
            stats.recovery_seconds += overhead

        # 2. Health transition: eviction once the reset budget is spent
        # (mirrors the single-device rule: max_resets=0 means the first
        # reset is fatal for the card), quarantine otherwise.
        max_resets = policy.max_resets if policy is not None else 0
        health = lost.health
        if health.resets_survived >= max_resets:
            health.state = "evicted"
            if stats is not None:
                stats.device_evictions += 1
                stats.record_action(f"{lost.device_id}:device", "evicted")
        else:
            health.resets_survived += 1
            health.consecutive_failures += 1
            health.state = "quarantined"
            health.quarantined_at = self.total_assigned
            if stats is not None:
                stats.quarantines += 1
                stats.record_action(f"{lost.device_id}:device", "reset_survived")
        if tracer.enabled:
            tracer.instant(
                "fleet:device-loss", coi.clock.now, track=lost.compute_track,
                device=lost.device_id, state=health.state,
                resets=health.resets_survived,
            )
            self.tracer.metrics.counter("fleet.device_losses").inc()

        # 3. The card's state is gone: wipe its memory accounting and
        # kill its persistent kernel sessions.  The shared numpy arrays
        # are untouched — they are the host-ordered correctness layer,
        # the same "the host still has the values" property the
        # single-device restart path leans on.
        lost.memory.reset()
        coi.drop_persistent_sessions(f"{lost.device_id}:")

        # 4. Redistribute the lost card's buffers to the survivors.
        lost_names = [
            name for name, idx in self.placement.items() if idx == lost.index
        ]
        survivors = self.healthy_devices()
        if lost_names and not survivors:
            forced = self._force_readmit(coi)
            if forced is not None:
                survivors = [forced]
        ckpt = coi.checkpoint
        reuploaded = 0
        if lost_names and survivors:
            events = []
            with coi.injector_suspended():
                for i, name in enumerate(sorted(lost_names)):
                    target = survivors[i % len(survivors)]
                    unscaled = self._charged.get(name, 0.0)
                    target.memory.allocate(name, unscaled)
                    self.placement[name] = target.index
                    target.blocks_absorbed += 1
                    if stats is not None:
                        stats.record_action(
                            f"{target.device_id}:device", "absorbed_block"
                        )
                    record = None if ckpt is None else ckpt.buffer_record(name)
                    if record is not None and record.writes:
                        # Only the live write windows the checkpoint
                        # shadow knows the host holds — the streamed
                        # case re-sends resident slots, not whole arrays.
                        for (start, _count), nbytes in record.writes.items():
                            events.append(
                                coi.raw_transfer(
                                    nbytes, to_device=True, sync=False,
                                    label=f"failover:reupload:{name}@{start}",
                                    block=True, channel=target.h2d_track,
                                )
                            )
                            reuploaded += 1
                    elif unscaled > 0:
                        # No shadow: conservatively re-send the full
                        # charged footprint.
                        events.append(
                            coi.raw_transfer(
                                unscaled, to_device=True, sync=False,
                                label=f"failover:reupload:{name}",
                                block=True, channel=target.h2d_track,
                            )
                        )
                        reuploaded += 1
                for event in events:
                    coi.clock.wait_until(event)

                # 5. Re-execute the lost card's uncommitted kernel work
                # on a survivor's compute track.
                recomputed = 0
                if ckpt is not None:
                    entries = ckpt.take_uncommitted(lost.device_id)
                    recomputed = len(entries)
                    redo_seconds = sum(seconds for _, seconds in entries)
                    if redo_seconds > 0.0:
                        redo = coi.timeline.schedule(
                            survivors[0].compute_track, redo_seconds,
                            label="failover:replay", not_before=coi.clock.now,
                        )
                        coi.clock.wait_until(redo)
        else:
            recomputed = 0
            if ckpt is not None:
                # Nothing to move, but the lost card's uncommitted work
                # must not leak into a later device's reset accounting.
                entries = ckpt.take_uncommitted(lost.device_id)
                recomputed = len(entries)

        if stats is not None:
            stats.blocks_reuploaded += reuploaded
            stats.blocks_recomputed += recomputed
            stats.recovery_seconds += coi.clock.now - started - overhead
        if tracer.enabled:
            tracer.span(
                "recovery:failover", lost.compute_track, started, coi.clock.now,
                device=lost.device_id, state=health.state,
                buffers_moved=len(lost_names), windows_reuploaded=reuploaded,
                blocks_recomputed=recomputed,
            )
            metrics = self.tracer.metrics
            metrics.counter("fleet.blocks_redistributed").inc(len(lost_names))
        self.active = None
