"""The data streaming transformation (Section III).

Rewrites an offloaded parallel loop

.. code-block:: c

    #pragma offload target(mic:0) in(A : length(n)) out(B : length(n)) in(n)
    #pragma omp parallel for
    for (int i = 0; i < n; i++) { B[i] = f(A[i]); }

into the pipelined form of Figure 5: a prologue that allocates device
buffers once and transfers the first block, an outer loop that prefetches
block k+1 asynchronously while computing block k, and an epilogue that
frees everything — so transfer overlaps computation and (with the
memory-usage optimization of Section III-B) the device holds only two
block buffers per streamed input array and one per output array.

Two code shapes are produced:

* ``double_buffer=False`` — Figure 5(b): full-size device arrays, block
  sections streamed into them, kernel indices unchanged;
* ``double_buffer=True`` — Figure 5(c): per-block buffers ``X__s1`` /
  ``X__s2`` (outputs get a single ``X__b``), the outer loop body is
  duplicated for even/odd blocks, and kernel indices are rebased into the
  block buffers.

Legality (Section III-A): every array index in the loop must be affine,
``a * i + b``, in the loop variable, with all of an array's accesses
sharing the same ``a`` and having ``b >= 0``; arrays that do not qualify
(or are loop-invariant) fall back to one whole-array "resident" transfer
in the prologue.  At least one array must actually stream, otherwise the
transform reports itself inapplicable.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from repro.errors import LegalityError, NotAffineError
from repro.analysis.array_access import (
    AccessKind,
    ArrayAccess,
    classify_accesses,
    extract_linear_form,
    loop_variable,
)
from repro.analysis.offload import loop_bound
from repro.minic import ast_nodes as ast
from repro.minic import builder
from repro.minic.visitor import (
    NodeTransformer,
    clone,
    find_offload_loops,
    get_pragma,
    substitute,
)
from repro.transforms.base import TransformReport, replace_statement

#: The paper: "the best number of blocks for most benchmarks is between
#: 10 and 40"; 20 is the default when no model-driven count is given.
DEFAULT_NUM_BLOCKS = 20

import itertools
import math

_session_counter = itertools.count()


def _new_session() -> str:
    """A unique persistent-kernel session name per streamed loop."""
    return f"sess{next(_session_counter)}"


def choose_demotion_blocks(footprint_bytes: float, free_bytes: float) -> int:
    """Block count for an offload demoted to streamed form after OOM.

    The demoted offload keeps two blocks of each array resident
    (double-buffered), so the per-instant footprint is ``2/nblocks`` of
    the full data.  Pick the paper's default block count unless the free
    device memory demands finer blocks; target at most half of what is
    free so recovery cannot immediately re-OOM.
    """
    nblocks = DEFAULT_NUM_BLOCKS
    budget = max(free_bytes, 1.0) * 0.5
    if footprint_bytes > 0 and 2.0 * footprint_bytes / nblocks > budget:
        nblocks = math.ceil(2.0 * footprint_bytes / budget)
    return max(2, nblocks)


@dataclass
class StreamingOptions:
    """Tuning knobs for the streaming transform."""

    num_blocks: int = DEFAULT_NUM_BLOCKS
    double_buffer: bool = True
    thread_reuse: bool = True
    #: Compile-time integer values for symbolic index coefficients
    #: (e.g. a row width), enabling streaming of ``A[i * dim + d]`` loops.
    bindings: Dict[str, int] = dc_field(default_factory=dict)
    #: Coprocessor cards the runtime will shard blocks across.  The
    #: transform itself is device-count-agnostic (the fleet scheduler
    #: assigns blocks at runtime); the count is recorded on the emitted
    #: :class:`StreamSchedule` so recovery tooling can audit the intended
    #: round-robin block placement.
    devices: int = 1


@dataclass(frozen=True)
class StreamSchedule:
    """Resumable description of one streamed loop's block schedule.

    The generated code already *is* the schedule, but recovery tooling
    (checkpoint/restart, campaign reports) needs the facts without
    re-deriving them from the AST: how many blocks there are, which
    persistent session runs them, and which device buffers are live
    while block *k* computes — exactly the set a device reset forces the
    runtime to re-upload before resuming at block *k*.
    """

    session: str
    num_blocks: int
    double_buffer: bool
    thread_reuse: bool
    #: Streamed arrays that are read (double-buffered under Figure 5(c)).
    streamed_in: Tuple[str, ...] = ()
    #: Streamed pure outputs (single block buffer under Figure 5(c)).
    streamed_out: Tuple[str, ...] = ()
    #: Streamed inout arrays (updated in place in their double buffers).
    streamed_inout: Tuple[str, ...] = ()
    #: Whole-array resident buffers (transferred once in the prologue).
    resident: Tuple[str, ...] = ()
    #: Fleet size the schedule was planned for (1 = the single-card
    #: pre-fleet shape; the field then changes nothing downstream).
    devices: int = 1

    @property
    def resumable(self) -> bool:
        """Every block boundary is a consistent recovery point.

        Streamed schedules are resumable by construction: each block's
        inputs arrive through recorded block-granular transfers and each
        block's outputs are drained before the next commit, so restoring
        the live buffers replays at most the in-flight window.
        """
        return self.num_blocks > 1

    def live_buffers(self, block: int) -> Tuple[str, ...]:
        """Device buffer names resident while *block* computes."""
        if not self.double_buffer:
            return (
                self.streamed_in
                + self.streamed_out
                + self.streamed_inout
                + self.resident
            )
        suffix = "__s1" if block % 2 == 0 else "__s2"
        names = [name + suffix for name in self.streamed_in]
        names += [name + suffix for name in self.streamed_inout]
        names += [name + "__b" for name in self.streamed_out]
        names += list(self.resident)
        return tuple(names)

    def block_assignments(self, devices: Optional[int] = None) -> Tuple[int, ...]:
        """The fleet device index each block is planned onto.

        The runtime's block-sharding scheduler deals blocks round-robin
        over healthy devices, so with a full fleet block *k* lands on
        ``k % devices``; losses shift later blocks onto the survivors.
        This is the *planned* (fault-free) placement — the audit baseline
        a campaign's per-device recovery histogram is compared against.
        """
        fleet = self.devices if devices is None else devices
        if fleet < 1:
            raise ValueError(f"device count must be >= 1, got {fleet}")
        return tuple(k % fleet for k in range(self.num_blocks))


@dataclass
class _ArrayPlan:
    """How one clause array is handled by the transform."""

    name: str
    direction: str  # in / out / inout
    orig_length: Optional[ast.Expr]
    streamed: bool = False
    # Index expressions of the extreme-offset accesses (reads and writes).
    read_min: Optional[ast.Expr] = None
    read_max: Optional[ast.Expr] = None
    write_min: Optional[ast.Expr] = None
    write_max: Optional[ast.Expr] = None
    # Numeric offset bounds (same-coefficient linear forms).
    read_cmin: int = 0
    read_cmax: int = 0
    write_cmin: int = 0
    write_cmax: int = 0

    @property
    def reads(self) -> bool:
        return self.direction in ("in", "inout")

    @property
    def writes(self) -> bool:
        return self.direction in ("out", "inout")


def plan_arrays(
    loop: ast.For,
    pragma: ast.OffloadPragma,
    bindings: Dict[str, int],
) -> Tuple[List[_ArrayPlan], List[ast.TransferClause]]:
    """Build per-array streaming plans from the clauses and access analysis.

    Returns (array plans, scalar clauses).  Raises
    :class:`~repro.errors.LegalityError` when the loop shape itself rules
    streaming out (non-canonical loop, irregular accesses).
    """
    var = _canonical_loop_var(loop)
    accesses = classify_accesses(loop, bindings)
    irregular = {AccessKind.INDIRECT, AccessKind.NONLINEAR, AccessKind.AOS}
    bad = [a for a in accesses if a.kind in irregular]
    if bad:
        raise LegalityError(
            f"irregular access to {bad[0].array!r} "
            f"({bad[0].kind.value}) blocks data streaming"
        )

    by_array: Dict[str, List[ArrayAccess]] = {}
    for access in accesses:
        by_array.setdefault(access.array, []).append(access)

    plans: List[_ArrayPlan] = []
    scalars: List[ast.TransferClause] = []
    for clause in pragma.clauses:
        if clause.length is None:
            scalars.append(clause)
            continue
        array_accesses = by_array.get(clause.var, [])
        if not array_accesses:
            # Dead clause: the loop never touches this array; no transfer
            # or device allocation is needed at all.
            continue
        plan = _ArrayPlan(
            clause.var,
            _narrow_direction(clause.direction, array_accesses),
            clause.length,
        )
        plan.streamed = _plan_sections(plan, array_accesses, var, bindings)
        plans.append(plan)
    return plans, scalars


def _narrow_direction(direction: str, accesses: List[ArrayAccess]) -> str:
    """Tighten a clause direction to what the loop actually does.

    A declared ``inout`` array that the loop only ever writes — with every
    write unguarded, so each iteration defines its element — does not need
    its old contents on the device; it is effectively ``out``.  Likewise a
    declared output never written is only an input.  Guarded writes keep
    the conservative direction (partially-written arrays must preserve
    untouched elements).
    """
    reads = [a for a in accesses if not a.is_write]
    writes = [a for a in accesses if a.is_write]
    if direction == "inout":
        if not reads and writes and all(not w.guarded for w in writes):
            return "out"
        if not writes and reads:
            return "in"
    elif direction == "out" and not writes and reads:
        return "in"
    return direction


def _plan_sections(
    plan: _ArrayPlan,
    accesses: List[ArrayAccess],
    var: str,
    bindings: Dict[str, int],
) -> bool:
    """Fill the min/max section expressions; returns streamability."""
    if not accesses:
        return False
    forms = []
    for access in accesses:
        try:
            form = extract_linear_form(access.index, var, bindings)
        except NotAffineError:
            return False
        forms.append((access, form))
    coeffs = {form.coeff for _, form in forms}
    if len(coeffs) != 1:
        return False
    coeff = coeffs.pop()
    if coeff <= 0:
        return False  # invariant or reversed arrays stay resident
    if min(form.const for _, form in forms) < 0:
        return False  # negative offsets would need clamped prologue sections

    reads = [(a, f) for a, f in forms if not a.is_write]
    writes = [(a, f) for a, f in forms if a.is_write]
    if reads:
        plan.read_min = min(reads, key=lambda af: af[1].const)[0].index
        plan.read_max = max(reads, key=lambda af: af[1].const)[0].index
        plan.read_cmin = min(f.const for _, f in reads)
        plan.read_cmax = max(f.const for _, f in reads)
    if writes:
        plan.write_min = min(writes, key=lambda af: af[1].const)[0].index
        plan.write_max = max(writes, key=lambda af: af[1].const)[0].index
        plan.write_cmin = min(f.const for _, f in writes)
        plan.write_cmax = max(f.const for _, f in writes)
    if plan.reads and not reads:
        # declared as input but never read at a streamable index
        return False
    if plan.writes and not writes:
        return False
    if plan.reads and plan.writes:
        # Double-buffered inout works in place inside the read-section
        # buffers; the written range must fit inside the read range.
        if plan.write_cmin < plan.read_cmin or plan.write_cmax > plan.read_cmax:
            return False
    return True


def _canonical_loop_var(loop: ast.For) -> str:
    """Check the canonical shape for (i = 0; i < bound; i++) and return i."""
    var = loop_variable(loop)
    start = None
    if isinstance(loop.init, ast.VarDecl):
        start = loop.init.init
    elif isinstance(loop.init, ast.Assign):
        start = loop.init.value
    if start != ast.IntLit(0):
        raise LegalityError("streaming requires a loop starting at 0")
    cond = loop.cond
    if not (
        isinstance(cond, ast.BinOp)
        and cond.op == "<"
        and cond.left == ast.Ident(var)
    ):
        raise LegalityError("streaming requires an i < bound condition")
    step_ok = loop.step == ast.Assign(ast.Ident(var), ast.IntLit(1), "+=")
    if not step_ok:
        raise LegalityError("streaming requires a unit-increment step")
    return var


# --------------------------------------------------------------------------
# Section expression helpers
# --------------------------------------------------------------------------


def _sub_index(index: ast.Expr, var: str, replacement: ast.Expr) -> ast.Expr:
    return substitute(index, {var: replacement})


def _section_start(index_min: ast.Expr, var: str, start: ast.Expr) -> ast.Expr:
    return _sub_index(index_min, var, start)


def _section_length(
    index_min: ast.Expr,
    index_max: ast.Expr,
    var: str,
    start: ast.Expr,
    length: ast.Expr,
) -> ast.Expr:
    """Elements covered by iterations [start, start+length): Emax(last) -
    Emin(first) + 1."""
    last = builder.expr("S + L - 1", S=clone(start), L=clone(length))
    end = _sub_index(index_max, var, last)
    begin = _sub_index(index_min, var, clone(start))
    return builder.expr("E - B + 1", E=end, B=begin)


# --------------------------------------------------------------------------
# Clause construction helpers
# --------------------------------------------------------------------------


def _clause(
    direction: str,
    var: str,
    start: Optional[ast.Expr] = None,
    length: Optional[ast.Expr] = None,
    into: Optional[str] = None,
    into_start: Optional[ast.Expr] = None,
    alloc: Optional[int] = None,
    free: Optional[int] = None,
) -> ast.TransferClause:
    clause = ast.TransferClause(direction, var)
    clause.start = start
    clause.length = length
    clause.into = into
    clause.into_start = into_start
    if alloc is not None:
        clause.alloc_if = ast.IntLit(alloc)
    if free is not None:
        clause.free_if = ast.IntLit(free)
    return clause


def _transfer_stmt(
    clauses: List[ast.TransferClause], signal: Optional[ast.Expr] = None
) -> ast.PragmaStmt:
    return ast.PragmaStmt(
        ast.OffloadTransferPragma(target=0, clauses=clauses, signal=signal)
    )


# --------------------------------------------------------------------------
# The transform
# --------------------------------------------------------------------------


class _IndexRebaser(NodeTransformer):
    """Rewrites streamed-array accesses into block buffers (Figure 5(c)).

    The kernel loop keeps the *global* induction variable, so plain uses
    of ``i`` (conditions, resident arrays) stay correct; only streamed
    accesses are rebased: ``X[E(i)]`` becomes
    ``X__sN[E(i) - Emin(__start)]`` — the global element index minus the
    block section's base.
    """

    def __init__(self, renames: Dict[str, str], bases: Dict[str, ast.Expr]):
        self.renames = renames
        self.bases = bases

    def visit_Subscript(self, node: ast.Subscript) -> ast.Node:
        self.generic_visit(node)
        if isinstance(node.base, ast.Ident) and node.base.name in self.renames:
            name = node.base.name
            rebased = builder.expr(
                "G - B", G=clone(node.index), B=clone(self.bases[name])
            )
            return ast.Subscript(ast.Ident(self.renames[name]), rebased)
        return node


def apply_streaming(
    program: ast.Program,
    options: Optional[StreamingOptions] = None,
    loop: Optional[ast.For] = None,
) -> TransformReport:
    """Apply data streaming to *loop* (or every eligible loop) in place."""
    options = options or StreamingOptions()
    report = TransformReport(name="data-streaming", applied=False)
    targets = [loop] if loop is not None else find_offload_loops(program)
    for target in targets:
        try:
            _stream_one_loop(program, target, options, report)
        except LegalityError as exc:
            report.reason = str(exc)
    return report


def _stream_one_loop(
    program: ast.Program,
    loop: ast.For,
    options: StreamingOptions,
    report: TransformReport,
) -> None:
    pragma = get_pragma(loop, ast.OffloadPragma)
    omp = get_pragma(loop, ast.OmpParallelFor)
    if pragma is None or omp is None:
        raise LegalityError("loop is not an offloaded parallel loop")
    if pragma.signal is not None or pragma.wait is not None:
        raise LegalityError("loop already uses asynchronous offload")

    var = _canonical_loop_var(loop)
    bound = loop_bound(loop)
    plans, scalar_clauses = plan_arrays(loop, pragma, options.bindings)
    if not any(p.streamed for p in plans):
        raise LegalityError("no array qualifies for streaming")

    session = _new_session()
    if options.double_buffer:
        stmts = _emit_double_buffered(
            loop, var, bound, plans, scalar_clauses, options, session
        )
    else:
        stmts = _emit_full_buffers(
            loop, var, bound, plans, scalar_clauses, options, session
        )
    if not replace_statement(program, loop, stmts):
        raise LegalityError("loop not found in the program body")
    report.applied = True
    streamed = [p.name for p in plans if p.streamed]
    report.schedules.append(
        StreamSchedule(
            session=session,
            num_blocks=options.num_blocks,
            double_buffer=options.double_buffer,
            thread_reuse=options.thread_reuse,
            streamed_in=tuple(
                p.name for p in plans if p.streamed and p.reads and not p.writes
            ),
            streamed_out=tuple(
                p.name for p in plans if p.streamed and p.writes and not p.reads
            ),
            streamed_inout=tuple(
                p.name for p in plans if p.streamed and p.reads and p.writes
            ),
            resident=tuple(p.name for p in plans if not p.streamed),
            devices=options.devices,
        )
    )
    report.note(
        f"streamed {', '.join(streamed)} in {options.num_blocks} blocks "
        f"(double_buffer={options.double_buffer}, "
        f"thread_reuse={options.thread_reuse}, session={session})"
    )


def _scalar_kernel_clauses(
    scalar_clauses: List[ast.TransferClause], extra_names: List[str]
) -> List[ast.TransferClause]:
    clauses = [clone(c) for c in scalar_clauses]
    present = {c.var for c in clauses}
    for name in extra_names:
        if name not in present:
            clauses.append(_clause("in", name))
    return clauses


def _kernel_pragma(
    nocopy_names: List[str],
    scalar_clauses: List[ast.TransferClause],
    out_clauses: List[ast.TransferClause],
    wait: ast.Expr,
    persistent: bool,
    session: Optional[str] = None,
) -> ast.OffloadPragma:
    clauses = [
        _clause("nocopy", name, alloc=0, free=0) for name in nocopy_names
    ]
    clauses += scalar_clauses + out_clauses
    return ast.OffloadPragma(
        target=0,
        clauses=clauses,
        wait=wait,
        persistent=persistent,
        session=session if persistent else None,
    )


def _emit_full_buffers(
    loop: ast.For,
    var: str,
    bound: ast.Expr,
    plans: List[_ArrayPlan],
    scalar_clauses: List[ast.TransferClause],
    options: StreamingOptions,
    session: str,
) -> List[ast.Stmt]:
    """Figure 5(b): whole-array device buffers, sectioned transfers."""
    nb = options.num_blocks
    header = builder.stmts(
        "int __nblocks = NB;\n"
        "int __bsize = (N + __nblocks - 1) / __nblocks;\n"
        "int __len0 = min(__bsize, N);",
        NB=nb,
        N=clone(bound),
    )

    alloc_clauses: List[ast.TransferClause] = []
    first_clauses: List[ast.TransferClause] = []
    free_clauses: List[ast.TransferClause] = []
    prefetch_clauses: List[ast.TransferClause] = []
    final_out_clauses: List[ast.TransferClause] = []
    start0 = ast.IntLit(0)
    len0 = ast.Ident("__len0")
    nstart = ast.Ident("__nstart")
    nlen = ast.Ident("__nlen")

    for plan in plans:
        alloc_clauses.append(
            _clause(
                "nocopy",
                plan.name,
                length=_device_extent(plan, var, bound),
                alloc=1,
                free=0,
            )
        )
        free_clauses.append(_clause("nocopy", plan.name, alloc=0, free=1))
        if plan.streamed and plan.reads:
            first_clauses.append(
                _clause(
                    "in",
                    plan.name,
                    start=_section_start(plan.read_min, var, start0),
                    length=_section_length(
                        plan.read_min, plan.read_max, var, start0, len0
                    ),
                    alloc=0,
                    free=0,
                )
            )
            prefetch_clauses.append(
                _clause(
                    "in",
                    plan.name,
                    start=_section_start(plan.read_min, var, nstart),
                    length=_section_length(
                        plan.read_min, plan.read_max, var, nstart, nlen
                    ),
                    alloc=0,
                    free=0,
                )
            )
        elif plan.reads:
            # Resident array: transferred once, before the pipeline starts.
            first_clauses.append(
                _clause(
                    "in", plan.name, length=clone(plan.orig_length), alloc=0, free=0
                )
            )
        if plan.writes and not plan.streamed:
            final_out_clauses.append(
                _clause(
                    "out", plan.name, length=clone(plan.orig_length), alloc=0, free=0
                )
            )

    start = ast.Ident("__start")
    length = ast.Ident("__len")
    block_out_clauses = [
        _clause(
            "out",
            plan.name,
            start=_section_start(plan.write_min, var, start),
            length=_section_length(
                plan.write_min, plan.write_max, var, start, length
            ),
            alloc=0,
            free=0,
        )
        for plan in plans
        if plan.streamed and plan.writes
    ]

    kernel_scalars = _scalar_kernel_clauses(
        scalar_clauses, ["__start", "__len"]
    )
    kernel_pragma = _kernel_pragma(
        [p.name for p in plans],
        kernel_scalars,
        block_out_clauses,
        wait=ast.Ident("__k"),
        persistent=options.thread_reuse,
        session=session,
    )
    omp = get_pragma(loop, ast.OmpParallelFor)
    kernel_loop = ast.For(
        init=ast.VarDecl(var, ast.INT, ast.Ident("__start")),
        cond=builder.expr(f"{var} < __start + __len"),
        step=ast.Assign(ast.Ident(var), ast.IntLit(1), "+="),
        body=clone(loop.body),
        pragmas=[kernel_pragma, clone(omp)],
    )

    prefetch = ast.If(
        builder.expr("__nlen > 0"),
        ast.Block([_transfer_stmt(prefetch_clauses, signal=builder.expr("__k + 1"))]),
    )
    outer_body = builder.stmts(
        "int __start = __k * __bsize;\n"
        "int __len = min(__bsize, N - __start);\n"
        "int __nstart = __start + __bsize;\n"
        "int __nlen = min(__bsize, N - __nstart);",
        N=clone(bound),
    )
    # Trailing blocks can be empty when N does not divide evenly.
    outer_body.append(
        ast.If(builder.expr("__len > 0"), ast.Block([prefetch, kernel_loop]))
    )
    outer = ast.For(
        init=ast.VarDecl("__k", ast.INT, ast.IntLit(0)),
        cond=builder.expr("__k < __nblocks"),
        step=ast.Assign(ast.Ident("__k"), ast.IntLit(1), "+="),
        body=ast.Block(outer_body),
    )

    stmts: List[ast.Stmt] = list(header)
    stmts.append(_transfer_stmt(alloc_clauses))
    stmts.append(_transfer_stmt(first_clauses, signal=ast.IntLit(0)))
    stmts.append(outer)
    if final_out_clauses:
        stmts.append(_transfer_stmt(final_out_clauses))
    stmts.append(_transfer_stmt(free_clauses))
    return stmts


def _device_extent(plan: _ArrayPlan, var: str, bound: ast.Expr) -> ast.Expr:
    """Whole-array device length for the full-buffer variant."""
    if not plan.streamed:
        return clone(plan.orig_length)
    index_max = plan.read_max if plan.read_max is not None else plan.write_max
    if plan.write_max is not None and plan.read_max is not None:
        # Use the original clause length: it covers both by inference.
        return clone(plan.orig_length)
    last = builder.expr("N - 1", N=clone(bound))
    return builder.expr("E + 1", E=_sub_index(index_max, var, last))


def _emit_double_buffered(
    loop: ast.For,
    var: str,
    bound: ast.Expr,
    plans: List[_ArrayPlan],
    scalar_clauses: List[ast.TransferClause],
    options: StreamingOptions,
    session: str,
) -> List[ast.Stmt]:
    """Figure 5(c): two block buffers per streamed input, one per output."""
    nb = options.num_blocks
    header = builder.stmts(
        "int __nblocks = NB;\n"
        "int __bsize = (N + __nblocks - 1) / __nblocks;\n"
        "int __len0 = min(__bsize, N);",
        NB=nb,
        N=clone(bound),
    )

    streamed_in = [p for p in plans if p.streamed and p.reads]
    # Pure outputs get a single block buffer ("we only need one memory
    # block for the output array"); inout arrays are updated in place
    # inside their double buffers and copied back from there.
    streamed_out = [p for p in plans if p.streamed and p.writes and not p.reads]
    streamed_inout = [p for p in plans if p.streamed and p.writes and p.reads]
    resident = [p for p in plans if not p.streamed]

    alloc_clauses: List[ast.TransferClause] = []
    free_clauses: List[ast.TransferClause] = []
    resident_in: List[ast.TransferClause] = []
    resident_out: List[ast.TransferClause] = []

    def block_len(plan: _ArrayPlan, index_min, index_max) -> ast.Expr:
        return _section_length(
            index_min, index_max, var, ast.IntLit(0), ast.Ident("__bsize")
        )

    for plan in streamed_in:
        for suffix in ("__s1", "__s2"):
            alloc_clauses.append(
                _clause(
                    "nocopy",
                    plan.name + suffix,
                    length=block_len(plan, plan.read_min, plan.read_max),
                    alloc=1,
                    free=0,
                )
            )
            free_clauses.append(
                _clause("nocopy", plan.name + suffix, alloc=0, free=1)
            )
    for plan in streamed_out:
        alloc_clauses.append(
            _clause(
                "nocopy",
                plan.name + "__b",
                length=block_len(plan, plan.write_min, plan.write_max),
                alloc=1,
                free=0,
            )
        )
        free_clauses.append(_clause("nocopy", plan.name + "__b", alloc=0, free=1))
    for plan in resident:
        alloc_clauses.append(
            _clause(
                "nocopy", plan.name, length=clone(plan.orig_length), alloc=1, free=0
            )
        )
        free_clauses.append(_clause("nocopy", plan.name, alloc=0, free=1))
        if plan.reads:
            resident_in.append(
                _clause(
                    "in", plan.name, length=clone(plan.orig_length), alloc=0, free=0
                )
            )
        if plan.writes:
            resident_out.append(
                _clause(
                    "out", plan.name, length=clone(plan.orig_length), alloc=0, free=0
                )
            )

    def in_clauses_for(start_expr: ast.Expr, len_expr: ast.Expr, suffix: str):
        return [
            _clause(
                "in",
                plan.name,
                start=_section_start(plan.read_min, var, start_expr),
                length=_section_length(
                    plan.read_min, plan.read_max, var, start_expr, len_expr
                ),
                into=plan.name + suffix,
                alloc=0,
                free=0,
            )
            for plan in streamed_in
        ]

    first_block = in_clauses_for(ast.IntLit(0), ast.Ident("__len0"), "__s1")

    start_ident = ast.Ident("__start")
    len_ident = ast.Ident("__len")

    def kernel_for(suffix: str) -> ast.For:
        renames = {p.name: p.name + suffix for p in streamed_in}
        bases = {
            p.name: _section_start(p.read_min, var, start_ident)
            for p in streamed_in
        }
        for p in streamed_out:
            renames[p.name] = p.name + "__b"
            bases[p.name] = _section_start(p.write_min, var, start_ident)
        body = _IndexRebaser(renames, bases).visit(clone(loop.body))
        out_clauses = [
            _clause(
                "out",
                p.name + "__b",
                start=ast.IntLit(0),
                length=_section_length(
                    p.write_min, p.write_max, var, start_ident, len_ident
                ),
                into=p.name,
                into_start=_section_start(p.write_min, var, start_ident),
                alloc=0,
                free=0,
            )
            for p in streamed_out
        ]
        # Inout arrays copy back from inside their double buffer: the
        # written range starts at the write-read offset within the block.
        out_clauses += [
            _clause(
                "out",
                p.name + suffix,
                start=builder.expr(
                    "W - R",
                    W=_section_start(p.write_min, var, start_ident),
                    R=_section_start(p.read_min, var, start_ident),
                ),
                length=_section_length(
                    p.write_min, p.write_max, var, start_ident, len_ident
                ),
                into=p.name,
                into_start=_section_start(p.write_min, var, start_ident),
                alloc=0,
                free=0,
            )
            for p in streamed_inout
        ]
        nocopy_names = (
            [p.name + suffix for p in streamed_in]
            + [p.name + "__b" for p in streamed_out]
            + [p.name for p in resident]
        )
        kernel_scalars = _scalar_kernel_clauses(
            scalar_clauses, ["__start", "__len", "__bsize"]
        )
        pragma = _kernel_pragma(
            nocopy_names,
            kernel_scalars,
            out_clauses,
            wait=ast.Ident("__k"),
            persistent=options.thread_reuse,
            session=session,
        )
        omp = get_pragma(loop, ast.OmpParallelFor)
        return ast.For(
            init=ast.VarDecl(var, ast.INT, ast.Ident("__start")),
            cond=builder.expr(f"{var} < __start + __len"),
            step=ast.Assign(ast.Ident(var), ast.IntLit(1), "+="),
            body=body,
            pragmas=[pragma, clone(omp)],
        )

    nstart = ast.Ident("__nstart")
    nlen = ast.Ident("__nlen")
    prefetch = ast.If(
        builder.expr("__nlen > 0"),
        ast.Block(
            [
                ast.If(
                    builder.expr("(__k + 1) % 2 == 0"),
                    ast.Block(
                        [
                            _transfer_stmt(
                                in_clauses_for(nstart, nlen, "__s1"),
                                signal=builder.expr("__k + 1"),
                            )
                        ]
                    ),
                    ast.Block(
                        [
                            _transfer_stmt(
                                in_clauses_for(nstart, nlen, "__s2"),
                                signal=builder.expr("__k + 1"),
                            )
                        ]
                    ),
                )
            ]
        ),
    )

    outer_body = builder.stmts(
        "int __start = __k * __bsize;\n"
        "int __len = min(__bsize, N - __start);\n"
        "int __nstart = __start + __bsize;\n"
        "int __nlen = min(__bsize, N - __nstart);",
        N=clone(bound),
    )
    # Trailing blocks can be empty when N does not divide evenly.
    outer_body.append(
        ast.If(
            builder.expr("__len > 0"),
            ast.Block(
                [
                    prefetch,
                    ast.If(
                        builder.expr("__k % 2 == 0"),
                        ast.Block([kernel_for("__s1")]),
                        ast.Block([kernel_for("__s2")]),
                    ),
                ]
            ),
        )
    )
    outer = ast.For(
        init=ast.VarDecl("__k", ast.INT, ast.IntLit(0)),
        cond=builder.expr("__k < __nblocks"),
        step=ast.Assign(ast.Ident("__k"), ast.IntLit(1), "+="),
        body=ast.Block(outer_body),
    )

    stmts: List[ast.Stmt] = list(header)
    stmts.append(_transfer_stmt(alloc_clauses))
    if resident_in:
        stmts.append(_transfer_stmt(resident_in))
    stmts.append(_transfer_stmt(first_block, signal=ast.IntLit(0)))
    stmts.append(outer)
    if resident_out:
        stmts.append(_transfer_stmt(resident_out))
    stmts.append(_transfer_stmt(free_clauses))
    return stmts
