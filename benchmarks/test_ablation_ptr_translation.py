"""Ablation: bid-field pointer translation versus linear buffer search.

Section V-B: a naive translation compares the pointer against every
buffer's base address — "worst time complexity linear to the number of
buffers" — while the 1-byte bid field makes it one table lookup.  This
benchmark measures both over a many-buffer arena.
"""

import time

from benchmarks.conftest import emit
from repro.experiments.report import render_table
from repro.runtime.arena import ArenaAllocator

N_BUFFERS = 128
DEREFS = 2000


def build_arena():
    arena = ArenaAllocator(chunk_bytes=1 << 10)
    objects = []
    for _ in range(N_BUFFERS):
        objects.append(arena.allocate(1 << 10))  # one object per buffer
    for bid, buf in enumerate(arena.buffers):
        arena.delta.register(bid, buf.cpu_base, 0x1000 + bid * (1 << 20), buf.size)
    return arena, objects


def test_bid_translation_vs_linear_search(benchmark):
    arena, objects = build_arena()
    # Dereference pointers into the *last* buffer: the linear search's
    # worst case.
    ptr = objects[-1].ptr

    def bid_translate():
        for _ in range(DEREFS):
            arena.delta.translate(ptr)

    benchmark.pedantic(bid_translate, rounds=3, iterations=1)

    start = time.perf_counter()
    total_comparisons = 0
    for _ in range(DEREFS):
        addr, comparisons = arena.delta.translate_linear(ptr)
        total_comparisons += comparisons
    linear_wall = time.perf_counter() - start

    assert addr == arena.delta.translate(ptr)
    per_deref = total_comparisons / DEREFS
    emit(
        render_table(
            ["scheme", "comparisons per deref", "notes"],
            [
                ["bid + delta table", "1 lookup", "O(1), Table I"],
                ["linear base search", f"{per_deref:.0f}",
                 f"worst case over {N_BUFFERS} buffers "
                 f"({linear_wall*1e6/DEREFS:.1f} us/deref wall)"],
            ],
        )
    )
    assert per_deref == N_BUFFERS
