"""Shared state for the benchmark harness.

Every figure/table benchmark pulls from one cached
:class:`~repro.experiments.harness.SuiteRunner`, so the twelve workloads
execute each variant once per session no matter how many figures ask for
them.  Benchmarks run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from repro.experiments.harness import SuiteRunner


@pytest.fixture(scope="session")
def runner():
    return SuiteRunner()


def emit(text: str) -> None:
    """Print a reproduced figure/table through pytest's capture."""
    print()
    print(text)
