"""End-to-end data integrity for streamed offloads.

Every announced fault in the model is self-detecting: the operation
visibly fails and the recovery ladder fires.  Real deployments are
dominated instead by *silent data corruption* — a DMA or kernel
completes "successfully" with wrong bytes.  This module is the runtime's
own detection layer: the :class:`IntegrityManager` keeps a deterministic
CRC-32 reference checksum for every COI device buffer (updated at each
write window and kernel output) and for every arena segment, verifies
them at well-defined points, and drives tiered repair when a checksum
disagrees.

Verification points and their costs:

* **pre-kernel-launch** — buffers a kernel is about to consume are
  re-checksummed (dirty-only in ``transfers`` mode, all referenced
  clause buffers in ``full`` mode);
* **post-read** — the host window of every ``read_buffer`` is compared
  byte-for-byte against the device source (and, in ``full`` mode, the
  device source against its reference first);
* **checkpoint commit** — ``full`` mode verifies resident buffers before
  a checkpoint is declared good;
* **background scrub** — ``full`` mode with ``scrub_interval > 0``
  periodically re-checksums everything resident on the device;
* **finalize** — ``full`` mode sweeps all remaining references once at
  end of run; in every mode, corruption records still pending after the
  sweep are counted as *SDC escapes*.

Checksum *generation* is free — the model places it inline in the DMA
engine and the kernel epilogue; only verification passes charge
simulated time, at ``verify_cost`` seconds per byte scanned.  Repair is
tiered: re-transfer of the corrupted window from the host copy, kernel
re-execution (bounded per buffer by ``max_reverify``), then checkpoint
restore — and :class:`~repro.errors.SilentDataCorruption` when every
tier is exhausted.  With ``integrity_mode="off"`` the manager keeps no
checksums and charges nothing: runs are bit-identical to a build without
this module, and injected silent faults flow straight to host output,
where the coverage matrix counts them as escapes.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.errors import SilentDataCorruption
from repro.faults.plan import FAULT_SITES, Fault
from repro.obs.tracer import NULL_TRACER
from repro.runtime.coi import DEVICE, HOST


def buffer_checksum(buf: np.ndarray) -> int:
    """Deterministic CRC-32 over a numpy buffer's raw bytes."""
    return zlib.crc32(buf.tobytes())


def arena_segment_checksum(arena, buf) -> int:
    """Deterministic CRC-32 over one arena segment's object payloads.

    Serialization is stable across engines and runs: objects in CPU
    address order, each contributing its offset, size, and sorted fields
    (floats via ``float.hex``, ints as decimal, shared pointers as
    ``ptr:addr:bid``).
    """
    parts: List[str] = []
    for addr in sorted(arena.objects):
        obj = arena.objects[addr]
        if obj.ptr.bid != buf.bid:
            continue
        parts.append(f"@{addr - buf.cpu_base}#{obj.size}")
        for name in sorted(obj.fields):
            value = obj.fields[name]
            if isinstance(value, bool):
                parts.append(f"{name}={int(value)}")
            elif isinstance(value, float):
                parts.append(f"{name}={value.hex()}")
            elif isinstance(value, int):
                parts.append(f"{name}={value}")
            elif hasattr(value, "addr") and hasattr(value, "bid"):
                parts.append(f"{name}=ptr:{value.addr}:{value.bid}")
            else:
                parts.append(f"{name}={value!r}")
    return zlib.crc32("|".join(parts).encode("utf-8"))


def _corruption_rng(site: str, fault: Fault, nbytes: int) -> np.random.Generator:
    """The deterministic byte-flip stream for one injected corruption.

    Seeded purely from plan-derived integers, so batch and tree engines
    corrupt (and therefore detect and repair) identically.
    """
    return np.random.default_rng((FAULT_SITES.index(site), fault.index, nbytes))


def _flip_window(raw: np.ndarray, site: str, fault: Fault):
    """Flip a severity-scaled handful of bytes in a uint8 window.

    Returns ``(positions, originals)`` — offsets into *raw* and the
    pre-corruption byte values.  Masks are drawn from [1, 255], so every
    flipped byte is guaranteed to differ from its original.
    """
    rng = _corruption_rng(site, fault, int(raw.nbytes))
    nflips = 1 + int(fault.severity * 7)
    positions = np.unique(rng.integers(0, raw.nbytes, size=nflips))
    masks = rng.integers(1, 256, size=len(positions)).astype(np.uint8)
    originals = raw[positions].copy()
    raw[positions] ^= masks
    return positions, originals


@dataclass
class CorruptionRecord:
    """Ground truth for one injected byte-level corruption.

    The injector keeps this record purely for *accounting and repair
    bookkeeping* — detection never peeks at it; detection is the
    checksum mismatch.  ``positions`` are absolute byte offsets into the
    owning array (device buffer, or the host destination of a d2h
    read); ``originals`` are the clean byte values, the same data a real
    runtime would recover from the host copy or a re-executed kernel.
    """

    fault: Fault
    #: Device buffer name, or None for a host-side (d2h) window.
    buffer: Optional[str]
    positions: np.ndarray
    originals: np.ndarray
    #: Unscaled payload bytes of the corrupted window (re-transfer cost).
    nbytes: float
    #: Compute seconds of the producing kernel (re-execution cost).
    kernel_seconds: float = 0.0
    status: str = "pending"


@dataclass
class ArenaCorruptionRecord:
    """Ground truth for one injected arena-object field corruption."""

    fault: Fault
    obj: object
    field_name: str
    original: object
    #: Unscaled bytes of the uploaded segment (re-transfer cost).
    nbytes: float
    status: str = "pending"


def _corrupt_numeric(value, fault: Fault):
    """A corrupted-but-finite replacement for a numeric field value.

    Floats get low-mantissa bits XOR-flipped (a finite input stays
    finite); ints get their low bit flipped.  Always differs from the
    input.
    """
    if isinstance(value, float):
        bits = struct.unpack("<q", struct.pack("<d", value))[0]
        bits ^= 0xFF << (8 * (fault.index % 3))
        return struct.unpack("<d", struct.pack("<q", bits))[0]
    return value ^ 1


class IntegrityManager:
    """Checksum bookkeeping, verification, and tiered repair for one run.

    Attached to the :class:`~repro.runtime.coi.CoiRuntime` by the
    Machine whenever a fault plan is configured or the policy enables a
    verifying ``integrity_mode``.  All hooks are cheap no-ops in
    ``"off"`` mode except for applying injected corruption and counting
    the resulting escapes.
    """

    def __init__(self, policy, stats, tracer=None):
        self.policy = policy
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.mode = policy.integrity_mode
        #: Reference CRC-32 per device buffer (full-buffer checksums).
        self._refs: Dict[str, int] = {}
        #: Buffers written since their last verification pass.
        self._dirty: Set[str] = set()
        #: Unresolved corruption records per device buffer.
        self._pending: Dict[str, List[CorruptionRecord]] = {}
        #: Unresolved host-side (d2h) and arena records.
        self._host_pending: List[CorruptionRecord] = []
        self._arena_pending: List[ArenaCorruptionRecord] = []
        #: Kernel re-executions consumed per buffer (max_reverify budget).
        self._reverifies: Dict[str, int] = {}
        self._last_scrub = 0.0
        self._finalized = False

    # -- mode predicates -----------------------------------------------------

    @property
    def verifying(self) -> bool:
        """Whether any checksum verification is enabled at all."""
        return self.mode != "off"

    @property
    def full(self) -> bool:
        """Whether kernel outputs, commits, and scrubs are covered too."""
        return self.mode == "full"

    # -- cost model ----------------------------------------------------------

    def _charge_verify(self, coi, nbytes: float, what: str) -> None:
        """Charge one verification pass over *nbytes* scaled bytes."""
        cost = self.policy.verify_cost * nbytes
        start = coi.clock.now
        if cost > 0:
            coi.clock.advance(cost)
        self.stats.verifications += 1
        self.stats.verify_seconds += cost
        if self.tracer.enabled and cost > 0:
            self.tracer.span(
                f"verify:{what}", HOST, start, coi.clock.now, nbytes=nbytes
            )

    def _note_detected(self, coi, site: str, where: str) -> None:
        """Record one detection: coverage matrix, metrics, trace instant."""
        self.stats.record_detected(site)
        if self.tracer.enabled:
            self.tracer.instant(
                f"integrity:detected:{site}", coi.clock.now, track=HOST,
                site=site, where=where,
            )
            self.tracer.metrics.counter(f"integrity.detected.{site}").inc()

    # -- corruption application (injection side) -----------------------------

    def _corrupt_device_window(
        self, coi, name: str, byte_start: int, byte_count: int,
        site: str, fault: Fault, kernel_seconds: float = 0.0,
    ) -> CorruptionRecord:
        """Flip bytes inside a device buffer window and record the truth."""
        raw = coi.device.arrays[name].view(np.uint8)
        window = raw[byte_start : byte_start + byte_count]
        positions, originals = _flip_window(window, site, fault)
        record = CorruptionRecord(
            fault=fault,
            buffer=name,
            positions=positions + byte_start,
            originals=originals,
            nbytes=float(byte_count),
            kernel_seconds=kernel_seconds,
        )
        self._pending.setdefault(name, []).append(record)
        return record

    # -- repair (detection side) ---------------------------------------------

    def _restore(self, coi, record: CorruptionRecord) -> None:
        """Put the clean bytes back into the corrupted device buffer."""
        raw = coi.device.arrays[record.buffer].view(np.uint8)
        raw[record.positions] = record.originals

    def _charge_retransfer(self, coi, name: str, nbytes: float, site: str):
        """Charge the PCIe cost of re-sending a window from the host copy."""
        with coi.injector_suspended():
            coi.raw_transfer(
                nbytes, to_device=True, sync=True,
                label=f"integrity:retransfer:{name}",
            )
        self.stats.silent_retransfers += 1
        self.stats.record_action(site, "retransfer")

    def _charge_reexecution(self, coi, name: str, record: CorruptionRecord):
        """Charge a kernel re-execution (or escalate past max_reverify).

        Each corrupted kernel output burns one entry of the buffer's
        ``max_reverify`` budget.  Past the budget, a checkpointing run
        restores instead (re-upload the buffer, then re-run the kernel);
        without checkpointing the corruption is unrecoverable and
        :class:`~repro.errors.SilentDataCorruption` propagates.
        """
        used = self._reverifies.get(name, 0) + 1
        self._reverifies[name] = used
        if used > self.policy.max_reverify:
            if coi.checkpoint is None:
                raise SilentDataCorruption(
                    f"kernel output {name!r} failed verification "
                    f"{used} times (max_reverify={self.policy.max_reverify}) "
                    f"and checkpointing is disabled"
                )
            buf = coi.device.arrays[name]
            self._charge_retransfer(coi, name, float(buf.nbytes), "kernel")
            self._schedule_rerun(coi, name, record.kernel_seconds)
            self.stats.record_action("kernel", "checkpoint_restore")
            self._reverifies[name] = 0
            return
        self._schedule_rerun(coi, name, record.kernel_seconds)
        self.stats.kernel_reverifies += 1
        self.stats.record_action("kernel", "reexecute")

    def _schedule_rerun(self, coi, name: str, kernel_seconds: float) -> None:
        """Occupy the device for one repair re-execution of a kernel."""
        if kernel_seconds <= 0:
            return
        event = coi.timeline.schedule(
            DEVICE, kernel_seconds, label=f"integrity:reexec:{name}",
            not_before=coi.clock.now,
        )
        coi.clock.wait_until(event)
        self.stats.recovery_seconds += kernel_seconds

    def _repair(self, coi, name: str, record: CorruptionRecord, where: str):
        """Run the repair tier for one detected device-side record."""
        self._restore(coi, record)
        site = record.fault.site
        if site == "kernel":
            self._charge_reexecution(coi, name, record)
        else:
            self._charge_retransfer(coi, name, record.nbytes, site)
        record.status = "corrected"
        self._note_detected(coi, site, where)

    def _verify_buffer(self, coi, name: str, where: str, charge: bool = True):
        """Checksum one device buffer against its reference and repair.

        A mismatch with no corruption record to attribute it to — or one
        that repair cannot clear — raises
        :class:`~repro.errors.SilentDataCorruption`: the integrity layer
        found damage it cannot explain or undo.
        """
        ref = self._refs.get(name)
        buf = coi.device.arrays.get(name)
        if ref is None or buf is None:
            return
        if charge:
            self._charge_verify(coi, buf.nbytes * coi.scale, where)
        if buffer_checksum(buf) == ref:
            return
        records = self._pending.pop(name, [])
        for record in records:
            self._repair(coi, name, record, where)
        if buffer_checksum(buf) != ref:
            raise SilentDataCorruption(
                f"checksum mismatch on device buffer {name!r} at {where} "
                f"could not be repaired ({len(records)} corruption records)"
            )
        self._dirty.discard(name)

    # -- COI hooks ------------------------------------------------------------

    def on_write(self, coi, name: str, start: int, count: int) -> None:
        """After ``write_buffer``: refresh the reference, maybe corrupt.

        A rewrite first *heals* any pending corruption of the buffer
        (read-modify-write verification against the host copy: bytes
        outside the incoming window are restored, bytes inside were just
        overwritten), so the refreshed reference can never bake stale
        corruption in.  Then the reference checksum is recomputed over
        the post-write content, and finally the h2d silent stream is
        consulted — corruption lands strictly *after* the reference, the
        way a wire flips bits after the DMA engine hashed them.
        """
        buf = coi.device.arrays[name]
        itemsize = buf.dtype.itemsize
        byte_start = start * itemsize
        byte_count = count * itemsize
        if self.verifying:
            for record in self._pending.pop(name, []):
                outside = (record.positions < byte_start) | (
                    record.positions >= byte_start + byte_count
                )
                raw = buf.view(np.uint8)
                raw[record.positions[outside]] = record.originals[outside]
                self._charge_retransfer(coi, name, record.nbytes, record.fault.site)
                record.status = "corrected"
                self._charge_verify(coi, buf.nbytes * coi.scale, "rewrite")
                self._note_detected(coi, record.fault.site, "rewrite")
            self._refs[name] = buffer_checksum(buf)
            self._dirty.add(name)
        if coi.injector is not None and byte_count > 0:
            fault = coi.injector.draw_silent(
                "h2d", device=coi.device_index_of(name)
            )
            if fault is not None:
                self._corrupt_device_window(
                    coi, name, byte_start, byte_count, "h2d", fault
                )

    def on_read(
        self, coi, src: str, src_start: int, count: int,
        into: np.ndarray, into_start: int,
    ) -> None:
        """After ``read_buffer``: maybe corrupt the host window, verify.

        The d2h silent stream corrupts the *host* destination (the
        transfer landed wrong).  In verifying modes the window is then
        compared byte-for-byte with the device source — ``full`` mode
        first re-checksums the source itself, which is where a kernel
        SDC on an output buffer is caught before it leaves the device —
        and a mismatching window is re-copied, with the re-transfer
        charged to the d2h channel.
        """
        buf = coi.device.arrays[src]
        window = into[into_start : into_start + count]
        if coi.injector is not None and window.nbytes > 0:
            fault = coi.injector.draw_silent(
                "d2h", device=coi.device_index_of(src)
            )
            if fault is not None:
                raw = window.view(np.uint8)
                positions, originals = _flip_window(raw, "d2h", fault)
                base = into_start * into.dtype.itemsize
                self._host_pending.append(
                    CorruptionRecord(
                        fault=fault, buffer=None,
                        positions=positions + base, originals=originals,
                        nbytes=float(window.nbytes),
                    )
                )
        if not self.verifying:
            return
        if self.full or src in self._dirty:
            # Verify the device source before trusting it as the repair
            # reference.  In transfers mode this covers dirty (written,
            # not yet verified) buffers, so an h2d corruption cannot
            # ride a direct write→read round trip out to the host.
            self._verify_buffer(coi, src, "post-read")
        expected = buf[src_start : src_start + count].astype(
            into.dtype, copy=False
        )
        self._charge_verify(coi, window.nbytes * coi.scale, "post-read")
        if window.tobytes() != expected.tobytes():
            into[into_start : into_start + count] = expected
            with coi.injector_suspended():
                coi.raw_transfer(
                    float(window.nbytes), to_device=False, sync=True,
                    label=f"integrity:retransfer:{src}",
                )
            self.stats.silent_retransfers += 1
            self.stats.record_action("d2h", "retransfer")
            for record in self._host_pending:
                if record.status == "pending":
                    record.status = "corrected"
                    self._note_detected(coi, "d2h", "post-read")

    def pre_kernel_verify(self, coi, names) -> None:
        """Before a kernel runs: verify the buffers it may consume.

        ``transfers`` mode checks the named clause buffers written since
        their last pass (the dirty set); ``full`` mode checks *every*
        referenced device buffer — a kernel body may legally touch any
        resident buffer, so full coverage cannot trust the clause list.
        This runs before the device body is interpreted: repair must
        land before corrupted input bytes can propagate into outputs.
        """
        if not self.verifying:
            return
        if self.full:
            targets = sorted(self._refs)
        else:
            targets = sorted(set(names) & self._dirty)
        for name in targets:
            self._verify_buffer(coi, name, "pre-kernel")

    def note_kernel_writes(self, coi) -> None:
        """After device-body interpretation: re-reference kernel outputs.

        The kernel epilogue hashes what it wrote (generation is free),
        so every tracked reference is refreshed from post-kernel
        content.  In ``full`` mode nothing is pending here (the
        pre-kernel pass repaired everything); in ``transfers`` mode a
        buffer that still carries pending corruption was consumed or
        overwritten by the kernel — its corruption propagated, so the
        record is counted as an escape and the buffer leaves custody.
        """
        if not self.verifying:
            return
        if self.full:
            # An out-only buffer is first *written* by the kernel itself,
            # so this is its earliest possible reference point; without it
            # a kernel SDC landing there would have no checksum to betray
            # it.  ``transfers`` mode only tracks host-written buffers.
            targets = sorted(set(self._refs) | set(coi.device.arrays))
        else:
            targets = sorted(self._refs)
        for name in targets:
            buf = coi.device.arrays.get(name)
            if buf is None:
                continue
            records = self._pending.pop(name, [])
            if records:
                for record in records:
                    if record.status == "pending":
                        record.status = "escaped"
                        self.stats.record_escaped(record.fault.site)
                del self._refs[name]
                self._dirty.discard(name)
                continue
            self._refs[name] = buffer_checksum(buf)

    def kernel_completed(self, coi, out_names, kernel_seconds: float) -> None:
        """After a successful launch: consult the kernel SDC stream.

        A drawn fault corrupts one output buffer (chosen by the fault's
        own per-site ordinal, so the choice is engine-independent); the
        record carries the kernel's compute seconds, which is what a
        repair re-execution costs.
        """
        if coi.injector is None:
            return
        candidates = sorted(
            name for name in set(out_names)
            if coi.device.arrays.get(name) is not None
            and coi.device.arrays[name].nbytes > 0
        )
        if not candidates:
            return
        fault = coi.injector.draw_silent(
            "kernel", device=coi.active_device_index
        )
        if fault is None:
            return
        name = candidates[fault.index % len(candidates)]
        buf = coi.device.arrays[name]
        self._corrupt_device_window(
            coi, name, 0, buf.nbytes, "kernel", fault,
            kernel_seconds=kernel_seconds,
        )

    def on_free(self, coi, name: str) -> None:
        """Before a buffer is freed: settle its integrity state.

        Verifying modes run a last checksum pass so corruption cannot
        silently leave custody with the buffer; in ``off`` mode pending
        records outlive the buffer and are counted as escapes at
        finalize.
        """
        if self.verifying and name in self._refs:
            self._verify_buffer(coi, name, "pre-free")
        self._refs.pop(name, None)
        self._dirty.discard(name)
        self._reverifies.pop(name, None)
        if not self.verifying:
            return
        # A verified buffer has no pending records left.  A buffer that
        # was never referenced (``transfers`` mode never tracks kernel
        # outputs) can still carry kernel-SDC records: its corruption
        # leaves custody with the free, so count the escapes now.
        for record in self._pending.pop(name, []):
            if record.status == "pending":
                record.status = "escaped"
                self.stats.record_escaped(record.fault.site)

    def on_realloc(self, coi, name: str) -> None:
        """Before ``alloc_buffer`` replaces an existing array object."""
        self.on_free(coi, name)

    # -- checkpoint / scrub / finalize ----------------------------------------

    def on_checkpoint_commit(self, coi) -> None:
        """Before a checkpoint is declared good: verify resident buffers.

        ``full`` mode only — a checkpoint that certifies corrupted
        device state would turn restore into a corruption amplifier.
        """
        if not self.full:
            return
        for name in sorted(self._refs):
            self._verify_buffer(coi, name, "checkpoint-commit")

    def maybe_scrub(self, coi) -> None:
        """Run the periodic background scrub when its interval elapsed."""
        if not self.full or self.policy.scrub_interval <= 0:
            return
        if coi.clock.now - self._last_scrub < self.policy.scrub_interval:
            return
        self.scrub(coi)

    def scrub(self, coi) -> None:
        """Re-checksum everything resident on the device, one pass.

        The pass is charged as one scan of all resident device bytes
        (``verify_cost × resident``); the per-buffer verifications it
        performs are part of that single charge.
        """
        resident = coi.resident_device_bytes()
        cost = self.policy.verify_cost * resident
        start = coi.clock.now
        if cost > 0:
            coi.clock.advance(cost)
        self.stats.scrubs += 1
        self.stats.scrub_seconds += cost
        for name in sorted(self._refs):
            self._verify_buffer(coi, name, "scrub", charge=False)
        self._last_scrub = coi.clock.now
        if self.tracer.enabled:
            if cost > 0:
                self.tracer.span(
                    "scrub", HOST, start, coi.clock.now, nbytes=resident
                )
            self.tracer.metrics.counter("integrity.scrubs").inc()

    def on_arena_upload(self, coi, arena, buf, nbytes: float) -> None:
        """After one arena segment upload: maybe flip a field, verify.

        The ``arena`` site is all-silent (its only kind is ``bitflip``),
        drawn through the injector's regular per-site stream.  A flip
        lands in one object's numeric field — chosen by the fault
        ordinal, engine-independent — after the segment checksum was
        taken, and verifying modes immediately detect it, restore the
        field, and charge a segment re-transfer.
        """
        candidates = [
            arena.objects[addr]
            for addr in sorted(arena.objects)
            if arena.objects[addr].ptr.bid == buf.bid
        ]
        fault = None
        if coi.injector is not None and candidates:
            fault = coi.injector.draw("arena", device=coi.active_device_index)
        ref = None
        if self.verifying and (fault is not None or self.policy.verify_cost > 0):
            ref = arena_segment_checksum(arena, buf)
        if self.verifying:
            self._charge_verify(coi, nbytes * coi.scale, f"arena:{buf.bid}")
        if fault is None:
            return
        target = None
        field_name = None
        for offset in range(len(candidates)):
            obj = candidates[(fault.index + offset) % len(candidates)]
            for fname in sorted(obj.fields):
                value = obj.fields[fname]
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    target, field_name = obj, fname
                    break
            if target is not None:
                break
        if target is None:
            # Nothing corruptible in the segment: the flip lands in
            # padding, which verification trivially clears.
            if self.verifying:
                self._note_detected(coi, "arena", "arena-upload")
            else:
                self.stats.record_escaped("arena")
            return
        original = target.fields[field_name]
        target.fields[field_name] = _corrupt_numeric(original, fault)
        if not self.verifying:
            self._arena_pending.append(
                ArenaCorruptionRecord(
                    fault=fault, obj=target, field_name=field_name,
                    original=original, nbytes=float(nbytes),
                )
            )
            return
        if arena_segment_checksum(arena, buf) == ref:
            raise SilentDataCorruption(
                f"arena segment {buf.bid} checksum failed to notice an "
                f"injected field flip ({field_name!r})"
            )
        target.fields[field_name] = original
        self._charge_retransfer(coi, f"arena:{buf.bid}", float(nbytes), "arena")
        self._note_detected(coi, "arena", "arena-upload")

    def finalize(self, coi) -> None:
        """End of run: final sweep, then count every straggler as escaped.

        Idempotent — workload drivers and the executor both call it.
        ``full`` mode verifies (and repairs) every remaining reference,
        which is what makes its zero-escape guarantee hold; records
        still pending after that left the layer's custody undetected and
        are charged to the coverage matrix as SDC escapes.
        """
        if self._finalized:
            return
        self._finalized = True
        if self.full:
            for name in sorted(self._refs):
                self._verify_buffer(coi, name, "finalize")
        for name, records in sorted(self._pending.items()):
            for record in records:
                if record.status == "pending":
                    record.status = "escaped"
                    self.stats.record_escaped(record.fault.site)
        self._pending.clear()
        for record in self._host_pending:
            if record.status == "pending":
                record.status = "escaped"
                self.stats.record_escaped(record.fault.site)
        for arecord in self._arena_pending:
            if arecord.status == "pending":
                arecord.status = "escaped"
                self.stats.record_escaped(arecord.fault.site)
        if self.tracer.enabled and self.stats.sdc_escapes:
            self.tracer.metrics.counter("integrity.sdc_escapes").inc(
                self.stats.sdc_escapes
            )
