#!/usr/bin/env python
"""Regenerate the paper's entire evaluation (Section VI).

Runs all twelve benchmarks in their three variants and prints every
figure and table: Figures 1, 4, 10, 11, 12, 13, 14, 15 and Tables I, II,
III.  Expect a couple of minutes of interpretation time.

Run:  python examples/paper_evaluation.py
"""

import time

from repro.experiments.figures import (
    figure1,
    figure4,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.harness import SuiteRunner
from repro.experiments.report import render_figure, render_table_data
from repro.experiments.tables import table1_demo, table2, table3


def main() -> None:
    runner = SuiteRunner()
    start = time.time()

    print(render_table_data(table1_demo()))
    print()

    for figure, log in (
        (figure1, False),
        (figure4, False),
        (figure10, False),
        (figure11, True),
        (figure12, False),
        (figure13, False),
        (figure14, True),
        (figure15, False),
    ):
        print(render_figure(figure(runner), log=log))
        print()

    print(render_table_data(table2(runner)))
    print()
    print(render_table_data(table3(runner)))
    print()
    print(f"full evaluation regenerated in {time.time() - start:.0f} s "
          f"(simulated machine, see DESIGN.md for substitutions)")


if __name__ == "__main__":
    main()
