"""The resilience policy: how the runtime responds to faults.

All durations are *simulated* seconds on the paper machine, sized
against its overheads (kernel launch ~1 ms, signal ~10 us): detection
timeouts are an order of magnitude above the healthy operation they
guard, and backoff starts well below them so a single retry is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tuning knobs for fault recovery.

    The default policy retries with exponential backoff, demotes
    un-streamed offloads that hit device OOM into streamed form, and
    falls back to host-CPU execution as the last resort — an offload
    under this policy completes unless a genuine (non-injected) error
    has no recovery path at all.
    """

    #: Re-issues allowed per operation after the first failed attempt.
    max_retries: int = 3
    #: First backoff pause; attempt ``k`` waits ``base * factor ** k``.
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    #: Host-side detection timeout for a stalled DMA transfer.
    transfer_timeout: float = 0.010
    #: Watchdog timeout for a hung kernel / dead persistent session.
    kernel_timeout: float = 0.050
    #: Re-poll timeout after a lost completion signal.
    signal_timeout: float = 0.020
    #: Link derating for a transfer that exhausted its retries and is
    #: pushed through anyway (retrained lanes, smaller TLPs).
    degraded_factor: float = 4.0
    #: Demote an un-streamed offload that hits device OOM to streamed
    #: form (block-granular transfers, two blocks resident per array).
    demote_on_oom: bool = True
    #: Allow abandoning a failed offload to host-CPU execution.
    host_fallback: bool = True
    #: Fixed migration cost charged before host fallback re-execution.
    fallback_penalty: float = 0.050

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.degraded_factor < 1.0:
            raise ValueError("degraded_factor must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Pause before re-issuing after failed attempt *attempt* (0-based)."""
        return self.backoff_base * self.backoff_factor ** attempt
