"""Tests for the command-line interface and the package-level API."""

import json
import pathlib

import numpy as np
import pytest

from repro import optimize_source, run_source
from repro.cli import main

SOURCE = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0;
    }
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


class TestPackageApi:
    def test_optimize_source_returns_streamed_text(self):
        optimized = optimize_source(SOURCE)
        assert "offload_transfer" in optimized
        assert "signal(0)" in optimized

    def test_run_source(self):
        result = run_source(
            SOURCE,
            arrays={
                "A": np.arange(16, dtype=np.float32),
                "B": np.zeros(16, dtype=np.float32),
            },
            scalars={"n": 16},
        )
        assert np.array_equal(result.array("B"), np.arange(16) * 2.0)

    def test_version(self):
        import repro

        assert repro.__version__

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestCompileCommand:
    def test_compile_prints_transformed(self, source_file, capsys):
        assert main(["compile", source_file]) == 0
        out = capsys.readouterr().out
        assert "offload_transfer" in out

    def test_compile_report_flag(self, source_file, capsys):
        main(["compile", source_file, "--report"])
        out = capsys.readouterr().out
        assert "// data-streaming: applied" in out

    def test_compile_disable_streaming(self, source_file, capsys):
        main(["compile", source_file, "--no-streaming"])
        out = capsys.readouterr().out
        assert "offload_transfer" not in out

    def test_compile_blocks_option(self, source_file, capsys):
        main(["compile", source_file, "--blocks", "7"])
        out = capsys.readouterr().out
        assert "__nblocks = 7" in out


class TestRunCommand:
    def test_run_reports_stats(self, source_file, capsys):
        code = main([
            "run", source_file,
            "--array", "A=64",
            "--array", "B=64:float:zeros",
            "--scalar", "n=64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated time" in out
        assert "kernel launches" in out

    def test_run_print_array(self, source_file, capsys):
        main([
            "run", source_file,
            "--array", "A=8:float:arange",
            "--array", "B=8:float:zeros",
            "--scalar", "n=8",
            "--print-array", "B",
        ])
        out = capsys.readouterr().out
        assert "B[:8]" in out
        assert "14." in out  # 7 * 2

    def test_run_optimized(self, source_file, capsys):
        code = main([
            "run", source_file, "--optimize",
            "--array", "A=64:float:ones",
            "--array", "B=64:float:zeros",
            "--scalar", "n=64",
        ])
        assert code == 0

    def test_bad_array_spec(self, source_file):
        with pytest.raises(SystemExit):
            main(["run", source_file, "--array", "A"])

    def test_bad_array_kind(self, source_file):
        with pytest.raises(SystemExit):
            main(["run", source_file, "--array", "A=8:float:fibonacci"])

    def test_bad_scalar_spec(self, source_file):
        with pytest.raises(SystemExit):
            main(["run", source_file, "--scalar", "n"])


class TestBenchCommand:
    def test_bench_single(self, capsys):
        assert main(["bench", "nn"]) == 0
        out = capsys.readouterr().out
        assert "nn" in out
        assert "ok" in out

    def test_bench_unknown_name(self):
        with pytest.raises(SystemExit):
            main(["bench", "nosuchbenchmark"])

    def test_bench_seed_flag(self, capsys):
        assert main(["bench", "nn", "--seed", "3"]) == 0
        assert "nn" in capsys.readouterr().out


class TestFaultsCommand:
    def test_campaign_contract_holds(self, capsys):
        code = main(["faults", "blackscholes", "--scenarios", "2", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign: 2 scenarios" in out
        assert "VIOLATION" not in out

    def test_summary_json(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "faults.json"
        code = main([
            "faults", "blackscholes",
            "--scenarios", "1", "--seed", "0", "--out", str(out_file),
        ])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["ok"] is True
        assert payload["seed"] == 0
        assert len(payload["outcomes"]) == 1
        assert payload["outcomes"][0]["workload"] == "blackscholes"

    def test_rate_override(self, capsys):
        code = main([
            "faults", "blackscholes",
            "--scenarios", "1", "--seed", "1", "--rate", "h2d=0.5",
        ])
        assert code == 0
        assert "faults injected" in capsys.readouterr().out

    def test_bad_rate_spec(self):
        with pytest.raises(SystemExit):
            main(["faults", "blackscholes", "--rate", "pcie=0.5"])

    def test_unknown_name(self):
        with pytest.raises(SystemExit):
            main(["faults", "nosuchbenchmark"])

    def test_policy_override_enables_device_resets(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "chaos.json"
        code = main([
            "faults", "blackscholes",
            "--scenarios", "2", "--seed", "3",
            "--rate", "device=0.1",
            "--policy", "checkpoint_interval=2",
            "--policy", "max_resets=64",
            "--out", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "VIOLATION" not in out
        payload = json.loads(out_file.read_text())
        assert payload["ok"] is True
        assert payload["policy"]["checkpoint_interval"] == 2
        assert payload["policy"]["max_resets"] == 64
        assert payload["totals"]["device_resets"] > 0
        assert payload["totals"]["host_fallbacks"] == 0
        assert "recovery_actions" in payload["totals"]

    def test_policy_override_backoff_max(self):
        code = main([
            "faults", "blackscholes",
            "--scenarios", "1", "--seed", "1",
            "--rate", "h2d=0.5",
            "--policy", "backoff_max=0.002",
        ])
        assert code == 0

    def test_policy_unknown_key_rejected(self):
        with pytest.raises(SystemExit, match="bad --policy spec"):
            main([
                "faults", "blackscholes",
                "--scenarios", "1", "--policy", "retry_budget=3",
            ])

    def test_policy_bad_value_rejected(self):
        with pytest.raises(SystemExit):
            main([
                "faults", "blackscholes",
                "--scenarios", "1", "--policy", "checkpoint_interval=lots",
            ])

    def test_policy_missing_value_rejected(self):
        with pytest.raises(SystemExit):
            main([
                "faults", "blackscholes",
                "--scenarios", "1", "--policy", "checkpoint_interval",
            ])

    def test_policy_invalid_combination_rejected(self):
        # backoff_max below backoff_base fails ResiliencePolicy validation.
        with pytest.raises(SystemExit, match="bad --policy combination"):
            main([
                "faults", "blackscholes",
                "--scenarios", "1", "--policy", "backoff_max=0.000001",
            ])

    def test_device_rate_requires_checkpointing(self):
        with pytest.raises(SystemExit, match="checkpoint_interval"):
            main([
                "faults", "blackscholes",
                "--scenarios", "1", "--rate", "device=0.1",
            ])

    def test_list_sites_prints_taxonomy(self, capsys):
        code = main(["faults", "--list-sites"])
        assert code == 0
        out = capsys.readouterr().out
        for needle in (
            "h2d:silent", "d2h:silent", "kernel:sdc",
            "bitflip", "silent", "announced", "reset",
        ):
            assert needle in out

    def test_silent_rate_keys_accepted(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "integrity.json"
        code = main([
            "faults", "blackscholes",
            "--scenarios", "1", "--seed", "3",
            "--rate", "h2d:silent=0.1",
            "--rate", "kernel:sdc=0.05",
            "--policy", "integrity_mode=full",
            "--policy", "checkpoint_interval=2",
            "--out", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "silent corruption:" in out
        payload = json.loads(out_file.read_text())
        assert payload["policy"]["integrity_mode"] == "full"
        totals = payload["totals"]
        assert totals["sdc_escapes"] == 0
        assert "coverage" in totals

    def test_bad_silent_rate_kind_rejected(self):
        with pytest.raises(SystemExit, match="bad --rate spec"):
            main(["faults", "blackscholes", "--rate", "h2d:sdc=0.5"])

    def test_bad_integrity_mode_rejected(self):
        with pytest.raises(SystemExit, match="bad --policy combination"):
            main([
                "faults", "blackscholes",
                "--scenarios", "1", "--policy", "integrity_mode=paranoid",
            ])


class TestRunFaultInjection:
    def test_inject_faults_reports_stats(self, source_file, capsys):
        code = main([
            "run", source_file, "--inject-faults", "--seed", "7",
            "--array", "A=64:float:ones",
            "--array", "B=64:float:zeros",
            "--scalar", "n=64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "recovery time" in out


class TestTraceCommand:
    ARGS = [
        "--array", "A=256:float:ones",
        "--array", "B=256:float:zeros",
        "--scalar", "n=256",
    ]

    def _validate(self, path):
        import json

        from repro.obs.export import validate_chrome_trace

        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload["traceEvents"]) == []
        return payload

    def test_trace_writes_valid_chrome_trace(self, source_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "trace", source_file, *self.ARGS,
            "--optimize", "--out", str(out), "--check",
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "makespan" in stdout
        assert "trace schema check: ok" in stdout
        payload = self._validate(out)
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert "X" in phases and "M" in phases

    def test_trace_metrics_snapshot(self, source_file, tmp_path):
        import json

        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = main([
            "trace", source_file, *self.ARGS,
            "--seed", "5", "--out", str(out), "--metrics", str(metrics),
        ])
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["provenance"]["seed"] == 5
        assert payload["counters"]["coi.kernel_launches"] >= 1
        assert payload["counters"]["coi.bytes_to_device"] > 0

    def test_trace_flamegraph_output(self, source_file, tmp_path):
        flame = tmp_path / "flame.txt"
        code = main([
            "trace", source_file, *self.ARGS,
            "--out", str(tmp_path / "trace.json"), "--flame", str(flame),
        ])
        assert code == 0
        lines = flame.read_text().splitlines()
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)

    def test_run_trace_flag(self, source_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "run", source_file, *self.ARGS, "--trace", str(out),
        ])
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        self._validate(out)

    def test_bench_trace_flag(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["bench", "nn", "--trace", str(out)]) == 0
        assert "trace written" in capsys.readouterr().out
        payload = self._validate(out)
        # one pid per (workload, variant) run, merged into one file
        pids = {
            e["pid"] for e in payload["traceEvents"] if e["ph"] != "M"
        }
        assert len(pids) > 1

    def test_faults_trace_flag(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "faults", "blackscholes", "--scenarios", "2", "--seed", "0",
            "--trace", str(out),
        ])
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        self._validate(out)


class TestTuneCommand:
    def test_tune_prints_model_choice(self, source_file, capsys):
        code = main([
            "tune", source_file,
            "--array", "A=256:float:ones",
            "--array", "B=256:float:zeros",
            "--scalar", "n=256",
            "--scale", "20000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "N* =" in out
        assert "profiled D=" in out
        assert "offload_transfer" in out


class TestParserEntry:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_stdin_source(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(SOURCE))
        assert main(["compile", "-"]) == 0
        assert "offload" in capsys.readouterr().out


class TestValidationErrorPaths:
    """Every rejected invocation must name the offending flag."""

    def test_invalid_engine_names_flag(self, source_file, capsys):
        with pytest.raises(SystemExit):
            main(["run", source_file, "--engine", "warp"])
        assert "--engine" in capsys.readouterr().err

    def test_run_devices_zero_names_flag(self, source_file):
        with pytest.raises(SystemExit, match="--devices"):
            main([
                "run", source_file, "--devices", "0",
                "--array", "A=8", "--array", "B=8:float:zeros",
                "--scalar", "n=8",
            ])

    def test_bench_devices_zero_names_flag(self):
        with pytest.raises(SystemExit, match="--devices"):
            main(["bench", "blackscholes", "--devices", "0"])

    def test_faults_devices_zero_names_flag(self):
        with pytest.raises(SystemExit, match="--devices"):
            main(["faults", "blackscholes", "--devices", "0"])

    def test_faults_jobs_zero_names_flag(self):
        with pytest.raises(SystemExit, match="--jobs"):
            main(["faults", "blackscholes", "--jobs", "0"])

    def test_unknown_policy_key_names_flag(self):
        with pytest.raises(SystemExit, match="--policy"):
            main(["faults", "blackscholes", "--policy", "warp_speed=9"])

    def test_bench_trace_with_jobs_names_both_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--trace requires --jobs 1"):
            main([
                "bench", "blackscholes", "--jobs", "2",
                "--trace", str(tmp_path / "t.json"),
            ])

    def test_faults_trace_with_jobs_names_both_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--trace requires --jobs 1"):
            main([
                "faults", "blackscholes", "--jobs", "2",
                "--trace", str(tmp_path / "t.json"),
            ])

    def test_bad_array_spec_names_spec(self, source_file):
        with pytest.raises(SystemExit, match="bad --array spec"):
            main(["run", source_file, "--array", "A=lots"])

    def test_bad_scalar_spec_names_spec(self, source_file):
        with pytest.raises(SystemExit, match="bad --scalar spec"):
            main(["run", source_file, "--scalar", "n=eight"])


class TestFaultsExitCodes:
    def test_partial_campaign_exits_with_distinct_code(self, monkeypatch):
        from repro.cli import EXIT_PARTIAL
        from repro.faults import campaign
        from tests.integration.test_campaign_jobs import _CrashAfterOne

        monkeypatch.setattr(campaign, "_POOL_CLS", _CrashAfterOne)
        code = main([
            "faults", "blackscholes", "nn",
            "--scenarios", "2", "--seed", "7", "--jobs", "2",
        ])
        assert code == EXIT_PARTIAL == 3

    def test_complete_campaign_exits_zero(self, capsys):
        assert main([
            "faults", "blackscholes", "--scenarios", "1", "--seed", "7",
        ]) == 0


class TestServiceCommands:
    def test_submit_unreachable_service(self, capsys):
        from repro.cli import EXIT_UNAVAILABLE

        code = main([
            "submit", "--port", "1", "--kind", "bench",
            "--workload", "blackscholes", "--timeout", "2",
        ])
        assert code == EXIT_UNAVAILABLE == 69
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one line, not a traceback
        assert "127.0.0.1:1" in err
        assert "connection refused" in err

    def test_submit_retries_connection_refused(self, capsys):
        from repro.cli import EXIT_UNAVAILABLE

        code = main([
            "submit", "--port", "1", "--kind", "bench",
            "--workload", "blackscholes", "--timeout", "2",
            "--retries", "2", "--retry-base", "0.01",
        ])
        assert code == EXIT_UNAVAILABLE
        err = capsys.readouterr().err
        # Three attempts total: two bounded-backoff retries in between.
        assert err.count("connection refused") == 3
        assert err.count("retrying in") == 2
        assert "attempt 2/3" in err and "attempt 3/3" in err

    def test_submit_retries_honor_server_hint(self, monkeypatch, capsys):
        # A backpressure reject carries the server's deterministic
        # retry_after hint; the retry delay honors it when it exceeds
        # the exponential base.
        from repro.service import server as client

        outcomes = [
            [{"event": "rejected", "reason": "backpressure",
              "depth": 9, "retry_after": 0.02}],
            [{"event": "result", "result": {"ok": True}},
             {"event": "done", "ok": True}],
        ]
        monkeypatch.setattr(
            client, "submit", lambda *a, **k: outcomes.pop(0)
        )
        slept = []
        import time as _time
        monkeypatch.setattr(_time, "sleep", slept.append)
        code = main([
            "submit", "--kind", "bench", "--workload", "blackscholes",
            "--retries", "1", "--retry-base", "0.001",
        ])
        assert code == 0
        assert slept == [0.02]  # the hint won over 0.001 * 2^0
        assert "retrying in 0.020s" in capsys.readouterr().err

    def test_submit_retries_validation(self):
        with pytest.raises(SystemExit, match="--retries"):
            main(["submit", "--kind", "bench", "--workload", "blackscholes",
                  "--retries", "-1"])
        with pytest.raises(SystemExit, match="--retry-base"):
            main(["submit", "--kind", "bench", "--workload", "blackscholes",
                  "--retry-base", "0"])

    def test_submit_run_requires_file(self):
        with pytest.raises(SystemExit, match="--file"):
            main(["submit", "--kind", "run"])

    def test_submit_invalid_workload_rejected_client_side(self):
        with pytest.raises(SystemExit, match="workload"):
            main(["submit", "--kind", "bench", "--workload", "nope"])

    def test_serve_negative_workers(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["serve", "--workers", "-1"])

    def test_serve_negative_grace_seconds(self):
        with pytest.raises(SystemExit, match="--grace-seconds"):
            main(["serve", "--grace-seconds", "-1"])

    def test_serve_sigterm_drains_and_exits_zero(self):
        # A real `repro serve` process must catch SIGTERM, drain, print
        # its final snapshot, and exit 0 — the contract init systems and
        # container runtimes rely on.
        import os
        import signal
        import subprocess
        import sys as _sys

        import repro

        src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                _sys.executable, "-m", "repro", "serve",
                "--port", "0", "--grace-seconds", "5", "--final-stats",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "campaign service listening" in banner
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        except Exception:
            proc.kill()
            raise
        assert proc.returncode == 0
        assert "campaign service drained and stopped" in err
        snapshot = json.loads(out)
        assert snapshot["draining"] is True
        assert snapshot["supervisor"]["restarts"] == 0

    def test_replay_trace_writes_deterministic_summary(self, tmp_path, capsys):
        from repro.service.traffic import TraceSpec, save_trace_spec

        # A run-only spec keeps the test cheap; byte-determinism across
        # worker counts and classes is covered in tests/service/.
        spec_path = tmp_path / "spec.json"
        save_trace_spec(str(spec_path), TraceSpec(
            seed=11, requests=6, classes=(("run", 1.0),), base_rate=4.0,
        ))
        out1, out2 = tmp_path / "s1.json", tmp_path / "s2.json"
        argv = ["replay-trace", "--spec", str(spec_path), "--out"]
        assert main(argv + [str(out1)]) == 0
        assert main(argv + [str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        payload = json.loads(out1.read_text())
        assert payload["schema"] == "repro.service.replay/1"
        out = capsys.readouterr().out
        assert "determinism digest" in out
        assert "replayed 6 arrivals" in out
