"""nn (Rodinia): k-nearest-neighbors over hurricane records.

Shape: each record is ``recsize`` packed floats, of which the distance
kernel reads only latitude and longitude — a strided access
``records[8*i + LAT]`` (Figure 8's second irregular pattern, "the loop
stride is a constant larger than 1, which is the case for benchmark nn").
Regularization reorders the two fields into dense arrays, which removes
the 6/8ths of the record bytes that were transferred but never used
("we remove unnecessary data transfer") and makes the loop vectorizable
and streamable.  Table II: streaming (1.24x) and regularization (1.23x).
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import OptimizationPlan
from repro.transforms.streaming import StreamingOptions
from repro.workloads.base import MiniCWorkload, Table2Row, input_rng

EXEC_RECORDS = 2048
PAPER_RECORDS = 200_000_000  # "2.0 * 10^8 points"
RECSIZE = 4  # floats per record; lat/lng live at offsets 0 and 1
QUERIES = 6  # nn evaluates several target locations over one record set

SOURCE = """
void main() {
    for (int q = 0; q < nq; q++) {
        float tlat = targets[2 * q];
        float tlng = targets[2 * q + 1];
#pragma omp parallel for
        for (int i = 0; i < nrecords; i++) {
            float lat = records[4 * i];
            float lng = records[4 * i + 1];
            float dlat = lat - tlat;
            float dlng = lng - tlng;
            distances[i] = sqrt(dlat * dlat + dlng * dlng);
        }
        float best = 1.0e30;
        for (int i = 0; i < nrecords; i++) {
            if (distances[i] < best) {
                best = distances[i];
            }
        }
        nearest[q] = best;
    }
}
"""


def make_arrays(seed=None):
    """Build the k-nearest neighbours benchmark's executed-scale input arrays."""
    rng = input_rng(seed, 31)
    return {
        "records": rng.random(EXEC_RECORDS * RECSIZE).astype(np.float32),
        "targets": rng.random(QUERIES * 2).astype(np.float32),
        "distances": np.zeros(EXEC_RECORDS, dtype=np.float32),
        "nearest": np.zeros(QUERIES, dtype=np.float32),
    }


def make() -> MiniCWorkload:
    """Construct the nn workload instance."""
    return MiniCWorkload(
        name="nn",
        source=SOURCE,
        table2=Table2Row(
            suite="Rodinia",
            paper_input="2.0 * 10^8 points",
            kloc=0.173,
            streaming=1.24,
            regularization=1.23,
        ),
        make_arrays=make_arrays,
        scalars={"nrecords": EXEC_RECORDS, "nq": QUERIES},
        sim_scale=PAPER_RECORDS / EXEC_RECORDS,
        output_arrays=["distances", "nearest"],
        plan=OptimizationPlan(
            streaming_options=StreamingOptions(num_blocks=20)
        ),
        description="k-NN distance kernel with strided record-field accesses",
    )
