"""Recursive-descent parser for MiniC.

The grammar is a practical subset of C sufficient for the paper's
benchmarks and transformed code: functions, structs, pointers, arrays,
the usual statements and expressions, and LEO/OpenMP pragmas.

Pragmas are line tokens produced by the lexer; their directive text is
re-tokenized and parsed by :func:`parse_pragma`.  A pragma written above a
``for`` loop is attached to that loop's ``pragmas`` list; an ``offload``
pragma above a ``{...}`` block produces an :class:`OffloadBlock`;
``offload_transfer`` / ``offload_wait`` become standalone
:class:`PragmaStmt` statements.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional

from repro.errors import ParseError, PragmaError
from repro.minic import ast_nodes as ast
from repro.minic.lexer import tokenize
from repro.minic.tokens import (
    EOF,
    FLOAT_LIT,
    IDENT,
    INT_LIT,
    KEYWORD,
    PRAGMA,
    STRING_LIT,
    Token,
)

_TYPE_KEYWORDS = {"int", "float", "double", "char", "void", "long"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}

# Binary operator precedence levels, lowest first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


@lru_cache(maxsize=256)
def _parse_cached(source: str) -> ast.Program:
    return _Parser(tokenize(source)).parse_program()


def parse(source: str) -> ast.Program:
    """Parse a full MiniC translation unit.

    Parses of identical source are cached; callers receive an
    independent clone, since transform passes mutate ASTs in place.
    (Errors are not cached — a failing parse re-raises naturally.)
    """
    return _parse_cached(source).clone()


def parse_expr(source: str) -> ast.Expr:
    """Parse a single expression (convenience for tests and builders)."""
    parser = _Parser(tokenize(source))
    expr = parser._expression()
    parser._expect_kind(EOF)
    return expr


def parse_pragma(text: str) -> ast.Pragma:
    """Parse the text of a pragma directive (without ``#pragma``)."""
    return _PragmaParser(text).parse()


class _TokenStream:
    """Shared cursor machinery for the statement and pragma parsers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != EOF:
            self._pos += 1
        return tok

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self._peek()
        if tok.kind != kind:
            return False
        return value is None or tok.value == value

    def _match(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self._peek()
        if not self._check(kind, value):
            want = value or kind
            raise ParseError(
                f"expected {want!r}, found {tok.value!r}", tok.line, tok.column
            )
        return self._advance()

    def _expect_kind(self, kind: str) -> Token:
        return self._expect(kind)


class _Parser(_TokenStream):
    """Parses translation units, statements and expressions."""

    # -- top level ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        decls: List[ast.Node] = []
        while not self._check(EOF):
            decls.append(self._top_level())
        return ast.Program(decls)

    def _top_level(self) -> ast.Node:
        if self._check(KEYWORD, "struct") and self._peek(2).kind == "{":
            return self._struct_def()
        base = self._type_spec()
        stars = 0
        while self._match("*"):
            stars += 1
        name = self._expect(IDENT).value
        typ: ast.Type = base
        for _ in range(stars):
            typ = ast.PointerType(typ)
        if self._check("("):
            return self._func_def(typ, name)
        decl = self._finish_var_decl(typ, name)
        self._expect(";")
        return ast.GlobalDecl(decl)

    def _struct_def(self) -> ast.StructDef:
        self._expect(KEYWORD, "struct")
        name = self._expect(IDENT).value
        self._expect("{")
        fields: List[ast.FieldDecl] = []
        while not self._check("}"):
            ftype = self._type_spec()
            while True:
                stars = 0
                while self._match("*"):
                    stars += 1
                fname = self._expect(IDENT).value
                t: ast.Type = ftype
                for _ in range(stars):
                    t = ast.PointerType(t)
                if self._check("["):
                    self._advance()
                    size = None if self._check("]") else self._expression()
                    self._expect("]")
                    t = ast.ArrayType(t, size)
                fields.append(ast.FieldDecl(fname, t))
                if not self._match(","):
                    break
            self._expect(";")
        self._expect("}")
        self._expect(";")
        return ast.StructDef(name, fields)

    def _func_def(self, return_type: ast.Type, name: str) -> ast.FuncDef:
        self._expect("(")
        params: List[ast.ParamDecl] = []
        if not self._check(")"):
            while True:
                if self._check(KEYWORD, "void") and self._peek(1).kind == ")":
                    self._advance()
                    break
                ptype = self._type_spec()
                stars = 0
                while self._match("*"):
                    stars += 1
                pname = self._expect(IDENT).value
                t: ast.Type = ptype
                for _ in range(stars):
                    t = ast.PointerType(t)
                if self._match("["):
                    self._expect("]")
                    t = ast.PointerType(t)
                params.append(ast.ParamDecl(pname, t))
                if not self._match(","):
                    break
        self._expect(")")
        if self._match(";"):
            return ast.FuncDef(name, return_type, params, None)
        body = self._block()
        return ast.FuncDef(name, return_type, params, body)

    # -- types -------------------------------------------------------------

    def _type_spec(self) -> ast.Type:
        tok = self._peek()
        if tok.kind == KEYWORD and tok.value in _TYPE_KEYWORDS:
            self._advance()
            if tok.value == "long" and self._check(KEYWORD, "long"):
                self._advance()
            return ast.BaseType("int" if tok.value == "long" else tok.value)
        if tok.kind == KEYWORD and tok.value == "struct":
            self._advance()
            name = self._expect(IDENT).value
            return ast.StructType(name)
        raise ParseError(f"expected a type, found {tok.value!r}", tok.line, tok.column)

    def _looks_like_type(self) -> bool:
        tok = self._peek()
        if tok.kind != KEYWORD:
            return False
        if tok.value in _TYPE_KEYWORDS:
            return True
        return tok.value == "struct" and self._peek(1).kind == IDENT

    # -- statements ----------------------------------------------------------

    def _block(self) -> ast.Block:
        self._expect("{")
        stmts: List[ast.Stmt] = []
        while not self._check("}"):
            stmts.append(self._statement())
        self._expect("}")
        return ast.Block(stmts)

    def _statement(self) -> ast.Stmt:
        if self._check(PRAGMA):
            return self._pragma_statement()
        tok = self._peek()
        if tok.kind == "{":
            return self._block()
        if tok.kind == KEYWORD:
            if tok.value == "if":
                return self._if_stmt()
            if tok.value == "for":
                return self._for_stmt([])
            if tok.value == "while":
                return self._while_stmt()
            if tok.value == "do":
                return self._do_while_stmt()
            if tok.value == "return":
                self._advance()
                value = None if self._check(";") else self._expression()
                self._expect(";")
                return ast.Return(value)
            if tok.value == "break":
                self._advance()
                self._expect(";")
                return ast.Break()
            if tok.value == "continue":
                self._advance()
                self._expect(";")
                return ast.Continue()
        if self._looks_like_type():
            decl = self._var_decl()
            self._expect(";")
            return decl
        stmt = self._expr_or_assign()
        self._expect(";")
        return stmt

    def _pragma_statement(self) -> ast.Stmt:
        standalone = (ast.OffloadTransferPragma, ast.OffloadWaitPragma)
        pragmas: List[ast.Pragma] = []
        while self._check(PRAGMA):
            tok = self._peek()
            try:
                pragma = parse_pragma(tok.value)
            except PragmaError as exc:
                raise ParseError(str(exc), tok.line, tok.column) from exc
            except ParseError as exc:
                # The directive sub-parser reports positions within the
                # directive text; re-anchor to the pragma's source line.
                raise ParseError(
                    f"in pragma: {exc}", tok.line, tok.column
                ) from exc
            if isinstance(pragma, standalone):
                if pragmas:
                    raise ParseError(
                        "offload_transfer/offload_wait cannot follow an "
                        "annotating pragma",
                        tok.line,
                        tok.column,
                    )
                self._advance()
                # A standalone pragma is its own statement; a bare ';' after
                # it (C requires a statement in if-branches) is consumed.
                self._match(";")
                return ast.PragmaStmt(pragma)
            self._advance()
            pragmas.append(pragma)
        if self._check(KEYWORD, "for"):
            return self._for_stmt(pragmas)
        if self._check("{"):
            offloads = [p for p in pragmas if isinstance(p, ast.OffloadPragma)]
            if len(offloads) != 1 or len(pragmas) != 1:
                raise ParseError("only a single offload pragma may annotate a block")
            return ast.OffloadBlock(offloads[0], self._block())
        tok = self._peek()
        raise ParseError(
            "pragma must be followed by a for loop or a block", tok.line, tok.column
        )

    def _if_stmt(self) -> ast.If:
        self._expect(KEYWORD, "if")
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        then = self._statement()
        other = None
        if self._match(KEYWORD, "else"):
            other = self._statement()
        return ast.If(cond, then, other)

    def _for_stmt(self, pragmas: List[ast.Pragma]) -> ast.For:
        self._expect(KEYWORD, "for")
        self._expect("(")
        init: Optional[ast.Stmt] = None
        if not self._check(";"):
            init = self._var_decl() if self._looks_like_type() else self._expr_or_assign()
        self._expect(";")
        cond = None if self._check(";") else self._expression()
        self._expect(";")
        step = None if self._check(")") else self._expr_or_assign()
        self._expect(")")
        body = self._statement()
        return ast.For(init, cond, step, body, pragmas)

    def _while_stmt(self) -> ast.While:
        self._expect(KEYWORD, "while")
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        body = self._statement()
        return ast.While(cond, body)

    def _do_while_stmt(self) -> ast.DoWhile:
        self._expect(KEYWORD, "do")
        body = self._statement()
        self._expect(KEYWORD, "while")
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        self._expect(";")
        return ast.DoWhile(body, cond)

    def _var_decl(self) -> ast.VarDecl:
        base = self._type_spec()
        stars = 0
        while self._match("*"):
            stars += 1
        name = self._expect(IDENT).value
        typ: ast.Type = base
        for _ in range(stars):
            typ = ast.PointerType(typ)
        return self._finish_var_decl(typ, name)

    def _finish_var_decl(self, typ: ast.Type, name: str) -> ast.VarDecl:
        while self._check("["):
            self._advance()
            size = None if self._check("]") else self._expression()
            self._expect("]")
            typ = ast.ArrayType(typ, size)
        init = None
        if self._match("="):
            init = self._expression()
        return ast.VarDecl(name, typ, init)

    def _expr_or_assign(self) -> ast.Stmt:
        expr = self._expression()
        tok = self._peek()
        if tok.kind in _ASSIGN_OPS:
            self._advance()
            value = self._expression()
            return ast.Assign(expr, value, tok.kind)
        if tok.kind in ("++", "--"):
            self._advance()
            op = "+=" if tok.kind == "++" else "-="
            return ast.Assign(expr, ast.IntLit(1), op)
        return ast.ExprStmt(expr)

    # -- expressions -----------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._ternary()

    def _ternary(self) -> ast.Expr:
        cond = self._binary(0)
        if self._match("?"):
            then = self._expression()
            self._expect(":")
            other = self._ternary()
            return ast.Cond(cond, then, other)
        return cond

    def _binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        left = self._binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self._peek().kind in ops:
            op = self._advance().kind
            right = self._binary(level + 1)
            left = ast.BinOp(op, left, right)
        return left

    def _unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind in ("-", "!", "*", "&", "+"):
            self._advance()
            operand = self._unary()
            if tok.kind == "+":
                return operand
            return ast.UnOp(tok.kind, operand)
        if tok.kind == "++" or tok.kind == "--":
            raise ParseError(
                "prefix ++/-- is only supported as a statement", tok.line, tok.column
            )
        if tok.kind == KEYWORD and tok.value == "sizeof":
            self._advance()
            self._expect("(")
            typ = self._type_spec()
            while self._match("*"):
                typ = ast.PointerType(typ)
            self._expect(")")
            return ast.SizeOf(typ)
        if tok.kind == "(" and self._is_cast_ahead():
            self._advance()
            typ = self._type_spec()
            while self._match("*"):
                typ = ast.PointerType(typ)
            self._expect(")")
            return ast.Cast(typ, self._unary())
        return self._postfix()

    def _is_cast_ahead(self) -> bool:
        nxt = self._peek(1)
        if nxt.kind == KEYWORD and nxt.value in _TYPE_KEYWORDS:
            return True
        return nxt.kind == KEYWORD and nxt.value == "struct"

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while True:
            if self._match("["):
                index = self._expression()
                self._expect("]")
                expr = ast.Subscript(expr, index)
            elif self._match("."):
                field = self._expect(IDENT).value
                expr = ast.Member(expr, field, arrow=False)
            elif self._match("->"):
                field = self._expect(IDENT).value
                expr = ast.Member(expr, field, arrow=True)
            else:
                return expr

    def _primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == INT_LIT:
            self._advance()
            return ast.IntLit(int(tok.value))
        if tok.kind == FLOAT_LIT:
            self._advance()
            return ast.FloatLit(float(tok.value))
        if tok.kind == STRING_LIT:
            self._advance()
            return ast.StringLit(tok.value)
        if tok.kind == IDENT:
            self._advance()
            if self._match("("):
                args: List[ast.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self._expression())
                        if not self._match(","):
                            break
                self._expect(")")
                return ast.Call(tok.value, args)
            return ast.Ident(tok.value)
        if tok.kind == "(":
            self._advance()
            expr = self._expression()
            self._expect(")")
            return expr
        raise ParseError(f"unexpected token {tok.value!r}", tok.line, tok.column)


class _PragmaParser(_TokenStream):
    """Parses the directive text of a ``#pragma`` line."""

    def __init__(self, text: str):
        super().__init__(tokenize(text))
        self._text = text

    def parse(self) -> ast.Pragma:
        head = self._peek()
        if head.kind != IDENT:
            raise PragmaError(f"malformed pragma: {self._text!r}")
        if head.value == "omp":
            return self._omp()
        if head.value == "offload":
            self._advance()
            return self._offload()
        if head.value == "offload_transfer":
            self._advance()
            return self._offload_transfer()
        if head.value == "offload_wait":
            self._advance()
            return self._offload_wait()
        raise PragmaError(f"unsupported pragma {head.value!r}")

    # -- OpenMP ---------------------------------------------------------------

    def _omp(self) -> ast.OmpParallelFor:
        self._expect(IDENT, "omp")
        self._expect(IDENT, "parallel")
        self._expect(KEYWORD, "for")
        pragma = ast.OmpParallelFor()
        while not self._check(EOF):
            name = self._expect(IDENT).value
            self._expect("(")
            if name == "private":
                while True:
                    pragma.private.append(self._expect(IDENT).value)
                    if not self._match(","):
                        break
            elif name == "reduction":
                op = self._advance().value
                self._expect(":")
                while True:
                    pragma.reduction.append((op, self._expect(IDENT).value))
                    if not self._match(","):
                        break
            elif name == "num_threads":
                pragma.num_threads = self._pragma_expr()
            elif name == "pipelined":
                pragma.pipelined = bool(int(self._expect(INT_LIT).value))
            else:
                raise PragmaError(f"unsupported omp clause {name!r}")
            self._expect(")")
        return pragma

    # -- LEO offload family -----------------------------------------------------

    def _target(self) -> int:
        self._expect(IDENT, "target")
        self._expect("(")
        self._expect(IDENT, "mic")
        self._expect(":")
        num = int(self._expect(INT_LIT).value)
        self._expect(")")
        return num

    def _offload(self) -> ast.OffloadPragma:
        pragma = ast.OffloadPragma(target=self._target())
        while not self._check(EOF):
            name = self._expect(IDENT).value
            if name in ("in", "out", "inout", "nocopy"):
                pragma.clauses.extend(self._transfer_clause(name))
            elif name == "signal":
                self._expect("(")
                pragma.signal = self._pragma_expr()
                self._expect(")")
            elif name == "wait":
                self._expect("(")
                pragma.wait = self._pragma_expr()
                self._expect(")")
            elif name == "shared":
                self._expect("(")
                while True:
                    pragma.shared.append(self._expect(IDENT).value)
                    if not self._match(","):
                        break
                self._expect(")")
            elif name == "persistent":
                self._expect("(")
                pragma.persistent = bool(int(self._expect(INT_LIT).value))
                self._expect(")")
            elif name == "session":
                self._expect("(")
                pragma.session = self._expect(IDENT).value
                self._expect(")")
            else:
                raise PragmaError(f"unsupported offload clause {name!r}")
        return pragma

    def _offload_transfer(self) -> ast.OffloadTransferPragma:
        pragma = ast.OffloadTransferPragma(target=self._target())
        while not self._check(EOF):
            name = self._expect(IDENT).value
            if name in ("in", "out", "inout", "nocopy"):
                pragma.clauses.extend(self._transfer_clause(name))
            elif name == "signal":
                self._expect("(")
                pragma.signal = self._pragma_expr()
                self._expect(")")
            else:
                raise PragmaError(f"unsupported offload_transfer clause {name!r}")
        return pragma

    def _offload_wait(self) -> ast.OffloadWaitPragma:
        pragma = ast.OffloadWaitPragma(target=self._target())
        self._expect(IDENT, "wait")
        self._expect("(")
        pragma.wait = self._pragma_expr()
        self._expect(")")
        return pragma

    def _transfer_clause(self, direction: str) -> List[ast.TransferClause]:
        """Parse ``direction(var[sec], var2 : modifiers)`` into clauses."""
        self._expect("(")
        names: List[ast.TransferClause] = []
        while True:
            var = self._expect(IDENT).value
            clause = ast.TransferClause(direction, var)
            if self._match("["):
                clause.start = self._pragma_expr()
                self._expect(":")
                clause.length = self._pragma_expr()
                self._expect("]")
            names.append(clause)
            if not self._match(","):
                break
        if self._match(":"):
            while not self._check(")"):
                mod = self._expect(IDENT).value
                self._expect("(")
                if mod == "length":
                    value = self._pragma_expr()
                    for clause in names:
                        clause.length = value
                elif mod == "into":
                    into = self._expect(IDENT).value
                    into_start = None
                    if self._match("["):
                        into_start = self._pragma_expr()
                        self._expect(":")
                        self._pragma_expr()  # section length mirrors clause length
                        self._expect("]")
                    for clause in names:
                        clause.into = into
                        clause.into_start = into_start
                elif mod == "alloc_if":
                    value = self._pragma_expr()
                    for clause in names:
                        clause.alloc_if = value
                elif mod == "free_if":
                    value = self._pragma_expr()
                    for clause in names:
                        clause.free_if = value
                else:
                    raise PragmaError(f"unsupported transfer modifier {mod!r}")
                self._expect(")")
        self._expect(")")
        return names

    def _pragma_expr(self) -> ast.Expr:
        """Parse an expression inside a pragma clause.

        Clause expressions stop at the first ``,``, ``:`` or unbalanced
        ``)``/``]`` so we delegate to the main expression parser over the
        remaining tokens.
        """
        sub = _Parser(self._tokens[self._pos :])
        expr = sub._expression()
        self._pos += sub._pos
        return expr
