"""Figure 11: speedups of the optimized over the unoptimized MIC versions.

Shape targets: 9 of 12 improve (paper: 9 of 12); dedup (hand-streamed),
bfs and hotspot are untouched; three benchmarks gain more than an order
of magnitude (paper: streamcluster, CG, cfd above 16x); the smallest gain
sits near the paper's 1.16x.
"""

from benchmarks.conftest import emit
from repro.experiments.figures import figure11
from repro.experiments.report import render_figure


def test_figure11_relative_speedups(benchmark, runner):
    fig = benchmark.pedantic(
        lambda: figure11(runner), rounds=1, iterations=1
    )
    emit(render_figure(fig, log=True))
    improved = {n: v for n, v in fig.series.items() if v > 1.005}
    assert len(improved) == 9
    assert {"streamcluster", "CG", "cfd"} == {
        n for n, v in improved.items() if v > 10
    }
    assert 1.1 <= min(improved.values()) <= 1.3
    for name in ("dedup", "bfs", "hotspot"):
        assert abs(fig.series[name] - 1.0) < 0.01
