"""Codegen tier: generated-source cache, fallback ladder, determinism.

The lru parse cache means two parses of the same source return distinct
AST clones; the kernel cache must still share one compiled function
across them (it keys on the kernel's printed form + transform
provenance, never on object identity).  Cached and freshly-compiled
kernels must be indistinguishable: identical outputs, identical op
counters, identical simulated time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minic.parser import parse
from repro.runtime import codegen
from repro.runtime.executor import Executor, Machine

KERNEL_SRC = """
void main() {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        double x = a[i] * s + b[i];
        if (x > 0.0) {
            x = x / (s + 2.0);
        }
        out[i] = x + sqrt(fabs(x));
    }
}
"""


def _arrays(seed=0, n=128):
    rng = np.random.default_rng(seed)
    return {
        "a": rng.standard_normal(n),
        "b": rng.standard_normal(n),
        "out": np.zeros(n),
    }


def _run(src, arrays, scalars, engine="codegen"):
    executor = Executor(parse(src), Machine(), engine=engine)
    result = executor.run(arrays=arrays, scalars=scalars)
    return executor, result


def test_cache_hit_across_parse_clones():
    """Distinct AST clones of one kernel share one compiled function."""
    codegen.clear_cache()
    arrays1 = _arrays(seed=1)
    ex1, _ = _run(KERNEL_SRC, arrays1, {"n": 128, "s": 1.5})
    assert ex1._codegen_stats["ran"] == 1
    assert ex1._codegen_stats["compiled"] == 1
    first = codegen.cache_stats()
    assert first["misses"] == 1

    arrays2 = _arrays(seed=1)
    ex2, _ = _run(KERNEL_SRC, arrays2, {"n": 128, "s": 1.5})
    assert ex2._codegen_stats["ran"] == 1
    assert ex2._codegen_stats["compiled"] == 0
    assert ex2._codegen_stats["cache_hits"] == 1
    second = codegen.cache_stats()
    assert second["misses"] == first["misses"]  # no recompile
    assert second["hits"] > first["hits"]
    assert arrays1["out"].tobytes() == arrays2["out"].tobytes()


def test_cache_misses_on_different_provenance():
    """Two identically-printed kernels from different transform
    pipelines must not share a generated function."""
    codegen.clear_cache()
    program1 = parse(KERNEL_SRC)
    program2 = parse(KERNEL_SRC)
    program2.comp_provenance = "streaming,thread_reuse"

    for program in (program1, program2):
        executor = Executor(program, Machine(), engine="codegen")
        executor.run(arrays=_arrays(), scalars={"n": 128, "s": 1.5})
        assert executor._codegen_stats["compiled"] == 1
    assert codegen.cache_stats()["misses"] == 2


def test_cache_misses_on_different_dtype_signature():
    codegen.clear_cache()
    arrays64 = _arrays()
    _run(KERNEL_SRC, arrays64, {"n": 128, "s": 1.5})
    arrays32 = {
        name: value.astype(np.float32) for name, value in _arrays().items()
    }
    _run(KERNEL_SRC, arrays32, {"n": 128, "s": 1.5})
    assert codegen.cache_stats()["misses"] == 2


def test_clear_cache_resets_stats():
    _run(KERNEL_SRC, _arrays(), {"n": 128, "s": 1.5})
    codegen.clear_cache()
    assert codegen.cache_stats() == {"hits": 0, "misses": 0}


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    s=st.floats(
        min_value=-4.0, max_value=4.0, allow_nan=False, allow_infinity=False
    ),
)
def test_cached_kernel_indistinguishable_from_fresh(seed, s):
    """Property: a cache-hit run is bit-identical to a fresh compile —
    same outputs, same op counters, same simulated time — and both
    match the tree walker."""
    scalars = {"n": 128, "s": s}

    codegen.clear_cache()
    fresh_arrays = _arrays(seed=seed)
    ex_fresh, fresh = _run(KERNEL_SRC, fresh_arrays, dict(scalars))
    assert ex_fresh._codegen_stats["compiled"] == 1

    cached_arrays = _arrays(seed=seed)
    ex_cached, cached = _run(KERNEL_SRC, cached_arrays, dict(scalars))
    assert ex_cached._codegen_stats["cache_hits"] == 1

    tree_arrays = _arrays(seed=seed)
    _, tree = _run(KERNEL_SRC, tree_arrays, dict(scalars), engine="tree")

    assert fresh_arrays["out"].tobytes() == cached_arrays["out"].tobytes()
    assert fresh_arrays["out"].tobytes() == tree_arrays["out"].tobytes()
    assert fresh.stats.ops.as_dict() == cached.stats.ops.as_dict()
    assert fresh.stats.ops.as_dict() == tree.stats.ops.as_dict()
    assert fresh.stats.total_time == cached.stats.total_time
    assert fresh.stats.total_time == tree.stats.total_time


def test_fallback_to_batch_for_indirect_index():
    """An index that is not the induction variable is outside the
    codegen tier; the ladder must fall through and still agree with the
    tree walker."""
    src = """
    void main() {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            out[i] = a[i] + a[0];
        }
    }
    """
    n = 64
    rng = np.random.default_rng(3)
    base = {"a": rng.standard_normal(n), "out": np.zeros(n)}

    arrays_cg = {k: v.copy() for k, v in base.items()}
    ex, _ = _run(src, arrays_cg, {"n": n})
    assert ex._codegen_stats["ran"] == 0
    verdicts = list(ex._codegen_static_cache.values())
    assert verdicts and not verdicts[0].eligible

    arrays_tree = {k: v.copy() for k, v in base.items()}
    _run(src, arrays_tree, {"n": n}, engine="tree")
    assert arrays_cg["out"].tobytes() == arrays_tree["out"].tobytes()


def test_engine_validation_lists_valid_engines():
    with pytest.raises(ValueError, match="codegen.*batch.*tree"):
        Executor(parse(KERNEL_SRC), Machine(), engine="warp")


def test_kernel_source_shows_generated_numpy():
    """The docs helper returns the emitted source for an eligible loop,
    including the dead-temp frees the performance model relies on."""
    from repro.minic import ast_nodes as ast
    from repro.minic.visitor import walk

    program = parse(KERNEL_SRC)
    loop = next(
        node
        for node in walk(program)
        if isinstance(node, ast.For)
        and any(
            isinstance(p, ast.OmpParallelFor)
            for p in getattr(node, "pragmas", [])
        )
    )
    src = codegen.kernel_source(loop, "")
    assert src.startswith("def __cg_kernel(")
    assert "rt.c_sqrt" in src
    assert "del " in src
    compile(src, "<kernel>", "exec")  # must be valid Python
