"""Use/def and liveness analysis for offload regions.

Apricot (the framework the paper builds on) "provides modules for liveness
analysis ... and insertion of offload primitives".  We reproduce the part
COMP needs: given a parallel loop, determine which variables are

* **live-in** — read inside the loop before any write (must be copied to
  the device: the ``in`` clauses),
* **defined** — written inside the loop (results the host may need back:
  the ``out`` clauses; read-and-written arrays become ``inout``),
* **private** — locals declared inside the loop body or listed in the
  ``private`` clause (no transfer at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.minic import ast_nodes as ast
from repro.minic.visitor import NodeVisitor, walk

#: Math builtins that look like identifiers in call position.
BUILTIN_FUNCTIONS = frozenset(
    {
        "exp",
        "log",
        "sqrt",
        "fabs",
        "pow",
        "sin",
        "cos",
        "floor",
        "ceil",
        "min",
        "max",
        "abs",
    }
)


@dataclass
class LivenessInfo:
    """Liveness facts about one loop."""

    live_in: Set[str] = field(default_factory=set)
    defined: Set[str] = field(default_factory=set)
    private: Set[str] = field(default_factory=set)
    arrays: Set[str] = field(default_factory=set)
    scalars: Set[str] = field(default_factory=set)

    @property
    def in_only(self) -> Set[str]:
        """Names read but never written: the in clauses."""
        return self.live_in - self.defined

    @property
    def out_only(self) -> Set[str]:
        """Names written but never read: the out clauses."""
        return self.defined - self.live_in

    @property
    def inout(self) -> Set[str]:
        """Names both read and written: the inout clauses."""
        return self.defined & self.live_in


class _UseDefCollector(NodeVisitor):
    """Collects reads, writes, private declarations and array names.

    The traversal is syntactic and flow-insensitive except for the
    read-before-write distinction on scalars: a scalar first assigned and
    then read within the same iteration is not live-in (it is effectively
    private), which is exactly the pattern of temporaries like srad's
    ``float Jc = J[k];``.
    """

    def __init__(self) -> None:
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.declared: Set[str] = set()
        self.arrays: Set[str] = set()
        self.written_first: Set[str] = set()

    def visit_VarDecl(self, node: ast.VarDecl) -> None:
        if node.init is not None:
            self.visit(node.init)
        self.declared.add(node.name)
        self.writes.add(node.name)
        self.written_first.add(node.name)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        target = node.target
        if isinstance(target, ast.Ident):
            if node.op != "=":
                self._read(target.name)
            if target.name not in self.reads:
                self.written_first.add(target.name)
            self.writes.add(target.name)
        elif isinstance(target, ast.Subscript):
            self._array_target(target, compound=node.op != "=")
        elif isinstance(target, ast.Member):
            base = target.base
            if isinstance(base, ast.Subscript):
                self._array_target(base, compound=node.op != "=")
            else:
                self.visit(base)
        else:
            self.visit(target)

    def _array_target(self, target: ast.Subscript, compound: bool) -> None:
        if isinstance(target.base, ast.Ident):
            name = target.base.name
            self.arrays.add(name)
            self.writes.add(name)
            if compound:
                self._read(name)
            elif name not in self.reads:
                # Written before any read: a region-local intermediate
                # (cfd's flux/factor) — its old contents need not be
                # transferred in.
                self.written_first.add(name)
        else:
            self.visit(target.base)
        self.visit(target.index)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.base, ast.Ident):
            self.arrays.add(node.base.name)
            self._read(node.base.name)
        else:
            self.visit(node.base)
        self.visit(node.index)

    def visit_Ident(self, node: ast.Ident) -> None:
        self._read(node.name)

    def visit_Call(self, node: ast.Call) -> None:
        for arg in node.args:
            self.visit(arg)

    def _read(self, name: str) -> None:
        if name not in self.written_first:
            self.reads.add(name)


def analyze_loop_liveness(loop: ast.For) -> LivenessInfo:
    """Compute liveness facts for *loop* (excluding the loop variable)."""
    collector = _UseDefCollector()
    collector.visit(loop.body)

    loop_locals = set(collector.declared)
    induction = set()
    if isinstance(loop.init, ast.VarDecl):
        induction.add(loop.init.name)
    elif isinstance(loop.init, ast.Assign) and isinstance(
        loop.init.target, ast.Ident
    ):
        induction.add(loop.init.target.name)

    for pragma in loop.pragmas:
        if isinstance(pragma, ast.OmpParallelFor):
            loop_locals.update(pragma.private)

    # The loop bound/condition names are live-in scalars too (needed on the
    # device to run the loop), except the induction variable itself.
    bound_reads: Set[str] = set()
    for expr in (loop.cond,):
        if expr is not None:
            bound_reads.update(
                n.name for n in walk(expr) if isinstance(n, ast.Ident)
            )

    hidden = loop_locals | induction | BUILTIN_FUNCTIONS
    live_in = (collector.reads | bound_reads) - hidden
    defined = collector.writes - hidden

    return LivenessInfo(
        live_in=live_in,
        defined=defined,
        private=loop_locals,
        arrays=collector.arrays - hidden,
        scalars=(live_in | defined) - collector.arrays,
    )
