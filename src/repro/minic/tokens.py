"""Token definitions for the MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds. Operators and punctuation use their literal spelling as the
# kind, which keeps the parser readable (``self._expect("(")``).
IDENT = "IDENT"
INT_LIT = "INT_LIT"
FLOAT_LIT = "FLOAT_LIT"
STRING_LIT = "STRING_LIT"
KEYWORD = "KEYWORD"
PRAGMA = "PRAGMA"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "int",
        "float",
        "double",
        "char",
        "long",
        "void",
        "struct",
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "sizeof",
    }
)

# Multi-character operators must be listed before their prefixes so the
# lexer performs maximal munch.
OPERATORS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "->",
    "<<",
    ">>",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of the module-level kind constants or a literal
    operator spelling; ``value`` is the source text (for pragmas, the full
    directive text after ``#pragma``).
    """

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.value!r}, {self.line}:{self.column})"
