"""Segmented arena allocation for shared pointer-based structures (§V-A).

The paper's buffer-allocation strategy: "we create one buffer with a
predefined size at the beginning.  When the buffer is full, we create
another one of the same size to hold new objects."  Small structures use
one modest buffer; large structures grow buffer by buffer up to the whole
device memory; nothing is ever moved, so pointers into a buffer stay valid
and each buffer can be DMA-copied to the device wholesale.

Objects are allocated bump-pointer style inside the current buffer and
registered by CPU address so that simulated dereferences can find their
payloads.  Pointer fields hold :class:`~repro.runtime.smartptr.SharedPtr`
values; scalar fields hold numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import DeviceOutOfMemory, PointerTranslationError, RuntimeFault
from repro.obs.tracer import NULL_TRACER
from repro.runtime.coi import CoiRuntime
from repro.runtime.smartptr import MAX_BUFFERS, DeltaTable, SharedPtr

#: Simulated CPU virtual-address stride between arena buffers; generous so
#: buffers never overlap.
_CPU_REGION_STRIDE = 1 << 40
_CPU_REGION_BASE = 1 << 44
_MIC_REGION_BASE = 1 << 20


@dataclass
class ArenaBuffer:
    """One fixed-size arena segment."""

    bid: int
    cpu_base: int
    size: int
    used: int = 0

    @property
    def free(self) -> int:
        """Bytes still unallocated in this segment."""
        return self.size - self.used


@dataclass
class SharedObject:
    """One object allocated in an arena: payload fields + its pointer."""

    ptr: SharedPtr
    size: int
    fields: Dict[str, object] = field(default_factory=dict)


class ArenaAllocator:
    """The paper's segmented shared-memory allocator."""

    #: Observability sink, replaced by the owning Machine's tracer.
    tracer = NULL_TRACER

    def __init__(self, chunk_bytes: int = 64 << 20):
        if chunk_bytes <= 0:
            raise ValueError("chunk size must be positive")
        self.chunk_bytes = chunk_bytes
        self.buffers: List[ArenaBuffer] = []
        self.objects: Dict[int, SharedObject] = {}  # by CPU address
        self.delta = DeltaTable()
        self.alloc_count = 0
        self._copied_bids: set = set()
        #: Device bytes each copied buffer occupies (full or used size,
        #: per the copy_full_buffers knob) — what a rebuild re-uploads.
        self._copied_nbytes: Dict[int, int] = {}
        #: Bumped on every device-side rebuild; pointers translated under
        #: an old generation were validated against a dead device image.
        self.generation = 0

    # -- allocation -----------------------------------------------------------

    def _new_buffer(self, at_least: int) -> ArenaBuffer:
        if len(self.buffers) >= MAX_BUFFERS:
            raise RuntimeFault(
                f"arena exceeded {MAX_BUFFERS} buffers (bid is one byte): "
                f"cannot place a {at_least}-byte object after "
                f"{self.alloc_count} allocations totalling "
                f"{self.total_used} bytes"
            )
        size = max(self.chunk_bytes, at_least)
        bid = len(self.buffers)
        buf = ArenaBuffer(
            bid=bid,
            cpu_base=_CPU_REGION_BASE + bid * _CPU_REGION_STRIDE,
            size=size,
        )
        self.buffers.append(buf)
        return buf

    def allocate(self, size: int, **fields) -> SharedObject:
        """Allocate one shared object of *size* bytes."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if not self.buffers or self.buffers[-1].free < size:
            self._new_buffer(size)
        buf = self.buffers[-1]
        addr = buf.cpu_base + buf.used
        buf.used += size
        self.alloc_count += 1
        obj = SharedObject(ptr=SharedPtr(addr, buf.bid), size=size, fields=dict(fields))
        self.objects[addr] = obj
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.counter("arena.allocations").inc()
            metrics.histogram("arena.object_bytes").observe(float(size))
            metrics.gauge("arena.reserved_bytes").set(self.total_reserved)
        return obj

    @property
    def total_used(self) -> int:
        """Bytes handed out across all buffers."""
        return sum(b.used for b in self.buffers)

    @property
    def total_reserved(self) -> int:
        """Bytes reserved across all buffers."""
        return sum(b.size for b in self.buffers)

    # -- device copy -------------------------------------------------------------

    def copy_to_device(
        self, coi: CoiRuntime, copy_full_buffers: bool = True
    ) -> None:
        """Bulk-DMA every arena buffer to the device and build the deltas.

        The paper copies "entire data structures (i.e., entire preallocated
        buffers)"; *copy_full_buffers*=False copies only the used bytes —
        an ablation knob.
        """
        for buf in self.buffers:
            mic_base = _MIC_REGION_BASE + buf.bid * _CPU_REGION_STRIDE
            if buf.bid not in self.delta:
                self.delta.register(buf.bid, buf.cpu_base, mic_base, buf.size)
            nbytes = buf.size if copy_full_buffers else buf.used
            self._allocate_resilient(coi, f"arena:{buf.bid}", nbytes)
            coi.raw_transfer(
                nbytes, to_device=True, label=f"arena:{buf.bid}"
            )
            if coi.integrity is not None:
                coi.integrity.on_arena_upload(coi, self, buf, nbytes)
            self._copied_bids.add(buf.bid)
            self._copied_nbytes[buf.bid] = nbytes
            if self.tracer.enabled:
                metrics = self.tracer.metrics
                metrics.counter("arena.buffers_copied").inc()
                metrics.counter("arena.bytes_copied").inc(float(nbytes))

    def rebuild_on_device(self, coi: CoiRuntime) -> int:
        """Rebuild the device image after a full device reset.

        Every previously copied buffer is re-allocated and re-uploaded
        wholesale (the reset freed the device memory accounting along
        with the data), and its augmented-pointer delta is re-derived
        for the fresh placement.  Returns the number of buffers rebuilt.
        The caller runs this with injection suspended — recovery cannot
        recursively fault.
        """
        rebuilt = 0
        for buf in self.buffers:
            if buf.bid not in self._copied_bids:
                continue
            nbytes = self._copied_nbytes.get(buf.bid, buf.size)
            mic_base = _MIC_REGION_BASE + buf.bid * _CPU_REGION_STRIDE
            coi.device_memory.allocate(f"arena:{buf.bid}", nbytes)
            coi.raw_transfer(
                nbytes, to_device=True, label=f"arena:{buf.bid}~rebuild"
            )
            self.delta.refresh(buf.bid, buf.cpu_base, mic_base)
            rebuilt += 1
        self.generation += 1
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.counter("arena.rebuilds").inc()
            metrics.counter("arena.buffers_rebuilt").inc(rebuilt)
            metrics.gauge("arena.generation").set(self.generation)
        return rebuilt

    @staticmethod
    def _allocate_resilient(coi: CoiRuntime, name: str, nbytes: int) -> None:
        """Allocate device memory for an arena buffer, riding out an
        injected OOM (back off once, re-issue with injection suspended).
        A genuine capacity OOM still propagates — arena buffers cannot be
        streamed, so there is no demotion path for them."""
        try:
            coi.device_memory.allocate(name, nbytes)
        except DeviceOutOfMemory as exc:
            if not exc.injected or coi.resilience is None:
                raise
            pause = coi.resilience.backoff(0)
            coi.clock.advance(pause)
            stats = coi.fault_stats
            if stats is not None:
                stats.backoff_seconds += pause
                stats.retries += 1
                stats.record_action("alloc", "retry")
            with coi.injector_suspended():
                coi.device_memory.allocate(name, nbytes)

    def free_on_device(self, coi: CoiRuntime) -> None:
        """Release the device copies of every buffer."""
        for buf in self.buffers:
            if buf.bid in self._copied_bids:
                coi.device_memory.free(f"arena:{buf.bid}")
        self._copied_bids.clear()
        self._copied_nbytes.clear()

    # -- dereference -----------------------------------------------------------------

    def deref(self, ptr: SharedPtr, on_mic: bool = False) -> SharedObject:
        """Follow a shared pointer, on the host or on the coprocessor.

        On the MIC the access requires the pointee's buffer to have been
        copied; translation is the O(1) bid + delta scheme.  No per-access
        state check is needed ("our method does not need to check its
        state, since the entire object has been copied").
        """
        if on_mic:
            if ptr.bid not in self._copied_bids:
                raise PointerTranslationError(
                    f"buffer {ptr.bid} not resident on the device"
                )
            self.delta.translate(ptr)  # raises if unregistered
        obj = self.objects.get(ptr.addr)
        if obj is None:
            raise PointerTranslationError(f"no object at address {ptr.addr:#x}")
        return obj
