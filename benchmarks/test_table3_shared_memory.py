"""Table III: the shared-memory mechanism versus Intel MYO.

Shape targets: ferret's 80,298 runtime allocations exceed MYO's limits
(the paper: "cannot run correctly using Intel MYO") while the arena
handles them; the measured arena-over-MYO speedups land near the paper's
7.81x (ferret) and 1.16x (freqmine); the static allocation-site counts
match exactly (19 and 7).
"""

from benchmarks.conftest import emit
from repro.experiments.report import render_table_data
from repro.experiments.tables import table3


def test_table3_shared_memory(benchmark, runner):
    data = benchmark.pedantic(
        lambda: table3(runner), rounds=1, iterations=1
    )
    emit(render_table_data(data))
    rows = {row[0]: row for row in data.rows}
    assert rows["ferret"][1:3] == ["19", "80298"]
    assert rows["freqmine"][1:3] == ["7", "912"]
    assert "fails" in rows["ferret"][4]
    assert 5.0 < float(rows["ferret"][3]) < 12.0  # paper: 7.81x
    assert 1.05 < float(rows["freqmine"][3]) < 1.4  # paper: 1.16x
