"""Regularization of irregular memory accesses (Section IV).

Two rewrites, matching Figures 7 and 8 of the paper:

* **Array reordering** (:func:`reorder_arrays`) — for an unguarded
  irregular read like ``A[B[i]]`` or a strided ``A[k * i]``, create a new
  array that is "a permutation of the original array ... sorted according
  to the access order in the original loop": a gather loop
  ``A__r[i] = A[B[i]]`` runs before the main loop (on the host, where the
  whole array lives), and the main loop's access becomes the unit-stride
  ``A__r[i]``.  Irregular *writes* get the symmetric scatter-back loop
  after the main loop.  Accesses "guarded by any branch" are left alone
  (the paper's safety rule).

* **Loop splitting** (:func:`split_loop`) — for loops that perform their
  irregular accesses "at the beginning of each iteration" (srad), split
  the body at the last irregular statement: the first loop keeps the
  irregular prefix, the second loop is fully regular and thereby
  vectorizable and streamable.  Loop-local scalars consumed by the suffix
  are re-computed there when their definitions are regular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LegalityError
from repro.analysis.array_access import (
    AccessKind,
    ArrayAccess,
    classify_accesses,
    loop_variable,
)
from repro.analysis.liveness import analyze_loop_liveness
from repro.analysis.offload import loop_bound
from repro.minic import ast_nodes as ast
from repro.minic import builder
from repro.minic.visitor import (
    NodeTransformer,
    NodeVisitor,
    clone,
    get_pragma,
    walk,
)
from repro.transforms.base import TransformReport, replace_statement

_IRREGULAR_READ_KINDS = {AccessKind.INDIRECT, AccessKind.NONLINEAR}


def _index_is_rewritable(
    index: ast.Expr, var: str, bindings: Optional[Dict[str, int]]
) -> bool:
    """The gather loop can only evaluate indexes built from the loop
    variable, known constants, and arrays — an index using an inner-loop
    variable (CG's ``x[colidx[j]]`` with j from the row loop) cannot be
    hoisted in front of the outer loop."""
    bindings = bindings or {}
    array_bases = {
        n.base.name
        for n in walk(index)
        if isinstance(n, ast.Subscript) and isinstance(n.base, ast.Ident)
    }
    for node in walk(index):
        if isinstance(node, ast.Ident) and node.name not in array_bases:
            if node.name != var and node.name not in bindings:
                return False
    return True


def _tiled_arrays(accesses: List[ArrayAccess]) -> set:
    """Arrays whose strided accesses jointly cover every element.

    ``points[4*i]`` ... ``points[4*i+3]`` is a *tile*: the loop touches the
    whole array contiguously, so reordering would copy without removing
    any transfer or improving locality.  An array is tiled when its
    accesses share one coefficient ``a`` and their constant offsets cover
    all residues ``0..a-1``.
    """
    by_array: Dict[str, List[ArrayAccess]] = {}
    for access in accesses:
        if access.kind is AccessKind.AFFINE and access.linear is not None:
            by_array.setdefault(access.array, []).append(access)
    tiled = set()
    for array, accs in by_array.items():
        coeffs = {a.linear.coeff for a in accs}
        if len(coeffs) != 1:
            continue
        coeff = coeffs.pop()
        residues = {a.linear.const % coeff for a in accs if coeff > 1}
        if coeff > 1 and residues == set(range(coeff)):
            tiled.add(array)
    return tiled


def _irregular_targets(
    loop: ast.For, bindings: Optional[Dict[str, int]]
) -> List[ArrayAccess]:
    """Unguarded irregular accesses eligible for reordering."""
    var = loop_variable(loop)
    accesses = classify_accesses(loop, bindings)
    tiled = _tiled_arrays(accesses)
    result = []
    for access in accesses:
        if access.guarded:
            continue
        if not _index_is_rewritable(access.index, var, bindings):
            continue
        if access.kind in _IRREGULAR_READ_KINDS:
            result.append(access)
        elif (
            access.kind is AccessKind.AFFINE
            and abs(access.linear.coeff) > 1
            and access.array not in tiled
        ):
            result.append(access)
    return result


def _loops_inside_device_regions(program: ast.Program) -> set:
    """ids of For nodes already inside an offloaded block or loop."""
    inside: set = set()
    for node in walk(program):
        body = None
        if isinstance(node, ast.OffloadBlock):
            body = node.body
        elif isinstance(node, ast.For) and get_pragma(node, ast.OffloadPragma):
            body = node.body
        if body is not None:
            for inner in walk(body):
                if isinstance(inner, ast.For):
                    inside.add(id(inner))
    return inside


# ==========================================================================
# Array reordering
# ==========================================================================


class _AccessRewriter(NodeTransformer):
    """Replaces ``A[idx]`` matches with ``A__rK[i]`` by structural equality."""

    def __init__(self, replacements: Dict[Tuple[str, str], str], var: str):
        # keyed by (array name, printed index) to match structurally equal sites
        self.replacements = replacements
        self.var = var
        self.rewritten = 0

    def visit_Subscript(self, node: ast.Subscript) -> ast.Node:
        self.generic_visit(node)
        if isinstance(node.base, ast.Ident):
            key = (node.base.name, _index_key(node.index))
            new_name = self.replacements.get(key)
            if new_name is not None:
                self.rewritten += 1
                return ast.Subscript(ast.Ident(new_name), ast.Ident(self.var))
        return node


def _index_key(index: ast.Expr) -> str:
    from repro.minic.printer import to_source

    return to_source(index)


def reorder_arrays(
    program: ast.Program,
    loop: Optional[ast.For] = None,
    bindings: Optional[Dict[str, int]] = None,
) -> TransformReport:
    """Apply the Figure 8 array-reordering rewrite in place."""
    report = TransformReport(name="regularization:reorder", applied=False)
    target = loop if loop is not None else _first_reorderable_loop(program, bindings)
    if target is None:
        report.reason = "no loop with unguarded irregular accesses"
        return report

    var = loop_variable(target)
    bound = loop_bound(target)
    irregular = _irregular_targets(target, bindings)
    if not irregular:
        report.reason = "no unguarded irregular accesses in the loop"
        return report

    # One gather array per distinct (array, index expression) site.
    sites: Dict[Tuple[str, str], ArrayAccess] = {}
    for access in irregular:
        sites.setdefault((access.array, _index_key(access.index)), access)

    replacements: Dict[Tuple[str, str], str] = {}
    gather_stmts: List[ast.Stmt] = []
    scatter_stmts: List[ast.Stmt] = []
    counter = 0
    reads_replaced: Set[str] = set()
    writes_replaced: Set[str] = set()
    for (array, key), access in sites.items():
        new_name = f"{array}__r{counter}"
        counter += 1
        replacements[(array, key)] = new_name
        decl = ast.VarDecl(
            new_name,
            ast.ArrayType(ast.FLOAT, clone(bound)),
        )
        gather_stmts.append(decl)
        if access.is_write:
            writes_replaced.add(new_name)
            scatter_stmts.append(_permute_loop(var, bound, access, new_name, scatter=True))
        else:
            reads_replaced.add(new_name)
            gather_stmts.append(_permute_loop(var, bound, access, new_name, scatter=False))

    rewriter = _AccessRewriter(replacements, var)
    rewriter.visit(target.body)

    _update_clauses_after_reorder(
        target, bound, replacements, reads_replaced, writes_replaced, bindings
    )

    # Hoist the gather loops out of enclosing loops that do not modify the
    # gathered data (nn runs one gather for many query kernels).  Scatter
    # loops must stay with the target loop.
    hoist_before = _hoist_point(program, target, sites, var, bound)
    if hoist_before is not None and not scatter_stmts:
        if not replace_statement(program, hoist_before, gather_stmts + [hoist_before]):
            raise LegalityError("hoist point not found in the program body")
    else:
        new_stmts = gather_stmts + [target] + scatter_stmts
        if not replace_statement(program, target, new_stmts):
            raise LegalityError("loop not found in the program body")
    report.applied = True
    # Expose the permutation loops so the driver can mark them pipelined
    # once streaming is in place (Section IV, "Pipelining regularization
    # with data transfer and computation").
    report.permute_loops = [
        s for s in gather_stmts + scatter_stmts if isinstance(s, ast.For)
    ]
    report.note(
        f"reordered {len(sites)} irregular site(s) into "
        f"{', '.join(sorted(reads_replaced | writes_replaced))}"
    )
    return report


def _permute_loop(
    var: str, bound: ast.Expr, access: ArrayAccess, new_name: str, scatter: bool
) -> ast.For:
    """Build the host-side gather (or scatter-back) loop."""
    original = ast.Subscript(ast.Ident(access.array), clone(access.index))
    permuted = ast.Subscript(ast.Ident(new_name), ast.Ident(var))
    if scatter:
        body = ast.Block([ast.Assign(original, permuted)])
    else:
        body = ast.Block([ast.Assign(permuted, original)])
    return ast.For(
        init=ast.VarDecl(var, ast.INT, ast.IntLit(0)),
        cond=builder.expr(f"{var} < B", B=clone(bound)),
        step=ast.Assign(ast.Ident(var), ast.IntLit(1), "+="),
        body=body,
        pragmas=[ast.OmpParallelFor()],
    )


def _written_names(node: ast.Node) -> Set[str]:
    """Scalar and array names assigned anywhere under *node*."""
    written: Set[str] = set()
    for n in walk(node):
        if isinstance(n, ast.Assign):
            tgt = n.target
            if isinstance(tgt, ast.Ident):
                written.add(tgt.name)
            elif isinstance(tgt, ast.Subscript) and isinstance(
                tgt.base, ast.Ident
            ):
                written.add(tgt.base.name)
        elif isinstance(n, ast.VarDecl):
            written.add(n.name)
    return written


def _hoist_point(
    program: ast.Program,
    target: ast.For,
    sites: Dict,
    target_var: str,
    bound: ast.Expr,
) -> Optional[ast.For]:
    """The outermost enclosing loop the gathers can be hoisted above.

    Gathered sources (the irregular arrays and everything their index
    expressions read, plus the gather bound) must be unmodified by the
    enclosing loop; otherwise the gathers stay put.  Returns None when the
    target is not inside a loop or hoisting is unsafe.
    """
    sources: Set[str] = set()
    for (array, _key), access in sites.items():
        sources.add(array)
        for n in walk(access.index):
            if isinstance(n, ast.Ident):
                sources.add(n.name)
    for n in walk(bound):
        if isinstance(n, ast.Ident):
            sources.add(n.name)
    # The gather loop declares its own induction variable.
    sources.discard(target_var)

    # Build the ancestor chain of the target loop.
    chain: List[ast.For] = []

    def descend(node: ast.Node, ancestors: List[ast.For]) -> bool:
        if node is target:
            chain.extend(ancestors)
            return True
        next_ancestors = (
            ancestors + [node] if isinstance(node, ast.For) else ancestors
        )
        return any(descend(child, next_ancestors) for child in node.children())

    descend(program, [])
    hoist: Optional[ast.For] = None
    for loop in reversed(chain):  # innermost first
        written = _written_names(loop)
        written.discard(None)
        var = None
        if isinstance(loop.init, ast.VarDecl):
            var = loop.init.name
        if sources & (written - ({var} if var else set())):
            break
        hoist = loop
    return hoist


def _update_clauses_after_reorder(
    loop: ast.For,
    bound: ast.Expr,
    replacements: Dict[Tuple[str, str], str],
    reads: Set[str],
    writes: Set[str],
    bindings: Optional[Dict[str, int]],
) -> None:
    """Swap offload clauses from the original arrays to the gather arrays.

    The original array (and the index array, when it is no longer used)
    drop out of the transfer set — this is the "remove unnecessary data
    transfer" effect the paper measures on nn.
    """
    pragma = get_pragma(loop, ast.OffloadPragma)
    if pragma is None:
        return
    still_used = {
        a.array for a in classify_accesses(loop, bindings)
    }
    new_clauses: List[ast.TransferClause] = []
    for clause in pragma.clauses:
        if clause.length is None or clause.var in still_used:
            new_clauses.append(clause)
    for name in sorted(reads):
        new_clauses.append(
            ast.TransferClause("in", name, length=clone(bound))
        )
    for name in sorted(writes):
        new_clauses.append(
            ast.TransferClause("out", name, length=clone(bound))
        )
    pragma.clauses = new_clauses


def _first_reorderable_loop(
    program: ast.Program, bindings: Optional[Dict[str, int]]
) -> Optional[ast.For]:
    inside = _loops_inside_device_regions(program)
    for node in walk(program):
        if id(node) in inside:
            # The gather loop runs on the host; a loop already inside a
            # device region cannot be reordered this way.
            continue
        if isinstance(node, ast.For) and node.pragmas:
            try:
                if _irregular_targets(node, bindings):
                    return node
            except Exception:
                continue
    return None


# ==========================================================================
# Loop splitting
# ==========================================================================


class _HasIrregular(NodeVisitor):
    def __init__(self, var: str, bindings: Optional[Dict[str, int]]):
        self.var = var
        self.bindings = bindings or {}
        self.found = False

    def visit_Subscript(self, node: ast.Subscript) -> None:
        self.generic_visit(node)
        if any(isinstance(n, ast.Subscript) for n in walk(node.index)):
            self.found = True


def _stmt_has_irregular(stmt: ast.Stmt, var: str, bindings) -> bool:
    checker = _HasIrregular(var, bindings)
    checker.visit(stmt)
    return checker.found


def split_loop(
    program: ast.Program,
    loop: Optional[ast.For] = None,
    bindings: Optional[Dict[str, int]] = None,
) -> TransformReport:
    """Apply the Figure 7 loop-splitting rewrite in place."""
    report = TransformReport(name="regularization:split", applied=False)
    target = loop if loop is not None else _first_splittable_loop(program, bindings)
    if target is None:
        report.reason = "no loop with an irregular prefix and regular suffix"
        return report

    var = loop_variable(target)
    body = target.body
    if not isinstance(body, ast.Block):
        body = ast.Block([body])
    stmts = body.stmts
    split_at = -1
    for idx, stmt in enumerate(stmts):
        if _stmt_has_irregular(stmt, var, bindings):
            split_at = idx
    if split_at < 0:
        report.reason = "loop has no irregular accesses"
        return report
    if split_at == len(stmts) - 1:
        report.reason = "irregular accesses extend to the end of the body"
        return report

    prefix = [clone(s) for s in stmts[: split_at + 1]]
    suffix = [clone(s) for s in stmts[split_at + 1 :]]

    # Scalars declared in the prefix but consumed by the suffix must be
    # recomputed in the second loop; their definitions must be regular.
    suffix_reads = {
        n.name
        for s in suffix
        for n in walk(s)
        if isinstance(n, ast.Ident)
    }
    mutated_after_decl = set()
    declared = set()
    for stmt in prefix:
        if isinstance(stmt, ast.VarDecl):
            declared.add(stmt.name)
            continue
        for node in walk(stmt):
            if isinstance(node, ast.Assign) and isinstance(
                node.target, ast.Ident
            ):
                mutated_after_decl.add(node.target.name)

    carried: List[ast.Stmt] = []
    for stmt in prefix:
        if isinstance(stmt, ast.VarDecl) and stmt.name in suffix_reads:
            if _stmt_has_irregular(stmt, var, bindings):
                report.reason = (
                    f"local {stmt.name!r} flows into the regular half but is "
                    f"defined by an irregular access"
                )
                return report
            if stmt.name in mutated_after_decl:
                report.reason = (
                    f"local {stmt.name!r} is updated inside the irregular "
                    f"half; recomputing it in the regular half is unsound"
                )
                return report
            carried.append(clone(stmt))
    suffix = carried + suffix

    non_offload = [
        p for p in target.pragmas if not isinstance(p, ast.OffloadPragma)
    ]
    first = ast.For(
        init=clone(target.init),
        cond=clone(target.cond),
        step=clone(target.step),
        body=ast.Block(prefix),
        pragmas=[clone(p) for p in non_offload],
    )
    second = ast.For(
        init=clone(target.init),
        cond=clone(target.cond),
        step=clone(target.step),
        body=ast.Block(suffix),
        pragmas=[clone(p) for p in non_offload],
    )

    offload = get_pragma(target, ast.OffloadPragma)
    if offload is not None:
        # Both halves run in ONE offload region with the original clauses:
        # "this optimization is done statically, and there is no runtime
        # overhead" — no extra kernel launch, no extra transfers, and the
        # intermediates stay on the device between the halves.
        replacement: List[ast.Stmt] = [
            ast.OffloadBlock(clone(offload), ast.Block([first, second]))
        ]
    else:
        replacement = [first, second]

    if not replace_statement(program, target, replacement):
        raise LegalityError("loop not found in the program body")
    report.applied = True
    report.note(
        f"split after statement {split_at + 1}: irregular prefix "
        f"({split_at + 1} stmts) + regular suffix ({len(suffix)} stmts)"
    )
    return report


def _first_splittable_loop(
    program: ast.Program, bindings
) -> Optional[ast.For]:
    # Splitting is plain loop fission: legal both for offloaded loops (the
    # halves share one region) and for parallel loops already inside a
    # device region (srad's iterated diffusion loop).
    for node in walk(program):
        if not (isinstance(node, ast.For) and node.pragmas):
            continue
        try:
            var = loop_variable(node)
        except Exception:
            continue
        body = node.body
        stmts = body.stmts if isinstance(body, ast.Block) else [body]
        flags = [_stmt_has_irregular(s, var, bindings) for s in stmts]
        if any(flags) and not flags[-1]:
            return node
    return None
