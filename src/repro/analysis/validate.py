"""Static validation (lint) of offload pragma consistency.

Transformed programs contain intricate pragma choreography — prologue
allocations, ``alloc_if(0)`` reuse, signal/wait pairs, epilogue frees.
This pass checks, in program order (loop bodies visited once):

* **use-before-alloc** — a clause reuses a device buffer
  (``alloc_if(0)``) that no earlier clause allocated;
* **use-after-free** — a buffer is referenced after ``free_if(1)``
  outside the loop that also (re)allocates it;
* **leaked buffers** — allocated with ``free_if(0)`` and never freed
  (warning);
* **unmatched waits** — ``wait(tag)`` on a syntactically constant tag
  with no earlier ``signal(tag)`` (dynamic tags are skipped);
* **untransferred data** — an offload body touching an array that no
  clause names (the static twin of the executor's
  ``MissingTransferError``).

The checker is a lint, not a verifier: loops are scanned once in source
order, which matches how the streaming/merging transforms lay pragmas
out.  Findings are returned as :class:`Diagnostic` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.liveness import analyze_loop_liveness
from repro.minic import ast_nodes as ast
from repro.minic.printer import to_source
from repro.minic.visitor import walk


@dataclass(frozen=True)
class Diagnostic:
    level: str  # "error" | "warning"
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.level}[{self.code}]: {self.message}"


class _State:
    def __init__(self) -> None:
        self.allocated: Set[str] = set()
        self.freed: Set[str] = set()
        self.signals: Set[str] = set()
        self.diagnostics: List[Diagnostic] = []

    def error(self, code: str, message: str) -> None:
        self.diagnostics.append(Diagnostic("error", code, message))

    def warning(self, code: str, message: str) -> None:
        self.diagnostics.append(Diagnostic("warning", code, message))


def _flag(expr: Optional[ast.Expr], default: bool) -> Optional[bool]:
    """Evaluate an alloc_if/free_if expression when it is a literal."""
    if expr is None:
        return default
    if isinstance(expr, ast.IntLit):
        return bool(expr.value)
    return None  # dynamic: cannot lint


def _const_tag(expr: Optional[ast.Expr]) -> Optional[str]:
    # Only literal tags are statically matchable; identifiers and
    # arithmetic (streaming's wait(__k)) are dynamic.
    if isinstance(expr, ast.IntLit):
        return to_source(expr)
    return None


def _check_clause(
    clause: ast.TransferClause, state: _State, transient: bool
) -> None:
    """Track one clause's allocation effects.

    *transient* marks clauses of an unoptimized offload whose default
    lifetime is allocate-then-free within the same offload.
    """
    dest = clause.into or clause.var
    if clause.direction == "out":
        dest = clause.var  # the device-side name of an out clause
    alloc = _flag(clause.alloc_if, default=True)
    free = _flag(
        clause.free_if,
        default=(clause.direction != "nocopy") and transient,
    )
    if alloc is False and dest not in state.allocated:
        state.error(
            "use-before-alloc",
            f"clause {clause.direction}({dest}) reuses a device buffer "
            f"never allocated",
        )
    if alloc is not False and dest in state.freed:
        state.freed.discard(dest)
    if dest in state.freed and alloc is False:
        state.error(
            "use-after-free",
            f"clause {clause.direction}({dest}) uses a freed device buffer",
        )
    if alloc is not False:
        state.allocated.add(dest)
    if free is True:
        state.freed.add(dest)
        state.allocated.discard(dest)


def _kernel_data_check(
    body: ast.Stmt,
    loop: Optional[ast.For],
    pragma: ast.OffloadPragma,
    state: _State,
) -> None:
    """Everything the kernel touches must be named by some clause."""
    target = loop if loop is not None else body
    if isinstance(target, ast.For):
        liveness = analyze_loop_liveness(target)
        needed = liveness.live_in | (liveness.defined & liveness.arrays)
    else:
        # Block region: reuse the loop analyzer through a synthetic loop.
        synthetic = ast.For(
            init=ast.VarDecl("__v", ast.INT, ast.IntLit(0)),
            cond=ast.BinOp("<", ast.Ident("__v"), ast.IntLit(1)),
            step=ast.Assign(ast.Ident("__v"), ast.IntLit(1), "+="),
            body=body,
        )
        liveness = analyze_loop_liveness(synthetic)
        needed = liveness.live_in | (liveness.defined & liveness.arrays)
    named = {c.var for c in pragma.clauses} | {
        c.into for c in pragma.clauses if c.into
    }
    for name in sorted(needed - named):
        if name in liveness.arrays:
            state.error(
                "untransferred-array",
                f"offload body touches array {name!r} but no clause names it",
            )
        # Scalars may be device-resident from earlier offloads; warn only.


def _scan_statements(node: ast.Node, state: _State) -> None:
    """Program-order scan (loop bodies once)."""
    if isinstance(node, ast.PragmaStmt):
        pragma = node.pragma
        if isinstance(pragma, ast.OffloadTransferPragma):
            for clause in pragma.clauses:
                _check_clause(clause, state, transient=False)
            tag = _const_tag(pragma.signal)
            if tag is not None:
                state.signals.add(tag)
        elif isinstance(pragma, ast.OffloadWaitPragma):
            tag = _const_tag(pragma.wait)
            if tag is not None and tag not in state.signals:
                state.error(
                    "unmatched-wait",
                    f"offload_wait on tag {tag} with no earlier signal",
                )
        return
    if isinstance(node, ast.For):
        offload = next(
            (p for p in node.pragmas if isinstance(p, ast.OffloadPragma)), None
        )
        if offload is not None:
            _check_offload(offload, node.body, node, state)
        for child in node.children():
            _scan_statements(child, state)
        return
    if isinstance(node, ast.OffloadBlock):
        _check_offload(node.pragma, node.body, None, state)
        for child in node.body.children():
            _scan_statements(child, state)
        return
    for child in node.children():
        _scan_statements(child, state)


def _check_offload(
    pragma: ast.OffloadPragma,
    body: ast.Stmt,
    loop: Optional[ast.For],
    state: _State,
) -> None:
    for clause in pragma.clauses:
        _check_clause(clause, state, transient=True)
    tag = _const_tag(pragma.signal)
    if tag is not None:
        state.signals.add(tag)
    wait_tag = _const_tag(pragma.wait)
    if wait_tag is not None and wait_tag not in state.signals:
        state.error(
            "unmatched-wait",
            f"offload waits on tag {wait_tag} with no earlier signal",
        )
    _kernel_data_check(body, loop, pragma, state)


def validate_program(program: ast.Program) -> List[Diagnostic]:
    """Lint *program*'s offload choreography; returns diagnostics."""
    state = _State()
    for func in program.functions():
        if func.body is not None:
            _scan_statements(func.body, state)
    for name in sorted(state.allocated):
        state.warning(
            "leaked-buffer",
            f"device buffer {name!r} allocated with free_if(0) but never freed",
        )
    return state.diagnostics


def assert_valid(program: ast.Program) -> None:
    """Raise AssertionError listing any *error*-level diagnostics."""
    errors = [d for d in validate_program(program) if d.level == "error"]
    if errors:
        raise AssertionError(
            "invalid offload choreography:\n"
            + "\n".join(str(d) for d in errors)
        )
