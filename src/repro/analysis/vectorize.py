"""Vectorizability analysis.

Models the icc auto-vectorizer's first-order behaviour on MIC: a loop
vectorizes when the *innermost* accesses are unit-stride or
loop-invariant — contiguous loads/stores map onto 512-bit vector
operations; gathers, non-unit strides and AoS field walks do not
(profitably, on KNC).  Control flow is allowed (masking).

Vectorization is the hinge of the paper's regularization story: srad's
split-off regular half vectorizes, nn's reordered arrays vectorize, and
on the in-order MIC cores an unvectorized loop additionally serializes
its memory stalls against its arithmetic (see
:meth:`repro.hardware.device.ComputeDevice.compute_time`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.array_access import AccessKind, classify_accesses
from repro.minic import ast_nodes as ast

#: Access kinds a vector unit handles at full width.
VECTOR_FRIENDLY = frozenset({AccessKind.UNIT, AccessKind.INVARIANT})


def _loop_var_name(loop: ast.For) -> Optional[str]:
    if isinstance(loop.init, ast.VarDecl):
        return loop.init.name
    if isinstance(loop.init, ast.Assign) and isinstance(
        loop.init.target, ast.Ident
    ):
        return loop.init.target.name
    return None


def _stmts_under(stmt: ast.Stmt):
    stack = [stmt]
    while stack:
        current = stack.pop()
        yield current
        for child in current.children():
            if isinstance(child, ast.Stmt):
                stack.append(child)


def innermost_loops(loop: ast.For) -> List[ast.For]:
    """The loops of the nest that contain no further loops."""
    nest = [loop] + [
        s for s in _stmts_under(loop.body) if isinstance(s, ast.For)
    ]
    inner = [
        f
        for f in nest
        if not any(isinstance(s, ast.For) for s in _stmts_under(f.body))
    ]
    return inner or [loop]


def is_vectorizable(
    loop: ast.For, bindings: Optional[Dict[str, int]] = None
) -> bool:
    """True when every innermost loop of the nest has only unit-stride or
    invariant accesses.

    *bindings* provides concrete integer values for loop-invariant
    symbols appearing in index coefficients (e.g. a row width) so that
    ``temp[i * cols + j]`` classifies as unit stride in ``j``.  Enclosing
    loop variables are treated as constants automatically.
    """
    bindings = dict(bindings or {})
    nest = [loop] + [
        s for s in _stmts_under(loop.body) if isinstance(s, ast.For)
    ]
    # From an innermost loop's perspective every enclosing induction
    # variable is a constant; any fixed value preserves linearity.
    for f in nest:
        name = _loop_var_name(f)
        if name is not None:
            bindings.setdefault(name, 0)

    saw_access = False
    for target in innermost_loops(loop):
        var = _loop_var_name(target)
        if var is None:
            return False
        inner_bindings = dict(bindings)
        inner_bindings.pop(var, None)
        try:
            accesses = classify_accesses(target, inner_bindings)
        except Exception:
            return False
        if any(a.kind not in VECTOR_FRIENDLY for a in accesses):
            return False
        saw_access = saw_access or bool(accesses)
    return saw_access
