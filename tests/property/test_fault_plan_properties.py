"""Plan-level fault-injection properties.

Two families of invariants on :class:`FaultPlan` itself:

* **validation** — malformed :class:`FaultSpec` entries are rejected
  eagerly at construction, with messages naming the offending field, so
  a typo'd campaign script fails before any workload runs;
* **stream independence** — every site draws from its own seed-derived
  random stream, so the schedule a site sees depends only on how many
  operations *it* has issued, never on which other sites were consulted
  in between.  This is what lets new fault sites (like ``device``) be
  added without perturbing the seeded schedules of existing campaigns.
"""

import itertools

import pytest

from repro.faults import DEFAULT_RATES, FAULT_SITES, FaultPlan, FaultSpec
from repro.faults.plan import SITE_KINDS

#: Hot uniform rates so a few hundred draws always inject something.
HOT = {site: 0.3 for site in FAULT_SITES}


class TestFaultSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("pcie", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index must be >= 0"):
            FaultSpec("h2d", -1)

    @pytest.mark.parametrize("severity", [0.0, -0.5, 1.5])
    def test_out_of_range_severity_rejected(self, severity):
        with pytest.raises(ValueError, match="severity"):
            FaultSpec("h2d", 0, severity=severity)

    def test_severity_of_one_is_the_whole_operation(self):
        assert FaultSpec("kernel", 3, severity=1.0).severity == 1.0

    @pytest.mark.parametrize(
        "site,foreign",
        [
            ("h2d", "crash"),
            ("kernel", "corrupt"),
            ("alloc", "reset"),
            ("signal", "oom"),
            ("device", "lost"),
        ],
    )
    def test_kind_must_belong_to_site(self, site, foreign):
        with pytest.raises(ValueError, match="cannot raise"):
            FaultSpec(site, 0, kind=foreign)

    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_every_site_kind_is_accepted(self, site):
        for kind in SITE_KINDS[site]:
            spec = FaultSpec(site, 0, kind=kind)
            assert spec.kind == kind

    def test_unknown_rate_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault sites"):
            FaultPlan(seed=0, rates={"dimm": 0.1})

    def test_unknown_draw_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(seed=0).draw("pcie")


def _draws(plan, site, count):
    return tuple(plan.draw(site) for _ in range(count))


class TestStreamIndependence:
    def test_same_seed_same_schedule(self):
        for site in FAULT_SITES:
            first = _draws(FaultPlan(seed=7, rates=HOT), site, 200)
            second = _draws(FaultPlan(seed=7, rates=HOT), site, 200)
            assert first == second
            assert any(first), f"rate 0.3 never fired in 200 draws at {site}"

    def test_interleaving_does_not_perturb_a_site(self):
        """Draw h2d alone vs interleaved with every other site: the h2d
        schedule must be identical draw-for-draw."""
        alone = _draws(FaultPlan(seed=13, rates=HOT), "h2d", 120)

        interleaved_plan = FaultPlan(seed=13, rates=HOT)
        others = itertools.cycle(s for s in FAULT_SITES if s != "h2d")
        interleaved = []
        for _ in range(120):
            interleaved_plan.draw(next(others))
            interleaved.append(interleaved_plan.draw("h2d"))
            interleaved_plan.draw(next(others))
        assert tuple(interleaved) == alone

    def test_all_orderings_of_site_visits_agree(self):
        """Any permutation of per-operation site visit order yields the
        same per-site fault sequence."""
        per_site = {}
        for ordering in itertools.permutations(("h2d", "d2h", "kernel")):
            plan = FaultPlan(seed=99, rates=HOT)
            seen = {site: [] for site in ordering}
            for _ in range(60):
                for site in ordering:
                    seen[site].append(plan.draw(site))
            for site, draws in seen.items():
                expected = per_site.setdefault(site, draws)
                assert draws == expected, f"{site} schedule depends on visit order"

    def test_new_device_site_never_perturbs_existing_schedules(self):
        """Consulting the device site (default rate 0.0) between every
        draw must leave legacy schedules untouched — the exact property
        that makes adding the reset fault class backward compatible."""
        legacy_rates = {k: v for k, v in DEFAULT_RATES.items() if k != "device"}
        baseline = {
            site: _draws(FaultPlan(seed=21, rates=legacy_rates), site, 300)
            for site in legacy_rates
        }
        plan = FaultPlan(seed=21, rates=dict(legacy_rates, device=0.0))
        with_device = {site: [] for site in legacy_rates}
        for _ in range(300):
            assert plan.draw("device") is None
            for site in legacy_rates:
                with_device[site].append(plan.draw(site))
        for site in legacy_rates:
            assert tuple(with_device[site]) == baseline[site]

    def test_scripted_faults_fire_regardless_of_interleaving(self):
        spec = FaultSpec("kernel", 5, kind="hang", severity=0.9)
        plan = FaultPlan(seed=3, rates=HOT, scripted=[spec])
        hit = None
        for i in range(10):
            plan.draw("h2d")
            fault = plan.draw("kernel")
            if i == 5:
                hit = fault
        assert hit is not None
        assert (hit.kind, hit.severity, hit.index) == ("hang", 0.9, 5)

    def test_max_faults_does_not_gate_scripted(self):
        plan = FaultPlan(
            seed=None,
            scripted=[FaultSpec("h2d", i) for i in range(4)],
            max_faults=1,
        )
        faults = [plan.draw("h2d") for _ in range(4)]
        assert all(faults)


def _device_draws(plan, site, device, count):
    return tuple(plan.draw(site, device=device) for _ in range(count))


class TestDeviceStreamIsolation:
    """Fleet extension of stream independence: every ``(site, device)``
    pair owns a seed-derived stream, so growing the fleet can never
    rewrite the fault schedule any existing device sees."""

    @pytest.mark.parametrize("fleet", [1, 2, 3])
    def test_adding_device_never_perturbs_lower_devices(self, fleet):
        """Device K+1's draws must leave devices 0..K draw-for-draw
        identical — the property that makes ``--devices N+1`` a pure
        extension of an ``--devices N`` campaign."""
        rounds = 80
        baseline = {}
        plan = FaultPlan(seed=11, rates=HOT)
        for _ in range(rounds):
            for dev in range(fleet):
                baseline.setdefault(dev, []).append(plan.draw("h2d", device=dev))

        grown = FaultPlan(seed=11, rates=HOT)
        seen = {dev: [] for dev in range(fleet)}
        for _ in range(rounds):
            grown.draw("h2d", device=fleet)  # the new card, interleaved
            for dev in range(fleet):
                seen[dev].append(grown.draw("h2d", device=dev))
            grown.draw("h2d", device=fleet)
        for dev in range(fleet):
            assert seen[dev] == baseline[dev], (
                f"device {dev} schedule changed when device {fleet} joined"
            )

    def test_device_streams_are_decorrelated(self):
        """Two devices at the same site draw different schedules (they
        share a rate, not a stream)."""
        plan = FaultPlan(seed=5, rates=HOT)
        dev0 = _device_draws(plan, "kernel", 0, 150)
        dev1 = _device_draws(plan, "kernel", 1, 150)
        assert any(dev0) and any(dev1)
        assert [f is not None for f in dev0] != [f is not None for f in dev1]

    def test_device_silent_streams_are_isolated_too(self):
        """The silent (integrity) streams obey the same growth property."""
        rates = {"h2d:silent": 0.3}
        plan = FaultPlan(seed=17, rates=rates)
        alone = tuple(plan.draw_silent("h2d", device=0) for _ in range(100))
        grown = FaultPlan(seed=17, rates=rates)
        interleaved = []
        for _ in range(100):
            grown.draw_silent("h2d", device=1)
            interleaved.append(grown.draw_silent("h2d", device=0))
        assert tuple(interleaved) == alone

    def test_device_scoped_rate_silences_one_card_only(self):
        plan = FaultPlan(seed=23, rates={"h2d": 0.5, "dev0:h2d": 0.0})
        dev0 = _device_draws(plan, "h2d", 0, 100)
        dev1 = _device_draws(plan, "h2d", 1, 100)
        assert not any(dev0)
        assert any(dev1)

    def test_device_scoped_script_fires_at_device_ordinal(self):
        """A devK-scoped spec counts that device's own operations, not
        the fleet-wide issue order."""
        spec = FaultSpec("device", 2, kind="reset", device=1)
        plan = FaultPlan(seed=None, scripted=[spec])
        hits = []
        for _ in range(4):
            assert plan.draw("device", device=0) is None
            hits.append(plan.draw("device", device=1))
        fired = [f for f in hits if f is not None]
        assert len(fired) == 1
        assert hits[2] is not None
        assert (fired[0].kind, fired[0].index, fired[0].device) == ("reset", 2, 1)
