"""Tests for the Section III-B block-count model."""

import pytest

from repro.transforms.block_size import (
    optimal_block_count,
    streaming_time,
    unstreamed_time,
)


class TestFormula:
    def test_unstreamed_is_d_plus_k_plus_c(self):
        assert unstreamed_time(2.0, 3.0, 0.5) == 5.5

    def test_one_block_equals_unstreamed(self):
        assert streaming_time(2.0, 3.0, 0.5, 1) == unstreamed_time(2.0, 3.0, 0.5)

    def test_compute_bound_limit(self):
        """With many blocks and C >> D, time approaches C + N*K + D/N."""
        d, c, k, n = 1.0, 100.0, 0.0, 50
        assert streaming_time(d, c, k, n) == pytest.approx(c + d / n)

    def test_transfer_bound_limit(self):
        """With D >> C, time approaches D + C/N + K."""
        d, c, k, n = 100.0, 1.0, 0.0, 50
        assert streaming_time(d, c, k, n) == pytest.approx(d + c / n)

    def test_streaming_beats_unstreamed_when_k_small(self):
        d, c, k = 5.0, 5.0, 0.001
        assert streaming_time(d, c, k, 20) < unstreamed_time(d, c, k)

    def test_too_many_blocks_hurts(self):
        """Each block pays K; large N is dominated by launch overhead."""
        d, c, k = 1.0, 1.0, 0.1
        assert streaming_time(d, c, k, 500) > streaming_time(d, c, k, 5)

    def test_invalid_blocks_rejected(self):
        with pytest.raises(ValueError):
            streaming_time(1.0, 1.0, 0.1, 0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            streaming_time(-1.0, 1.0, 0.1, 2)
        with pytest.raises(ValueError):
            unstreamed_time(1.0, -1.0, 0.1)


class TestOptimum:
    def test_compute_bound_matches_sqrt_formula(self):
        """When C/N + K > D/N, N* = sqrt(D/K)."""
        d, c, k = 4.0, 100.0, 0.01
        n_star = optimal_block_count(d, c, k)
        assert n_star == pytest.approx((d / k) ** 0.5, abs=1.5)

    def test_optimum_is_a_local_minimum(self):
        d, c, k = 3.0, 2.0, 0.004
        n_star = optimal_block_count(d, c, k)
        t_star = streaming_time(d, c, k, n_star)
        for n in (n_star - 1, n_star + 1):
            if n >= 1:
                assert streaming_time(d, c, k, n) >= t_star

    def test_global_minimum_over_range(self):
        d, c, k = 2.5, 1.5, 0.02
        n_star = optimal_block_count(d, c, k, max_blocks=200)
        t_star = streaming_time(d, c, k, n_star)
        best = min(streaming_time(d, c, k, n) for n in range(1, 201))
        assert t_star == pytest.approx(best)

    def test_paper_range_ten_to_forty(self):
        """The paper: best N for most benchmarks is between 10 and 40.

        Check that in the compute-bound regime (C >= D) with K about three
        orders of magnitude smaller (the Figure 4 benchmarks), the model
        lands in that range."""
        for d, c in [(1.0, 1.0), (1.0, 2.0), (1.0, 3.0), (0.5, 0.8)]:
            n_star = optimal_block_count(d, c, 4e-3)
            assert 10 <= n_star <= 45, (d, c, n_star)

    def test_transfer_bound_uses_d_minus_c_over_k(self):
        """When D dominates, N* tracks (D - C) / K."""
        d, c, k = 2.0, 1.0, 4e-3
        n_star = optimal_block_count(d, c, k)
        assert n_star == pytest.approx((d - c) / k, rel=0.05)

    def test_zero_transfer_no_streaming(self):
        assert optimal_block_count(0.0, 5.0, 0.01) == 1

    def test_zero_launch_overhead_maximal_blocks(self):
        assert optimal_block_count(1.0, 1.0, 0.0, max_blocks=64) == 64

    def test_clamped_to_bounds(self):
        assert optimal_block_count(100.0, 0.0, 1e-9, max_blocks=32) <= 32
        assert optimal_block_count(1e-9, 100.0, 10.0, min_blocks=2) >= 2
