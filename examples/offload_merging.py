#!/usr/bin/env python
"""Offload merging on a streamcluster-style solver loop (Figure 6).

An outer facility-evaluation loop offloads two small kernels per pass —
the naive port pays two kernel launches and re-transfers the point set
every time.  COMP merges the inner offloads into a single device region.
This example prints the merged source and the launch/transfer accounting
that explains the order-of-magnitude speedup in Figure 14.

Run:  python examples/offload_merging.py
"""

import numpy as np

from repro import CompOptimizer, parse, to_source
from repro.analysis.offload import insert_offload_pragmas
from repro.runtime.executor import Machine, run_program

SOURCE = """
void main() {
    for (int t = 0; t < passes; t++) {
        float ctx = cx[t];
        float cty = cy[t];
#pragma omp parallel for
        for (int i = 0; i < n; i++) {
            gains[i] = (px[i] - ctx) * (px[i] - ctx)
                + (py[i] - cty) * (py[i] - cty);
        }
#pragma omp parallel for
        for (int j = 0; j < n; j++) {
            if (gains[j] < cost[j]) {
                cost[j] = gains[j];
            }
        }
    }
}
"""

N, PASSES = 1024, 25
SCALE = 163_840 / N  # the paper's streamcluster input size


def make_arrays():
    rng = np.random.default_rng(3)
    return {
        "px": rng.random(N).astype(np.float32),
        "py": rng.random(N).astype(np.float32),
        "cx": rng.random(PASSES).astype(np.float32),
        "cy": rng.random(PASSES).astype(np.float32),
        "gains": np.zeros(N, dtype=np.float32),
        "cost": np.full(N, 1e30, dtype=np.float32),
    }


def run(program, label):
    machine = Machine(scale=SCALE)
    result = run_program(
        program, arrays=make_arrays(),
        scalars={"n": N, "passes": PASSES}, machine=machine,
    )
    stats = result.stats
    print(f"{label:22s} time {stats.total_time * 1000:9.2f} ms   "
          f"kernel launches {stats.kernel_launches:3d}   "
          f"bytes to device {stats.bytes_to_device / 2**20:8.1f} MiB")
    return result


def main() -> None:
    # The Apricot-style naive port: offload each parallel loop.
    naive = parse(SOURCE)
    count = insert_offload_pragmas(naive)
    print(f"inserted {count} offload pragmas (the naive port)\n")

    merged = parse(to_source(naive))
    result = CompOptimizer().optimize(merged)
    assert result.was_applied("offload-merging")
    print("=== merged source ===")
    print(to_source(merged))

    print("=== accounting ===")
    r_naive = run(naive, "naive per-loop offload")
    r_merged = run(merged, "merged device region")
    speedup = r_naive.stats.total_time / r_merged.stats.total_time
    print(f"\nmerging speedup: {speedup:.1f}x "
          f"(the Figure 14 effect; paper: 38.89x for streamcluster)")
    assert np.array_equal(
        r_naive.array("cost"), r_merged.array("cost")
    ), "merged program must compute identical results"
    print("outputs verified identical.")


if __name__ == "__main__":
    main()
