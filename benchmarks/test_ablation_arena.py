"""Ablation: arena chunk size sweep versus the MYO page size.

Section V's observation: "copying data with 256 MB granularity can
improve the performance of ferret by 7.81x."  Transfer time for ferret's
83 MB of shared data falls as granularity rises from MYO's 4 KiB pages to
multi-megabyte arena chunks, then flattens once DMA setup is amortized.
"""

from benchmarks.conftest import emit
from repro.experiments.report import render_table
from repro.hardware.pcie import dma_transfer_time, paged_transfer_time
from repro.hardware.spec import PcieSpec
from repro.runtime.arena import ArenaAllocator
from repro.runtime.executor import Machine

TOTAL_BYTES = 83 * (1 << 20)
ALLOC_BYTES = 1084  # ferret's average shared-object size
# The 1-byte bid field caps the arena at 256 buffers, so chunks below
# TOTAL_BYTES/256 (~332 KiB) cannot hold ferret's data at all — itself a
# design consequence worth noting.
CHUNKS = [512 << 10, 1 << 20, 16 << 20, 64 << 20, 256 << 20]


def arena_transfer_time(chunk_bytes: int) -> float:
    machine = Machine()
    arena = ArenaAllocator(chunk_bytes=chunk_bytes)
    for _ in range(TOTAL_BYTES // ALLOC_BYTES):
        arena.allocate(ALLOC_BYTES)
    arena.copy_to_device(machine.coi, copy_full_buffers=False)
    return machine.clock.now


def test_arena_chunk_sweep_vs_myo(benchmark):
    def sweep():
        return {c: arena_transfer_time(c) for c in CHUNKS}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    pcie = PcieSpec()
    myo_time = paged_transfer_time(TOTAL_BYTES, pcie)
    ideal = dma_transfer_time(TOTAL_BYTES, pcie)

    rows = [["MYO 4 KiB pages", f"{myo_time*1000:.1f} ms", "baseline"]]
    for chunk, t in times.items():
        rows.append(
            [f"arena {chunk >> 10} KiB chunks", f"{t*1000:.1f} ms",
             f"{myo_time / t:.1f}x vs MYO"]
        )
    rows.append(["single ideal DMA", f"{ideal*1000:.1f} ms", ""])
    emit(render_table(["granularity", "transfer time", "speedup"], rows))

    # Bigger chunks are never slower, and any arena beats MYO's pages.
    ordered = [times[c] for c in CHUNKS]
    assert ordered == sorted(ordered, reverse=True)
    assert all(myo_time > 3 * t for t in ordered)
    # 256 MB chunks come within 20% of one ideal bulk DMA.
    assert times[256 << 20] < ideal * 1.2
