"""Tests for the asyncio campaign service orchestrator."""

import asyncio

import pytest

from repro.service.jobs import JobSpec
from repro.service.queue import AdmissionRejected
from repro.service.service import CampaignService

SOURCE = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0;
    }
}
"""


def run_spec(size=16, **overrides):
    fields = dict(
        kind="run",
        source=SOURCE,
        arrays=(f"A={size}:float:arange", f"B={size}:float:zeros"),
        scalars=(f"n={size}",),
        seed=0,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def run_service(coro_fn, **service_kwargs):
    async def scenario():
        service = CampaignService(**service_kwargs)
        await service.start()
        try:
            return await coro_fn(service)
        finally:
            await service.close()

    return asyncio.run(scenario())


class TestLifecycle:
    def test_job_event_sequence(self):
        async def scenario(service):
            job = service.submit(run_spec())
            events = [e["event"] async for e in service.stream(job)]
            return events, job

        events, job = run_service(scenario)
        assert events == ["queued", "started", "result", "done"]
        assert job.state == "done"
        assert job.result["ok"]
        assert not job.cached

    def test_result_streams_incrementally(self):
        async def scenario(service):
            job = service.submit(run_spec())
            seen = []
            async for event in service.stream(job):
                seen.append(event)
                if event["event"] == "result":
                    # The full result payload arrives before the
                    # terminal event, not after the fact.
                    assert event["result"]["outputs"]
            return seen

        events = run_service(scenario)
        assert events[-1]["event"] == "done"

    def test_invalid_spec_raises_before_admission(self):
        async def scenario(service):
            with pytest.raises(ValueError, match="source"):
                service.submit(JobSpec(kind="run", source=None))
            return service.queue.accepted

        assert run_service(scenario) == 0


class TestSharedStore:
    def test_identical_submissions_served_from_cache(self):
        async def scenario(service):
            first = service.submit(run_spec())
            result = await service.result(first)
            second = service.submit(run_spec())
            cached = await service.result(second)
            return first, second, result, cached

        first, second, result, cached = run_service(scenario)
        assert not first.cached
        assert second.cached
        assert cached == result
        assert second.state == "done"

    def test_cache_is_keyed_on_provenance(self):
        async def scenario(service):
            a = service.submit(run_spec(seed=0))
            b = service.submit(run_spec(seed=1))
            ra = await service.result(a)
            rb = await service.result(b)
            return ra, rb, b.cached

        ra, rb, b_cached = run_service(scenario)
        assert not b_cached
        assert ra["outputs"] == rb["outputs"]  # arange inputs: same data
        assert ra["key_id"] != rb["key_id"]

    def test_concurrent_identical_submissions_coalesce(self):
        async def scenario(service):
            jobs = [service.submit(run_spec()) for _ in range(4)]
            results = [await service.result(job) for job in jobs]
            assert all(r == results[0] for r in results)
            hits, misses, size = service.store.stats()
            return size, sum(job.cached for job in jobs)

        size, cached_count = run_service(scenario, workers=2)
        assert size == 1
        assert cached_count == 3

    def test_scheduling_hints_share_cache(self):
        async def scenario(service):
            a = service.submit(run_spec(tenant="alice", priority=0))
            await service.result(a)
            b = service.submit(run_spec(tenant="bob", priority=2))
            await service.result(b)
            return b.cached

        assert run_service(scenario)


class TestBackpressure:
    def test_rejects_with_retry_after_past_high_water(self):
        # Submissions are synchronous (no awaits), so the dispatcher
        # can't drain between them: exactly high_water jobs are
        # admitted, then backpressure starts.
        async def scenario(service):
            jobs = []
            with pytest.raises(AdmissionRejected) as exc:
                for i in range(100):
                    jobs.append(service.submit(run_spec(seed=i)))
            for job in jobs:
                await service.result(job)
            return len(jobs), exc.value.retry_after

        admitted, retry_after = run_service(
            scenario, max_depth=4, high_water=2
        )
        assert admitted == 2
        assert retry_after > 0

    def test_rejected_jobs_do_not_leak(self):
        async def scenario(service):
            kept = service.submit(run_spec(seed=0))
            with pytest.raises(AdmissionRejected):
                service.submit(run_spec(seed=1))
            await service.result(kept)
            await service.drain()
            return service.snapshot()

        snapshot = run_service(scenario, max_depth=2, high_water=1)
        assert snapshot["queue_rejected"] == 1
        assert snapshot["queue_depth"] == 0
        # The rejected job must not linger in the service's job table.
        assert snapshot["jobs"] == 1


class TestTelemetry:
    def test_snapshot_aggregates_fleet_metrics(self):
        async def scenario(service):
            job = service.submit(run_spec())
            await service.result(job)
            again = service.submit(run_spec())
            await service.result(again)
            return service.snapshot()

        snapshot = run_service(scenario)
        counters = snapshot["metrics"]["counters"]
        assert counters["service.jobs.submitted"] == 2
        assert counters["service.jobs.completed"] == 2
        assert counters["service.jobs.cached"] == 1
        assert counters["service.sim_seconds"] > 0
        assert snapshot["store"]["size"] == 1
        latency = snapshot["metrics"]["histograms"].get(
            "service.queue.wall_seconds"
        )
        assert latency is not None and latency["count"] >= 1

    def test_faults_job_rolls_up_fault_totals(self):
        async def scenario(service):
            job = service.submit(JobSpec(
                kind="faults", workload="hotspot", scenario=0, seed=5,
                rates=(("kernel", 0.2),),
            ))
            result = await service.result(job)
            return result, service.snapshot()

        result, snapshot = run_service(scenario)
        counters = snapshot["metrics"]["counters"]
        assert counters["service.faults.injected"] == (
            result["fault_stats"]["total_injected"]
        )

    def test_failed_job_counted_and_raises(self):
        async def scenario(service):
            job = service.submit(JobSpec(
                kind="run", source="void main() { this is not minic }",
            ))
            with pytest.raises(RuntimeError):
                await service.result(job)
            return job.state, service.snapshot()

        state, snapshot = run_service(scenario)
        assert state == "failed"
        assert snapshot["metrics"]["counters"]["service.jobs.failed"] == 1
