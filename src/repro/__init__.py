"""COMP: Compiler Optimizations for Manycore Processors — a reproduction.

This package reproduces Song et al., MICRO 2014: three source-to-source
compiler optimizations (data streaming, regularization, and a
shared-memory mechanism for pointer-based structures) for programs that
offload parallel loops from a host CPU to a manycore coprocessor — plus
everything needed to evaluate them without the original Xeon Phi testbed:

* :mod:`repro.minic` — the C-like source language with LEO/OpenMP pragmas;
* :mod:`repro.analysis` — affine access analysis, liveness, dependence
  checking, offload-clause inference;
* :mod:`repro.transforms` — the paper's optimizations as AST rewrites;
* :mod:`repro.hardware` — the simulated host + coprocessor + PCIe machine;
* :mod:`repro.runtime` — the offload runtime (COI-like), the MYO baseline,
  the arena allocator with augmented pointers, and the MiniC interpreter;
* :mod:`repro.workloads` — the twelve Table II benchmarks;
* :mod:`repro.experiments` — harness regenerating every table and figure;
* :mod:`repro.obs` — observability: span tracing on the simulated clock,
  a metrics registry, and Chrome/Perfetto trace export.

Quickstart::

    from repro import optimize_source, run_source

    optimized = optimize_source(source_text)
    result = run_source(optimized, arrays={...}, scalars={...})
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer
from repro.runtime.executor import (
    ExecutionResult,
    Executor,
    Machine,
    run_program,
)
from repro.transforms.pipeline import (
    CompOptimizer,
    OptimizationPlan,
    PipelineResult,
)

__version__ = "1.0.0"

__all__ = [
    "parse",
    "to_source",
    "Machine",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Executor",
    "ExecutionResult",
    "run_program",
    "CompOptimizer",
    "OptimizationPlan",
    "PipelineResult",
    "optimize_source",
    "run_source",
]


def optimize_source(
    source: str,
    plan: Optional[OptimizationPlan] = None,
    auto_offload: bool = True,
) -> str:
    """Apply the COMP optimization pipeline to MiniC source text.

    With *auto_offload* (the default), un-offloaded ``omp parallel for``
    loops first get their offload pragmas inferred, Apricot-style — so
    plain OpenMP source can be fed in directly.  Returns the transformed
    source.  Inspect which optimizations fired by using
    :class:`CompOptimizer` directly on a parsed program.
    """
    from repro.analysis.offload import insert_offload_pragmas

    program = parse(source)
    if auto_offload:
        lengths = plan.array_lengths if plan else None
        insert_offload_pragmas(program, lengths, strict=False)
    CompOptimizer(plan).optimize(program)
    return to_source(program)


def run_source(
    source: str,
    arrays: Optional[Dict[str, np.ndarray]] = None,
    scalars: Optional[Dict[str, object]] = None,
    machine: Optional[Machine] = None,
    entry: str = "main",
) -> ExecutionResult:
    """Parse and execute MiniC source on a simulated machine."""
    return run_program(
        source, arrays=arrays, scalars=scalars, machine=machine, entry=entry
    )
