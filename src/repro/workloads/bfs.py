"""bfs (Rodinia): level-synchronized breadth-first search.

Shape: a host loop iterates BFS levels; each level offloads a parallel
sweep over the nodes that expands the current frontier.  Every irregular
access (edge targets, visited flags) sits behind the frontier guard, so
regularization's safety rule leaves the loop alone; the per-level data is
small relative to the expansion work, so streaming/merging buy nothing
measurable.  Table II: no optimization applies.
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import OptimizationPlan
from repro.workloads.base import MiniCWorkload, Table2Row, input_rng

EXEC_NODES = 1024
PAPER_NODES = 32_000_000  # "32 M points"
DEGREE = 4

_LEVEL_LOOP = """
            if (dist[i] == level) {
                for (int e = 0; e < degree; e++) {
                    int nb = edges[degree * i + e];
                    if (dist[nb] == -1) {
                        dist[nb] = level + 1;
                        found += 1;
                    }
                }
                float w = 0.0;
                for (int r = 0; r < 96; r++) {
                    w = w + sqrt(weight[i] + (float)r);
                }
                cost[i] = w;
            }
"""

SOURCE = f"""
void main() {{
    int level = 0;
    int frontier_size = 1;
    while (frontier_size > 0 && level < maxlevel) {{
        int found = 0;
#pragma omp parallel for reduction(+:found)
        for (int i = 0; i < nnodes; i++) {{
{_LEVEL_LOOP}
        }}
        frontier_size = found;
        level = level + 1;
    }}
    levels = level;
}}
"""

# The hand LEO port: the graph crosses the bus once; the level loop runs
# on the device, synchronizing levels through device-resident scalars.
MIC_SOURCE = f"""
void main() {{
#pragma offload target(mic:0) in(edges : length(degree * nnodes)) inout(dist : length(nnodes)) in(weight : length(nnodes)) inout(cost : length(nnodes)) in(nnodes) in(degree) in(maxlevel)
    {{
        int level = 0;
        int frontier_size = 1;
        while (frontier_size > 0 && level < maxlevel) {{
            int found = 0;
#pragma omp parallel for reduction(+:found)
            for (int i = 0; i < nnodes; i++) {{
{_LEVEL_LOOP}
            }}
            frontier_size = found;
            level = level + 1;
        }}
    }}
}}
"""


def make_arrays(seed=None):
    """Build the breadth-first search benchmark's executed-scale input arrays."""
    rng = input_rng(seed, 13)
    n = EXEC_NODES
    # A shallow random graph: node i connects to later nodes, keeping the
    # frontier expanding for several levels.
    edges = np.zeros(n * DEGREE, dtype=np.int32)
    for i in range(n):
        lo = min(i + 1, n - 1)
        hi = min(i + 64, n)
        edges[i * DEGREE : (i + 1) * DEGREE] = rng.integers(
            lo, max(hi, lo + 1), DEGREE
        )
    dist = np.full(n, -1, dtype=np.int32)
    dist[0] = 0
    return {
        "edges": edges,
        "dist": dist,
        "weight": rng.random(n).astype(np.float32),
        "cost": np.zeros(n, dtype=np.float32),
    }


def make() -> MiniCWorkload:
    """Construct the bfs workload instance."""
    workload = MiniCWorkload(
        name="bfs",
        source=SOURCE,
        table2=Table2Row(
            suite="Rodinia",
            paper_input="32 M points",
            kloc=0.359,
        ),
        make_arrays=make_arrays,
        scalars={
            "nnodes": EXEC_NODES,
            "degree": DEGREE,
            "maxlevel": 30,
        },
        sim_scale=PAPER_NODES / EXEC_NODES,
        output_arrays=["dist", "cost"],
        array_length_hints={
            "edges": "degree * nnodes",
            "dist": "nnodes",
            "weight": "nnodes",
            "cost": "nnodes",
        },
        plan=OptimizationPlan(),
        description="level-synchronized BFS with guarded irregular expansion",
    )
    workload.mic_source = MIC_SOURCE
    return workload
