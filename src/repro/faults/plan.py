"""Fault plans: deterministic, seed-driven schedules of injected faults.

A plan is consulted once per *fault site operation* — each host-to-device
DMA, device-to-host DMA, kernel launch, device allocation, signal wait,
and offload entry (the ``device`` site, whose only kind is a full
``reset``) asks :meth:`FaultPlan.draw` whether this particular operation
fails.  Operations are numbered per site in issue order, which the
simulator guarantees is deterministic, and every site draws from its own
seed-derived random stream, so a plan built from the same seed always
injects the same faults at the same places — regardless of which other
sites are consulted in between: same seed ⇒ identical
:class:`~repro.faults.stats.FaultStats` and identical outputs.

Two scheduling modes compose:

* **seeded** — every operation draws against a per-site probability from
  a ``numpy`` generator;
* **scripted** — explicit :class:`FaultSpec` entries pin a fault to the
  n-th operation of a site, for targeted tests ("the third h2d transfer
  is corrupted").

Besides the *announced* kinds (the operation visibly fails and the
recovery ladder fires), sites with a data payload carry **silent**
kinds — ``h2d:silent``, ``d2h:silent``, ``kernel:sdc`` and the
``arena`` site's ``bitflip`` — which flip payload bytes without raising
anything.  Silent kinds never share a random stream with the announced
kinds of their site (adding them cannot perturb an existing seeded
schedule); they are drawn through :meth:`FaultPlan.draw_silent` against
``"site:kind"`` rate keys (e.g. ``rates={"h2d:silent": 0.05}``), which
default to 0 so no plan schedules them unless asked.  Detecting and
surviving them is the :class:`~repro.runtime.integrity.IntegrityManager`'s
job.

Multi-device runs add a **device dimension**: a fleet runtime passes the
active device's index to :meth:`FaultPlan.draw` / :meth:`draw_silent`,
and each ``(site, device)`` pair gets its own counter and its own
seed-derived stream (entropy carries a device discriminator the same way
silent streams carry theirs).  Adding device K+1 to a fleet therefore
never perturbs the draw sequences of devices 0..K, and a single-device
run — which passes no device at all — stays bit-identical to the
pre-fleet schedules.  Rates and scripted specs can be device-scoped with
a ``devK:`` prefix (``rates={"dev0:device": 0.5}``,
``FaultSpec("device", 0, "reset", device=1)``); un-scoped entries apply
to every device, and un-scoped scripted specs pin to the n-th draw of a
site *in global issue order* regardless of which device draws it.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

#: Every place the runtime consults the plan.  ``arena`` is the
#: shared-memory segment upload path, whose only fault kind is a silent
#: bit flip.
FAULT_SITES = ("h2d", "d2h", "kernel", "alloc", "signal", "device", "arena")

#: Fault kinds available at each site (announced kinds first — a
#: scripted spec with no explicit kind defaults to the first entry).
SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    "h2d": ("corrupt", "stall", "silent"),
    "d2h": ("corrupt", "stall", "silent"),
    "kernel": ("crash", "hang", "sdc"),
    "alloc": ("oom",),
    "signal": ("lost",),
    "device": ("reset",),
    "arena": ("bitflip",),
}

#: Silent-corruption kinds per site: the operation "succeeds" but the
#: payload is wrong.  Nothing raises; only checksum verification (the
#: integrity layer) can notice.
SILENT_KINDS: Dict[str, Tuple[str, ...]] = {
    "h2d": ("silent",),
    "d2h": ("silent",),
    "kernel": ("sdc",),
    "arena": ("bitflip",),
}

#: Kinds a site can raise through the announced (self-detecting) path.
ANNOUNCED_KINDS: Dict[str, Tuple[str, ...]] = {
    site: tuple(k for k in kinds if k not in SILENT_KINDS.get(site, ()))
    for site, kinds in SITE_KINDS.items()
}

#: Kinds :meth:`FaultPlan.draw` selects among.  For legacy sites this is
#: exactly the announced tuple (so seeded kind selection is untouched by
#: the silent taxonomy); an all-silent site like ``arena`` draws its
#: silent kind directly — there is nothing else it could raise.
_DRAW_KINDS: Dict[str, Tuple[str, ...]] = {
    site: ANNOUNCED_KINDS[site] or SITE_KINDS[site] for site in SITE_KINDS
}

#: Default per-operation fault probability of a seeded plan.  Rates are
#: deliberately high for a simulator — a campaign of a few scenarios
#: should exercise every recovery path, not model a real PCIe BER.
#: Device resets are opt-in (rate 0): surviving one requires the
#: checkpoint/restart machinery to be enabled on the policy, so a plan
#: never schedules resets unless the campaign asked for them.  Silent
#: kinds are likewise opt-in: arena bit flips via the plain ``arena``
#: rate, the rest via composite ``"site:kind"`` keys
#: (``"h2d:silent"``, ``"d2h:silent"``, ``"kernel:sdc"``) which are
#: absent here and therefore default to 0.
DEFAULT_RATES: Dict[str, float] = {
    "h2d": 0.02,
    "d2h": 0.02,
    "kernel": 0.01,
    "alloc": 0.005,
    "signal": 0.01,
    "device": 0.0,
    "arena": 0.0,
}


#: ``devK:`` prefix on a rate key or recovery-action label, scoping it to
#: one device of a fleet.
_DEVICE_KEY_RE = re.compile(r"^dev(\d+):(.*)$")


def split_device_key(key: str) -> Tuple[Optional[int], str]:
    """Split an optional ``devK:`` prefix off *key*.

    Returns ``(device_index, rest)`` — ``(None, key)`` when the key is
    not device-scoped.  ``split_device_key("dev2:h2d:silent")`` is
    ``(2, "h2d:silent")``.
    """
    match = _DEVICE_KEY_RE.match(key)
    if match is None:
        return None, key
    return int(match.group(1)), match.group(2)


def _valid_rate_key(key: object) -> bool:
    """Whether *key* names a fault site or a ``site:kind`` silent rate,
    optionally scoped to one device with a ``devK:`` prefix."""
    if not isinstance(key, str):
        return False
    _, key = split_device_key(key)
    if key in SITE_KINDS:
        return True
    site, _, kind = key.partition(":")
    return site in SITE_KINDS and kind in SILENT_KINDS.get(site, ())


def _normalize_rate_key(key: str) -> str:
    """Collapse a ``site:kind`` key to ``site`` on all-silent sites.

    ``"arena:bitflip"`` and ``"arena"`` are the same schedule (the site
    has only one kind and no announced path), so both spellings feed the
    site's regular draw stream.  A ``devK:`` prefix is preserved.
    """
    device, rest = split_device_key(key)
    site, _, kind = rest.partition(":")
    if kind and not ANNOUNCED_KINDS.get(site, ()):
        rest = site
    return rest if device is None else f"dev{device}:{rest}"


@dataclass(frozen=True)
class Fault:
    """One injected fault, as handed to the runtime."""

    site: str
    kind: str
    #: Fraction of the nominal operation duration wasted before the
    #: failure is detected (used by stall/crash kinds).
    severity: float = 0.5
    #: Per-site operation ordinal the fault landed on.
    index: int = 0
    #: Fleet device index the faulted operation ran on; ``None`` for a
    #: single-device run (the pre-fleet shape).
    device: Optional[int] = None


@dataclass(frozen=True)
class FaultSpec:
    """A scripted fault: the *index*-th operation at *site* fails.

    With *device* set, *index* counts only that device's operations at
    the site; without it, *index* counts operations in global issue
    order across the whole fleet (which for one device is the same
    thing).
    """

    site: str
    index: int
    kind: Optional[str] = None
    severity: float = 0.5
    device: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITE_KINDS:
            raise ValueError(
                f"unknown fault site {self.site!r}; know {sorted(SITE_KINDS)}"
            )
        if self.index < 0:
            raise ValueError(
                f"fault index must be >= 0, got {self.index} "
                f"(operations are numbered per site from 0)"
            )
        if not 0.0 < self.severity <= 1.0:
            raise ValueError(
                f"severity must be in (0, 1], got {self.severity} "
                f"(the fraction of the operation wasted before detection)"
            )
        kind = self.kind
        if kind is not None and kind not in SITE_KINDS[self.site]:
            raise ValueError(
                f"site {self.site!r} cannot raise {kind!r}; "
                f"know {SITE_KINDS[self.site]}"
            )
        if self.device is not None and self.device < 0:
            raise ValueError(
                f"device index must be >= 0, got {self.device} "
                f"(fleet devices are numbered dev0, dev1, ...)"
            )


class FaultPlan:
    """A deterministic schedule of faults for one run.

    *seed* drives the probabilistic schedule (any value accepted by
    :func:`numpy.random.default_rng`, so tuples of ints work for derived
    streams).  *rates* overrides :data:`DEFAULT_RATES` per site — silent
    kinds on mixed sites are keyed ``"site:kind"`` (``"h2d:silent"``,
    ``"d2h:silent"``, ``"kernel:sdc"``) and default to 0; passing only
    *scripted* specs (no seed) yields a plan that injects exactly those
    faults and nothing else.  *max_faults* caps the total number of
    injected faults, bounding worst-case recovery time.
    """

    def __init__(
        self,
        seed=None,
        rates: Optional[Dict[str, float]] = None,
        scripted: Iterable[FaultSpec] = (),
        max_faults: Optional[int] = None,
    ):
        if rates is None:
            rates = dict(DEFAULT_RATES) if seed is not None else {}
        unknown = {key for key in rates if not _valid_rate_key(key)}
        if unknown:
            raise ValueError(f"unknown fault sites in rates: {sorted(unknown)}")
        for key, value in rates.items():
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not math.isfinite(value)
                or not 0.0 <= value <= 1.0
            ):
                raise ValueError(
                    f"fault rate for site {key!r} must be a finite "
                    f"probability in [0, 1], got {value!r}"
                )
        self.seed = seed
        self.rates = {_normalize_rate_key(k): float(v) for k, v in rates.items()}
        self.max_faults = max_faults
        # Scripted specs are keyed (site, index, device) — device None
        # for un-scoped specs, which pin to the n-th draw of the site in
        # global issue order; device-scoped specs pin to the n-th draw
        # *by that device* and are consulted first.
        self._scripted: Dict[Tuple[str, int, Optional[int]], FaultSpec] = {}
        self._scripted_silent: Dict[Tuple[str, int, Optional[int]], FaultSpec] = {}
        for spec in scripted:
            if (
                spec.kind in SILENT_KINDS.get(spec.site, ())
                and ANNOUNCED_KINDS[spec.site]
            ):
                # Silent kind on a mixed site: pinned to the n-th
                # *silent* draw, so it rides the silent stream and never
                # displaces an announced scripted fault at the same index.
                self._scripted_silent[(spec.site, spec.index, spec.device)] = spec
            else:
                self._scripted[(spec.site, spec.index, spec.device)] = spec
        # Legacy (device-less) streams keyed by site; device streams
        # keyed (site, device).  A single-device run only ever touches
        # the former, so its schedules are bit-identical to pre-fleet.
        self._rngs: Dict[str, np.random.Generator] = {}
        self._silent_rngs: Dict[str, np.random.Generator] = {}
        self._counters: Dict[str, int] = {}
        self._silent_counters: Dict[str, int] = {}
        self._device_rngs: Dict[Tuple[str, int], np.random.Generator] = {}
        self._device_silent_rngs: Dict[Tuple[str, int], np.random.Generator] = {}
        self._device_counters: Dict[Tuple[str, int], int] = {}
        self._device_silent_counters: Dict[Tuple[str, int], int] = {}
        self._emitted = 0

    def _site_rng(self, site: str) -> np.random.Generator:
        """The independent random stream for *site*.

        Each site derives its own generator from ``(seed, site index)``,
        so the draws a site sees depend only on how many operations *it*
        has issued — never on which other sites were consulted in
        between.  Adding a new fault site (or instrumenting a new code
        path) therefore cannot perturb the schedules of existing sites.
        """
        rng = self._rngs.get(site)
        if rng is None:
            seed = 0 if self.seed is None else self.seed
            if isinstance(seed, (tuple, list)):
                entropy = tuple(seed) + (FAULT_SITES.index(site),)
            else:
                entropy = (seed, FAULT_SITES.index(site))
            rng = np.random.default_rng(entropy)
            self._rngs[site] = rng
        return rng

    def _silent_rng(self, site: str) -> np.random.Generator:
        """The independent random stream for *site*'s silent draws.

        Silent kinds on mixed sites never touch the announced stream:
        the entropy tuple carries a trailing discriminator, so enabling
        ``"h2d:silent"`` cannot perturb a seeded ``h2d`` schedule.
        """
        rng = self._silent_rngs.get(site)
        if rng is None:
            seed = 0 if self.seed is None else self.seed
            if isinstance(seed, (tuple, list)):
                entropy = tuple(seed) + (FAULT_SITES.index(site), 1)
            else:
                entropy = (seed, FAULT_SITES.index(site), 1)
            rng = np.random.default_rng(entropy)
            self._silent_rngs[site] = rng
        return rng

    def _device_rng(self, site: str, device: int, silent: bool) -> np.random.Generator:
        """The independent random stream for *site* on fleet *device*.

        Entropy extends the site's tuple with a discriminator (2 for
        announced, 3 for silent — 0/absent and 1 being taken by the
        legacy streams) and the device index, so each ``(site, device)``
        pair draws independently: device K+1 joining the fleet can never
        perturb the sequences devices 0..K see, and no device stream
        collides with the legacy single-device streams.
        """
        cache = self._device_silent_rngs if silent else self._device_rngs
        rng = cache.get((site, device))
        if rng is None:
            seed = 0 if self.seed is None else self.seed
            tag = 3 if silent else 2
            if isinstance(seed, (tuple, list)):
                entropy = tuple(seed) + (FAULT_SITES.index(site), tag, device)
            else:
                entropy = (seed, FAULT_SITES.index(site), tag, device)
            rng = np.random.default_rng(entropy)
            cache[(site, device)] = rng
        return rng

    def _rate_for(self, site: str, device: Optional[int], kind: Optional[str]) -> float:
        """Effective rate for a draw: the device-scoped key wins, then
        the plain site (or ``site:kind``) key applies fleet-wide."""
        rest = site if kind is None else f"{site}:{kind}"
        if device is not None:
            scoped = self.rates.get(f"dev{device}:{rest}")
            if scoped is not None:
                return scoped
        return self.rates.get(rest, 0.0)

    # -- drawing ---------------------------------------------------------------

    def draw(self, site: str, device: Optional[int] = None) -> Optional[Fault]:
        """The fault (if any) hitting the next operation at *site*.

        *device* is the fleet device index issuing the operation; a
        single-device runtime passes nothing and the draw is
        bit-identical to the pre-fleet behavior.  The global per-site
        counter advances on every draw regardless of device (so
        :meth:`operations` and un-scoped scripted specs keep their
        issue-order meaning), while device draws additionally advance —
        and take their randomness from — the ``(site, device)`` stream.
        """
        if site not in SITE_KINDS:
            raise ValueError(
                f"unknown fault site {site!r}; know {sorted(SITE_KINDS)}"
            )
        index = self._counters.get(site, 0)
        self._counters[site] = index + 1
        dev_index = None
        if device is not None:
            dev_index = self._device_counters.get((site, device), 0)
            self._device_counters[(site, device)] = dev_index + 1
        spec = None
        spec_index = index
        if device is not None:
            spec = self._scripted.get((site, dev_index, device))
            if spec is not None:
                spec_index = dev_index
        if spec is None:
            spec = self._scripted.get((site, index, None))
            spec_index = index
        if spec is not None:
            self._emitted += 1
            return Fault(
                site=site,
                kind=spec.kind or _DRAW_KINDS[site][0],
                severity=spec.severity,
                index=spec_index,
                device=device,
            )
        rate = self._rate_for(site, device, None)
        if rate <= 0.0:
            return None
        if self.max_faults is not None and self._emitted >= self.max_faults:
            return None
        if device is None:
            rng = self._site_rng(site)
        else:
            rng = self._device_rng(site, device, silent=False)
            index = dev_index
        if float(rng.random()) >= rate:
            return None
        kinds = _DRAW_KINDS[site]
        kind = kinds[int(rng.integers(len(kinds)))]
        # Keep severity strictly inside (0, 1): a fault always wastes
        # *some* time, and never more than the whole operation.
        severity = 0.1 + 0.8 * float(rng.random())
        self._emitted += 1
        return Fault(
            site=site, kind=kind, severity=severity, index=index, device=device
        )

    def draw_silent(self, site: str, device: Optional[int] = None) -> Optional[Fault]:
        """The silent fault (if any) hitting the next payload at *site*.

        Only mixed sites (those with both announced and silent kinds —
        ``h2d``, ``d2h``, ``kernel``) are drawn here; an all-silent site
        like ``arena`` goes through :meth:`draw`.  The draw consults the
        composite ``"site:kind"`` rate and the site's dedicated silent
        stream, so silent schedules are independent of announced ones.
        *device* scopes the draw to a fleet device's silent stream the
        same way it does for :meth:`draw`.
        """
        silent = SILENT_KINDS.get(site)
        if silent is None or not ANNOUNCED_KINDS.get(site, ()):
            raise ValueError(
                f"site {site!r} has no separate silent stream; "
                f"know {sorted(k for k in SILENT_KINDS if ANNOUNCED_KINDS[k])}"
            )
        kind = silent[0]
        index = self._silent_counters.get(site, 0)
        self._silent_counters[site] = index + 1
        dev_index = None
        if device is not None:
            dev_index = self._device_silent_counters.get((site, device), 0)
            self._device_silent_counters[(site, device)] = dev_index + 1
        spec = None
        spec_index = index
        if device is not None:
            spec = self._scripted_silent.get((site, dev_index, device))
            if spec is not None:
                spec_index = dev_index
        if spec is None:
            spec = self._scripted_silent.get((site, index, None))
            spec_index = index
        if spec is not None:
            self._emitted += 1
            return Fault(
                site=site,
                kind=kind,
                severity=spec.severity,
                index=spec_index,
                device=device,
            )
        rate = self._rate_for(site, device, kind)
        if rate <= 0.0:
            return None
        if self.max_faults is not None and self._emitted >= self.max_faults:
            return None
        if device is None:
            rng = self._silent_rng(site)
        else:
            rng = self._device_rng(site, device, silent=True)
            index = dev_index
        if float(rng.random()) >= rate:
            return None
        severity = 0.1 + 0.8 * float(rng.random())
        self._emitted += 1
        return Fault(
            site=site, kind=kind, severity=severity, index=index, device=device
        )

    # -- bookkeeping -----------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Faults injected so far."""
        return self._emitted

    def operations(self, site: str, device: Optional[int] = None) -> int:
        """Operations drawn so far at *site* (optionally by one device).

        The device-less count is the global issue-order total: every
        draw advances it whether or not it carried a device.
        """
        if device is not None:
            return self._device_counters.get((site, device), 0)
        return self._counters.get(site, 0)

    def silent_operations(self, site: str, device: Optional[int] = None) -> int:
        """Silent-stream draws consumed so far at *site*."""
        if device is not None:
            return self._device_silent_counters.get((site, device), 0)
        return self._silent_counters.get(site, 0)
