"""Vectorized batch execution of parallel loops.

The tree-walking interpreter in :mod:`repro.runtime.executor` evaluates
every iteration of every ``#pragma omp parallel for`` loop trip by trip,
which makes ``_eval`` the hot path of every workload run.  The paper's
own premise (Section IV) is that regular, affine loop bodies vectorize —
and the same regularity lets us *interpret* them as whole-array numpy
operations: one symbolic walk of the body evaluates each expression for
all iterations ("lanes") at once.

Semantics are bit-identical to the tree walker by construction:

* Scalar loads become float64/int64 lane vectors holding exactly the
  Python ``float``/``int`` values the tree walker computes per lane;
  stores cast back with the same numpy casting rules.
* Builtins whose numpy ufuncs are not bit-identical to :mod:`math`
  (``exp``, ``log``, ``pow``, ``sin``, ``cos``) share one numpy-backed
  reference implementation with the tree walker — the tree calls the
  scalar path of :mod:`repro.runtime.mathops` and this engine calls the
  vector path, so both evaluate through the same ufunc kernels.
* Control flow is predicated: ``if``/``?:`` evaluate both arms under
  masks and blend with ``np.where``; ``&&``/``||`` evaluate their right
  side only under the lanes the tree's short-circuit would reach;
  ``return`` inside an inlined function narrows the frame's live mask.
* Op counters accrue analytically — each operation adds its per-lane
  cost multiplied by the number of active lanes, which equals the tree
  walker's per-lane ``+= 1`` total exactly (every increment is an
  integer-valued float far below 2**53, so no rounding can differ).
* Cross-lane dependences are detected, not assumed away: every array
  touched by the body is shadowed by ``written_by``/``read_max``
  lane-ordinal maps keyed by array identity (so aliases share maps), and
  any read or write whose lane-sequential tree result could differ from
  the vector result bails out.

Any construct the walker does not handle — ``while``/``break``,
lane-varying inner-loop bounds, writes to enclosing scalars, unknown
calls, cross-lane hazards, mixed-type blends — raises the internal
:class:`BatchIneligible` signal and the loop falls back transparently to
the tree walker.  Runtime faults (out-of-bounds, division by zero,
missing transfers, math domain errors) also fall back, so the tree path
reproduces the exact error *and* the exact partial side effects the
sequential semantics mandate.  The fallback is safe because batch
execution is side-effect-free until commit: array writes are staged
copy-on-write, counters accumulate locally, and the only re-executed
work — the loop init — is required pure.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ExecutionError, ReproError
from repro.analysis.array_access import AccessKind
from repro.hardware.device import OpCounters
from repro.minic import ast_nodes as ast
from repro.runtime import mathops

__all__ = ["BatchIneligible", "analyze_loop", "try_run_parallel_for"]


class BatchIneligible(Exception):
    """Internal signal: fall back to the tree-walking interpreter."""


class _Lanes:
    """A per-lane vector of scalar values (one element per iteration).

    Wrapping keeps lane vectors distinguishable from real MiniC arrays,
    which are also ``np.ndarray`` but live in the memory spaces.
    """

    __slots__ = ("a",)

    def __init__(self, a: np.ndarray):
        self.a = a


class _Partial:
    """A lane vector initialized only where ``mask`` holds."""

    __slots__ = ("a", "mask")

    def __init__(self, a: np.ndarray, mask: np.ndarray):
        self.a = a
        self.mask = mask


class _Frame:
    """One inlining level: the loop body or an inlined function call.

    ``active`` is the frame's live mask (narrowed by ``return``); scopes
    are ``(bindings, entry_mask)`` pairs so an assignment under the same
    mask its scope was entered with can overwrite in place instead of
    blending — which keeps lane-invariant scalars (inner loop counters)
    plain Python values.
    """

    __slots__ = ("scopes", "active", "ret_value", "ret_mask", "parent_env", "is_func")

    def __init__(self, parent_env, active, bindings=None, is_func=False):
        self.scopes: List[Tuple[dict, object]] = [(bindings or {}, active)]
        self.active = active
        self.ret_value = None
        self.ret_mask = None  # lanes that have executed a return
        self.parent_env = parent_env
        self.is_func = is_func


# --------------------------------------------------------------------------
# Builtins
# --------------------------------------------------------------------------

# numpy's SIMD float64 kernels differ from libm by ULPs for these, so the
# tree walker and the vector engines share the numpy-backed reference
# implementations in repro.runtime.mathops (scalar and vector calls go
# through the same ufunc kernels and are bitwise equal).


# ==========================================================================
# Static eligibility
# ==========================================================================


class _StaticInfo:
    """Cacheable per-loop-node verdict."""

    __slots__ = ("eligible", "reason")

    def __init__(self):
        self.eligible = True
        self.reason = ""

    def reject(self, reason: str) -> None:
        self.eligible = False
        self.reason = self.reason or reason


_REJECTED_STMTS = (
    ast.While,
    ast.DoWhile,
    ast.Break,
    ast.Continue,
    ast.PragmaStmt,
    ast.OffloadBlock,
)

_DISALLOWED_FUNCS = frozenset(
    {
        "malloc",
        "free",
        "Offload_shared_malloc",
        "Offload_shared_free",
        "shared_malloc",
        "shared_free",
        "arena_alloc",
        "arena_free",
    }
)


def _loop_var_name(loop: ast.For) -> Optional[str]:
    if isinstance(loop.init, ast.VarDecl):
        return loop.init.name
    if isinstance(loop.init, ast.Assign) and isinstance(loop.init.target, ast.Ident):
        return loop.init.target.name
    return None


def _walk_expr(expr: ast.Expr):
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(c for c in node.children() if isinstance(c, ast.Expr))


def analyze_loop(loop: ast.For, functions: Dict[str, ast.FuncDef]) -> _StaticInfo:
    """One-time static screen of a parallel loop body.

    Rejects constructs the vectorizer never handles: irregular control
    flow, writes to scalars the body did not declare, allocation
    intrinsics, recursion, unknown calls.  Dynamic conditions —
    lane-varying inner-loop bounds, cross-lane hazards, mixed-type
    blends — are checked during the vector walk itself.
    """
    info = _StaticInfo()
    loop_var = _loop_var_name(loop)
    if loop_var is None:
        info.reject("unrecognized induction variable")
        return info

    checked_functions: Set[str] = set()

    def check_expr(expr: ast.Expr, stack: Tuple[str, ...]) -> None:
        for node in _walk_expr(expr):
            if isinstance(node, ast.UnOp) and node.op not in ("-", "!"):
                info.reject(f"unary operator {node.op!r}")
            elif isinstance(node, ast.Call):
                name = node.func
                if name in _DISALLOWED_FUNCS:
                    info.reject(f"allocation intrinsic {name}()")
                elif name in functions:
                    if name in stack:
                        info.reject(f"recursive call to {name}()")
                    else:
                        check_function(functions[name], stack + (name,))
                elif name not in _VECTOR_BUILTINS:
                    info.reject(f"call to unknown function {name}()")

    def record_write(target, declared: List[Set[str]], in_function: bool) -> None:
        if isinstance(target, ast.Ident):
            if not in_function and target.name == loop_var:
                info.reject("assignment to the induction variable")
            elif not any(target.name in scope for scope in declared):
                info.reject(f"write to enclosing scalar {target.name!r}")
        elif isinstance(target, ast.Subscript) and isinstance(target.base, ast.Ident):
            pass  # array writes are hazard-tracked dynamically by identity
        elif (
            isinstance(target, ast.Member)
            and isinstance(target.base, ast.Subscript)
            and isinstance(target.base.base, ast.Ident)
        ):
            pass
        else:
            info.reject(f"write to {type(target).__name__}")

    def check_stmt(stmt, declared, in_function: bool, stack) -> None:
        if isinstance(stmt, _REJECTED_STMTS):
            info.reject(f"{type(stmt).__name__} in loop body")
            return
        if isinstance(stmt, ast.For) and stmt.pragmas:
            info.reject("pragma on an inner loop")
            return
        if isinstance(stmt, ast.VarDecl):
            if not isinstance(stmt.type, (ast.BaseType, ast.PointerType)):
                info.reject(f"local of type {stmt.type}")
            if stmt.init is not None:
                check_expr(stmt.init, stack)
            declared[-1].add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            check_expr(stmt.value, stack)
            if not isinstance(stmt.target, ast.Ident):
                check_expr(stmt.target, stack)
            record_write(stmt.target, declared, in_function)
        elif isinstance(stmt, ast.ExprStmt):
            check_expr(stmt.expr, stack)
        elif isinstance(stmt, ast.Block):
            declared.append(set())
            for s in stmt.stmts:
                check_stmt(s, declared, in_function, stack)
            declared.pop()
        elif isinstance(stmt, ast.If):
            check_expr(stmt.cond, stack)
            check_stmt(stmt.then, declared, in_function, stack)
            if stmt.other is not None:
                check_stmt(stmt.other, declared, in_function, stack)
        elif isinstance(stmt, ast.For):
            declared.append(set())
            if stmt.init is None or stmt.cond is None or stmt.step is None:
                info.reject("inner loop without init/cond/step")
            else:
                check_stmt(stmt.init, declared, in_function, stack)
                check_expr(stmt.cond, stack)
                check_stmt(stmt.step, declared, in_function, stack)
            check_stmt(stmt.body, declared, in_function, stack)
            declared.pop()
        elif isinstance(stmt, ast.Return):
            if not in_function:
                info.reject("return inside parallel loop body")
            elif stmt.value is not None:
                check_expr(stmt.value, stack)
        else:
            info.reject(f"{type(stmt).__name__} statement")

    def check_function(func: ast.FuncDef, stack) -> None:
        if func.name in checked_functions or not info.eligible:
            return
        checked_functions.add(func.name)
        if func.body is None:
            info.reject(f"{func.name}() has no body")
            return
        declared = [set(p.name for p in func.params)]
        check_stmt(func.body, declared, True, stack)

    check_stmt(loop.body, [{loop_var}], False, ())
    return info


# ==========================================================================
# Loop-bounds recognition
# ==========================================================================


def _is_pure(expr: ast.Expr) -> bool:
    """No calls or memory reads: safe to evaluate once, and to re-evaluate
    on fallback."""
    return not any(
        isinstance(n, (ast.Call, ast.Subscript, ast.Member)) for n in _walk_expr(expr)
    )


def _step_increment(step: ast.Stmt, var: str) -> Optional[ast.Expr]:
    """The per-trip increment expression, or None when unrecognized.

    Handles ``i += c`` / ``i -= c`` / ``i = i + c`` / ``i = c + i`` /
    ``i = i - c`` (subtractions return a negating UnOp)."""
    if not (
        isinstance(step, ast.Assign)
        and isinstance(step.target, ast.Ident)
        and step.target.name == var
    ):
        return None
    if step.op == "+=":
        return step.value
    if step.op == "-=":
        return ast.UnOp("-", step.value)
    if step.op == "=" and isinstance(step.value, ast.BinOp):
        b = step.value
        if b.op == "+" and isinstance(b.left, ast.Ident) and b.left.name == var:
            return b.right
        if b.op == "+" and isinstance(b.right, ast.Ident) and b.right.name == var:
            return b.left
        if b.op == "-" and isinstance(b.left, ast.Ident) and b.left.name == var:
            return ast.UnOp("-", b.right)
    return None


def _trip_count(start: int, bound: int, op: str, stride: int) -> Optional[int]:
    """Exact trip count of ``for (i = start; i OP bound; i += stride)``."""
    if op in ("<", "<="):
        limit = bound + (1 if op == "<=" else 0)
        if start >= limit:
            return 0
        if stride <= 0:
            return None  # the tree walker would not terminate either
        return -((start - limit) // stride)
    if op in (">", ">="):
        limit = bound - (1 if op == ">=" else 0)
        if start <= limit:
            return 0
        if stride >= 0:
            return None
        return -((limit - start) // (-stride))
    return None


# ==========================================================================
# The vector walker
# ==========================================================================


class _BatchRunner:
    """Executes one parallel loop body across all lanes at once."""

    def __init__(self, executor, lanes: np.ndarray, global_induction: Optional[str]):
        self.ex = executor
        self.lanes = lanes
        self.n = len(lanes)
        self.ordinals = np.arange(self.n, dtype=np.int64)
        self.counters = OpCounters()
        # Induction variable visible at file scope (assignment-style init):
        # inlined functions must not read its stale pre-loop root value.
        self.global_induction = global_induction
        # id(real array) -> staged copy-on-write image / the real array
        self.staged: Dict[int, np.ndarray] = {}
        self.real: Dict[int, np.ndarray] = {}
        # (id(real array), field) -> lane-ordinal hazard maps.  Keying by
        # identity makes aliased names (pointer locals, pre-loop aliases)
        # share one dependence record.
        self.written_by: Dict[Tuple[int, Optional[str]], np.ndarray] = {}
        self.read_max: Dict[Tuple[int, Optional[str]], np.ndarray] = {}
        self.call_stack: Tuple[str, ...] = ()

    # -- masks -------------------------------------------------------------

    def _popcount(self, mask) -> int:
        return self.n if mask is None else int(np.count_nonzero(mask))

    @staticmethod
    def _and(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    @staticmethod
    def _masks_equal(a, b) -> bool:
        if a is b:
            return True
        if a is None:
            return b is not None and bool(b.all())
        if b is None:
            return bool(a.all())
        return bool((a == b).all())

    def _first_active(self, mask) -> int:
        if mask is None:
            return 0
        return int(np.argmax(mask))

    def _full(self, mask) -> np.ndarray:
        return np.ones(self.n, dtype=bool) if mask is None else mask

    # -- value helpers ------------------------------------------------------

    def _as_vector(self, value) -> np.ndarray:
        """Broadcast a value to a full lane vector."""
        if isinstance(value, _Lanes):
            return value.a
        if isinstance(value, (bool, int, np.integer)):
            return np.full(self.n, int(value), dtype=np.int64)
        if isinstance(value, (float, np.floating)):
            return np.full(self.n, float(value), dtype=np.float64)
        raise BatchIneligible(f"cannot broadcast {type(value).__name__}")

    @staticmethod
    def _kind(value) -> str:
        """'f' for float-valued, 'i' for int-valued, '?' otherwise."""
        if isinstance(value, _Lanes):
            return "f" if value.a.dtype.kind == "f" else "i"
        if isinstance(value, (bool, int, np.integer)):
            return "i"
        if isinstance(value, (float, np.floating)):
            return "f"
        return "?"

    def _where(self, mask, new, old):
        """Per-lane blend; bails on mixed int/float (the tree walker keeps
        per-lane Python types that a promoted vector cannot model)."""
        new_kind, old_kind = self._kind(new), self._kind(old)
        if new_kind == "?" or old_kind == "?":
            raise BatchIneligible("blend of non-numeric values")
        if new_kind != old_kind:
            raise BatchIneligible("blend of int and float lanes")
        return _Lanes(
            np.where(
                mask,
                new.a if isinstance(new, _Lanes) else new,
                old.a if isinstance(old, _Lanes) else old,
            )
        )

    def _truthy(self, value):
        """Per-lane truthiness: a bool vector, or a plain bool when the
        value is lane-invariant."""
        if isinstance(value, _Lanes):
            return value.a != 0
        if isinstance(value, _Partial):
            raise BatchIneligible("truth test of a partially-defined value")
        return bool(value)

    @staticmethod
    def _coerce_int(value):
        if isinstance(value, _Lanes):
            if value.a.dtype.kind == "f":
                return _Lanes(np.trunc(value.a).astype(np.int64))
            return value
        if isinstance(value, (float, np.floating)):
            return int(value)
        return value

    # -- name resolution ----------------------------------------------------

    def _lookup(self, name: str, frame: _Frame, eff):
        for scope, _ in reversed(frame.scopes):
            if name in scope:
                value = scope[name]
                if value is None:
                    raise ExecutionError(f"variable {name!r} used uninitialized")
                if isinstance(value, _Partial):
                    uninit = self._and(eff, ~value.mask)
                    if uninit is None or bool(np.any(uninit)):
                        raise ExecutionError(f"variable {name!r} used uninitialized")
                    return _Lanes(value.a)
                return value
        if frame.is_func and name == self.global_induction:
            # The root binding still holds the pre-loop value; the tree
            # walker would see the current lane's value there.
            raise BatchIneligible("function reads the induction variable")
        return frame.parent_env.get(name)

    def _assign_scalar(self, name: str, value, frame: _Frame, eff) -> None:
        """Assign to a frame-local name, blending under partial masks."""
        for scope, entry_mask in reversed(frame.scopes):
            if name not in scope:
                continue
            old = scope[name]
            old_is_int = (
                isinstance(old, (bool, int, np.integer))
                or (isinstance(old, (_Lanes, _Partial)) and old.a.dtype.kind != "f")
            )
            if old_is_int and not isinstance(value, np.ndarray):
                value = self._coerce_int(value)
            if self._masks_equal(eff, entry_mask) or self._masks_equal(
                eff, self._and(entry_mask, frame.active)
            ):
                # Every lane this scope will ever run under is covered:
                # overwrite in place (keeps scalars scalar).
                scope[name] = value
            elif old is None:
                vec = self._as_vector(value)
                scope[name] = _Partial(vec, self._full(eff).copy())
            elif isinstance(old, _Partial):
                blended = self._where(
                    self._full(eff), _Lanes(self._as_vector(value)), _Lanes(old.a)
                )
                mask = old.mask | self._full(eff)
                scope[name] = blended if bool(mask.all()) else _Partial(blended.a, mask)
            else:
                scope[name] = self._where(
                    self._full(eff),
                    _Lanes(self._as_vector(value)),
                    _Lanes(self._as_vector(old)),
                )
            return
        # The static screen only admits writes to locally declared names;
        # reaching here means it missed a case — bail rather than guess.
        raise BatchIneligible(f"assignment to non-local {name!r}")

    # -- arrays --------------------------------------------------------------

    def _array_image(self, arr: np.ndarray) -> np.ndarray:
        return self.staged.get(id(arr), arr)

    def _array_image_for_write(self, arr: np.ndarray) -> np.ndarray:
        key = id(arr)
        img = self.staged.get(key)
        if img is None:
            img = arr.copy()
            self.staged[key] = img
            self.real[key] = arr
        return img

    def _hazard_maps(self, arr: np.ndarray, field: Optional[str]):
        key = (id(arr), field)
        wb = self.written_by.get(key)
        if wb is None:
            wb = np.full(len(arr), -1, dtype=np.int64)
            self.written_by[key] = wb
            self.read_max[key] = np.full(len(arr), -1, dtype=np.int64)
        return wb, self.read_max[key]

    def _check_read(self, arr, field, slots, ords) -> None:
        """A tree-walk lane sees writes from *earlier* lanes only: bail if
        a later lane has already written a slot this lane reads."""
        wb, rm = self._hazard_maps(arr, field)
        if bool(np.any(wb[slots] > ords)):
            raise BatchIneligible("cross-lane read-after-write dependence")
        np.maximum.at(rm, slots, ords)

    def _check_write(self, arr, field, slots, ords) -> None:
        wb, rm = self._hazard_maps(arr, field)
        if bool(np.any(rm[slots] > ords)):
            # A later lane already read this slot's old value in vector
            # order, but the tree walker would have shown it this write.
            raise BatchIneligible("cross-lane write-after-read dependence")
        if bool(np.any(wb[slots] > ords)):
            raise BatchIneligible("cross-lane write-after-write dependence")
        if len(slots) > 1:
            in_order = np.sort(slots)
            if bool(np.any(in_order[1:] == in_order[:-1])):
                raise BatchIneligible("duplicate write indices in one event")
        wb[slots] = ords

    # -- subscript resolution ----------------------------------------------

    def _resolve_subscript(self, node: ast.Subscript, frame: _Frame, eff):
        """Evaluate base and index; returns (array, slots, ordinals) where
        slots/ordinals cover the effective lanes only.  Index operations
        are charged, exactly like the tree's ``_resolve_subscript``."""
        if not isinstance(node.base, ast.Ident):
            raise BatchIneligible("subscript base is not a name")
        base = self._lookup(node.base.name, frame, eff)
        if not isinstance(base, np.ndarray):
            raise BatchIneligible("subscript of a non-array value")
        index = self._expr(node.index, frame, eff)
        if isinstance(index, _Lanes):
            if index.a.dtype.kind == "f":
                raise BatchIneligible("non-integer subscript")
            idx_full = index.a
        elif isinstance(index, (bool, int, np.integer)):
            idx_full = np.full(self.n, int(index), dtype=np.int64)
        else:
            raise BatchIneligible("non-integer subscript")
        if eff is None:
            slots, ords = idx_full, self.ordinals
        else:
            slots, ords = idx_full[eff], self.ordinals[eff]
        if len(slots) and (slots.min() < 0 or slots.max() >= len(base)):
            bad = slots[(slots < 0) | (slots >= len(base))][0]
            raise ExecutionError(f"index {bad} out of range for array of {len(base)}")
        return base, slots, ords

    def _count_access(self, node, frame, eff, is_write, itemsize, aos, array):
        ex = self.ex
        n_eff = self._popcount(eff)
        cached = array.nbytes * ex.machine.scale <= ex.CACHED_ARRAY_BYTES
        counters = self.counters
        if is_write:
            counters.stores += n_eff
            if not cached:
                counters.bytes_written += itemsize * n_eff
        else:
            counters.loads += n_eff
            if not cached:
                counters.bytes_read += itemsize * n_eff
        if not cached and (aos or self._site_irregular(node, frame, eff)):
            counters.irregular_accesses += n_eff

    def _site_irregular(self, node: ast.Subscript, frame: _Frame, eff) -> bool:
        ex = self.ex
        if not ex._loop_vars:
            return False
        var = ex._loop_vars[-1]
        key = (id(node), var)
        cached = ex._access_cache.get(key)
        if cached is None:
            cached = ex._classify_site(node.index, var, self._int_bindings(frame, eff))
            ex._access_cache[key] = cached
        return cached in (
            AccessKind.INDIRECT,
            AccessKind.NONLINEAR,
            AccessKind.AFFINE,
        )

    def _int_bindings(self, frame: _Frame, eff) -> Dict[str, int]:
        """Integer bindings as the tree walker's scope chain would show
        them, with lane vectors sampled at the first active lane — the
        lane whose evaluation populates the tree's per-site cache."""
        lane = self._first_active(eff)
        bindings: Dict[str, int] = {}
        for scope, _ in reversed(frame.scopes):
            for name, value in scope.items():
                if name in bindings:
                    continue
                if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
                    bindings[name] = int(value)
                elif isinstance(value, _Lanes) and value.a.dtype.kind != "f":
                    bindings[name] = int(value.a[lane])
        for name, value in frame.parent_env.int_bindings().items():
            bindings.setdefault(name, value)
        return bindings

    # ======================================================================
    # Statements
    # ======================================================================

    def run_body(self, body: ast.Stmt, frame: _Frame) -> None:
        self._stmt(body, frame, None)

    def _stmt(self, stmt: ast.Stmt, frame: _Frame, mask) -> None:
        eff = self._and(frame.active, mask)
        if eff is not None and not eff.any():
            return
        t = type(stmt)
        if t is ast.Assign:
            self._stmt_assign(stmt, frame, eff)
        elif t is ast.VarDecl:
            self._stmt_decl(stmt, frame, eff)
        elif t is ast.ExprStmt:
            self._expr(stmt.expr, frame, eff)
        elif t is ast.Block:
            frame.scopes.append(({}, eff))
            try:
                for s in stmt.stmts:
                    self._stmt(s, frame, mask)
            finally:
                frame.scopes.pop()
        elif t is ast.If:
            self._stmt_if(stmt, frame, mask, eff)
        elif t is ast.For:
            self._stmt_for(stmt, frame, mask)
        elif t is ast.Return:
            self._stmt_return(stmt, frame, eff)
        else:
            raise BatchIneligible(f"cannot vectorize {t.__name__}")

    def _stmt_decl(self, stmt: ast.VarDecl, frame: _Frame, eff) -> None:
        if stmt.init is not None:
            value = self._vcoerce(stmt.type, self._expr(stmt.init, frame, eff))
        else:
            value = None
        frame.scopes[-1][0][stmt.name] = value

    def _vcoerce(self, typ: ast.Type, value):
        """The tree walker's ``_coerce`` lifted to lane vectors."""
        if not isinstance(typ, ast.BaseType):
            return value  # pointers and the like pass through unchanged
        if typ.name == "int" and not isinstance(value, np.ndarray):
            return self._coerce_int(value)
        if typ.name in ("float", "double"):
            if isinstance(value, _Lanes):
                if value.a.dtype.kind != "f":
                    return _Lanes(value.a.astype(np.float64))
                return value
            if not isinstance(value, np.ndarray):
                return float(value)
        return value

    def _stmt_assign(self, stmt: ast.Assign, frame: _Frame, eff) -> None:
        value = self._expr(stmt.value, frame, eff)
        target = stmt.target
        if stmt.op != "=":
            current = self._expr(target, frame, eff)
            value = self._vbinop_value(stmt.op[0], current, value, eff)
        t = type(target)
        if t is ast.Ident:
            self._assign_scalar(target.name, value, frame, eff)
        elif t is ast.Subscript:
            arr, slots, ords = self._resolve_subscript(target, frame, eff)
            self._count_access(
                target, frame, eff,
                is_write=True, itemsize=arr.dtype.itemsize, aos=False, array=arr,
            )
            if arr.dtype.names is not None:
                raise BatchIneligible("whole-struct element write")
            self._check_write(arr, None, slots, ords)
            img = self._array_image_for_write(arr)
            img[slots] = self._write_values(value, eff)
        elif t is ast.Member and isinstance(target.base, ast.Subscript):
            arr, slots, ords = self._resolve_subscript(target.base, frame, eff)
            if arr.dtype.names is None or target.field not in arr.dtype.names:
                raise ExecutionError(f"array {arr.dtype} has no field {target.field!r}")
            self._count_access(
                target.base, frame, eff,
                is_write=True, itemsize=arr.dtype[target.field].itemsize,
                aos=True, array=arr,
            )
            self._check_write(arr, target.field, slots, ords)
            img = self._array_image_for_write(arr)
            img[target.field][slots] = self._write_values(value, eff)
        else:
            raise BatchIneligible(f"cannot assign to {t.__name__}")

    def _write_values(self, value, eff):
        if isinstance(value, _Lanes):
            return value.a if eff is None else value.a[eff]
        if isinstance(value, (bool, int, np.integer, float, np.floating)):
            return value
        raise BatchIneligible(f"cannot store {type(value).__name__}")

    def _stmt_if(self, stmt: ast.If, frame: _Frame, mask, eff) -> None:
        self.counters.branches += self._popcount(eff)
        truth = self._truthy(self._expr(stmt.cond, frame, eff))
        if not isinstance(truth, np.ndarray):
            # Lane-invariant condition: one arm, no mask refinement.
            if truth:
                self._stmt(stmt.then, frame, mask)
            elif stmt.other is not None:
                self._stmt(stmt.other, frame, mask)
            return
        self._stmt(stmt.then, frame, self._and(mask, truth))
        if stmt.other is not None:
            self._stmt(stmt.other, frame, self._and(mask, ~truth))

    def _stmt_return(self, stmt: ast.Return, frame: _Frame, eff) -> None:
        value = None if stmt.value is None else self._expr(stmt.value, frame, eff)
        ret_mask = self._full(eff)
        if frame.ret_mask is None:
            frame.ret_mask = ret_mask.copy()
            frame.ret_value = value
        else:
            if (value is None) != (frame.ret_value is None):
                raise BatchIneligible("mixed void and value returns")
            if value is not None:
                frame.ret_value = self._where(ret_mask, value, frame.ret_value)
            frame.ret_mask = frame.ret_mask | ret_mask
        frame.active = self._full(frame.active) & ~ret_mask

    # -- inner (sequential) loops --------------------------------------------

    def _stmt_for(self, loop: ast.For, frame: _Frame, mask) -> None:
        if loop.init is None or loop.cond is None or loop.step is None:
            raise BatchIneligible("inner loop without init/cond/step")
        eff = self._and(frame.active, mask)
        frame.scopes.append(({}, eff))
        var = _loop_var_name(loop)
        if var is not None:
            self.ex._loop_vars.append(var)
        try:
            # Init is charged (once per entry per lane), exactly like the
            # tree's _run_loop; condition and step are not.
            self._stmt(loop.init, frame, mask)
            while True:
                with _uncounted(self):
                    truth = self._truthy(self._expr(loop.cond, frame, eff))
                if isinstance(truth, np.ndarray):
                    raise BatchIneligible("lane-varying inner loop bound")
                if not truth:
                    break
                self._stmt(loop.body, frame, mask)
                if frame.active is not None and not frame.active.any():
                    break
                with _uncounted(self):
                    self._stmt(loop.step, frame, mask)
        finally:
            if var is not None:
                self.ex._loop_vars.pop()
            frame.scopes.pop()

    # ======================================================================
    # Expressions
    # ======================================================================

    def _expr(self, expr: ast.Expr, frame: _Frame, eff):
        t = type(expr)
        if t is ast.Ident:
            return self._lookup(expr.name, frame, eff)
        if t is ast.BinOp:
            return self._expr_binop(expr, frame, eff)
        if t is ast.IntLit or t is ast.FloatLit or t is ast.StringLit:
            return expr.value
        if t is ast.Subscript:
            return self._expr_subscript(expr, frame, eff)
        if t is ast.Call:
            return self._expr_call(expr, frame, eff)
        if t is ast.UnOp:
            return self._expr_unop(expr, frame, eff)
        if t is ast.Member:
            return self._expr_member(expr, frame, eff)
        if t is ast.Cond:
            return self._expr_cond(expr, frame, eff)
        if t is ast.Cast:
            return self._vcoerce(expr.type, self._expr(expr.operand, frame, eff))
        if t is ast.SizeOf:
            from repro.analysis.symbols import sizeof_type

            return sizeof_type(expr.type, self.ex.structs)
        raise BatchIneligible(f"cannot vectorize {t.__name__}")

    def _expr_subscript(self, expr: ast.Subscript, frame: _Frame, eff):
        arr, slots, ords = self._resolve_subscript(expr, frame, eff)
        self._count_access(
            expr, frame, eff,
            is_write=False, itemsize=arr.dtype.itemsize, aos=False, array=arr,
        )
        if arr.dtype.names is not None:
            raise BatchIneligible("whole-struct element read")
        self._check_read(arr, None, slots, ords)
        return self._gather(self._array_image(arr), slots, eff)

    def _expr_member(self, expr: ast.Member, frame: _Frame, eff):
        if not isinstance(expr.base, ast.Subscript):
            raise BatchIneligible("member access on a non-subscript base")
        arr, slots, ords = self._resolve_subscript(expr.base, frame, eff)
        if arr.dtype.names is None or expr.field not in arr.dtype.names:
            raise ExecutionError(f"no field {expr.field!r} in {arr.dtype}")
        self._count_access(
            expr.base, frame, eff,
            is_write=False, itemsize=arr.dtype[expr.field].itemsize,
            aos=True, array=arr,
        )
        self._check_read(arr, expr.field, slots, ords)
        return self._gather(self._array_image(arr)[expr.field], slots, eff)

    def _gather(self, img: np.ndarray, slots: np.ndarray, eff):
        values = img[slots]
        if values.dtype.kind == "f":
            # The tree's .item() loads float32 elements as Python float.
            dtype = np.float64
        elif values.dtype.kind in ("i", "u", "b"):
            dtype = np.int64
        else:
            raise BatchIneligible(f"load of dtype {values.dtype}")
        if eff is None:
            return _Lanes(values.astype(dtype))
        full = np.zeros(self.n, dtype=dtype)
        full[eff] = values.astype(dtype)
        return _Lanes(full)

    # -- operators ----------------------------------------------------------

    def _expr_binop(self, expr: ast.BinOp, frame: _Frame, eff):
        if expr.op in ("&&", "||"):
            return self._expr_logic(expr, frame, eff)
        left = self._expr(expr.left, frame, eff)
        right = self._expr(expr.right, frame, eff)
        return self._vbinop_value(expr.op, left, right, eff)

    def _expr_logic(self, expr: ast.BinOp, frame: _Frame, eff):
        self.counters.int_ops += self._popcount(eff)
        lt = self._truthy(self._expr(expr.left, frame, eff))
        if not isinstance(lt, np.ndarray):
            # Lane-invariant left side: short-circuit exactly like the tree.
            if (expr.op == "&&" and not lt) or (expr.op == "||" and lt):
                return int(lt)
            rt = self._truthy(self._expr(expr.right, frame, eff))
            if isinstance(rt, np.ndarray):
                return _Lanes(rt.astype(np.int64))
            return int(rt)
        # Lane-varying left: the tree evaluates the right side only on the
        # lanes that short-circuiting reaches — charge exactly those.
        rhs_mask = self._and(eff, lt if expr.op == "&&" else ~lt)
        if not bool(rhs_mask.any()):
            return _Lanes(lt.astype(np.int64))
        rt = self._truthy(self._expr(expr.right, frame, rhs_mask))
        rt_vec = rt if isinstance(rt, np.ndarray) else np.full(self.n, bool(rt))
        if expr.op == "&&":
            return _Lanes((lt & rt_vec).astype(np.int64))
        return _Lanes((lt | (rt_vec & rhs_mask)).astype(np.int64))

    def _vbinop_value(self, op: str, left, right, eff):
        n_eff = self._popcount(eff)
        lk, rk = self._kind(left), self._kind(right)
        if lk == "?" or rk == "?":
            raise BatchIneligible("arithmetic on non-numeric values")
        is_float = lk == "f" or rk == "f"
        counters = self.counters
        if is_float and op in ("+", "-", "*", "/"):
            counters.flops += n_eff
        else:
            counters.int_ops += n_eff
        lv = left.a if isinstance(left, _Lanes) else left
        rv = right.a if isinstance(right, _Lanes) else right
        vector = isinstance(left, _Lanes) or isinstance(right, _Lanes)
        if op == "+":
            result = lv + rv
        elif op == "-":
            result = lv - rv
        elif op == "*":
            result = lv * rv
        elif op == "/":
            result = self._divide(lv, rv, is_float, eff, vector)
        elif op == "%":
            result = self._modulo(lv, rv, eff, vector)
        elif op in _COMPARE_OPS:
            cmp = _COMPARE_OPS[op](lv, rv)
            result = cmp.astype(np.int64) if isinstance(cmp, np.ndarray) else int(cmp)
        elif op in _BITWISE_OPS:
            result = _BITWISE_OPS[op](self._to_int(lv), self._to_int(rv))
        else:
            raise BatchIneligible(f"operator {op!r}")
        return _Lanes(result) if isinstance(result, np.ndarray) else result

    @staticmethod
    def _to_int(v):
        if isinstance(v, np.ndarray):
            return v if v.dtype.kind != "f" else np.trunc(v).astype(np.int64)
        return int(v)

    def _divide(self, lv, rv, is_float, eff, vector):
        if not vector:
            # Lane-invariant: Python semantics are the tree's semantics.
            if is_float:
                return lv / rv
            q = abs(int(lv)) // abs(int(rv))
            return q if (lv >= 0) == (rv >= 0) else -q
        rvec = rv if isinstance(rv, np.ndarray) else np.full(self.n, rv)
        zero = rvec == 0
        if eff is not None:
            zero = zero & eff
        if bool(np.any(zero)):
            raise ZeroDivisionError(
                "float division by zero"
                if is_float
                else "integer division or modulo by zero"
            )
        safe = np.where(rvec == 0, 1, rvec)
        if is_float:
            return np.asarray(lv, dtype=np.float64) / safe
        la = np.asarray(lv)
        q = np.abs(la) // np.abs(safe)
        return np.where((la >= 0) == (rvec >= 0), q, -q).astype(np.int64)

    def _modulo(self, lv, rv, eff, vector):
        if not vector:
            r = abs(int(lv)) % abs(int(rv))
            return r if lv >= 0 else -r
        rvec = rv if isinstance(rv, np.ndarray) else np.full(self.n, rv)
        zero = rvec == 0
        if eff is not None:
            zero = zero & eff
        if bool(np.any(zero)):
            raise ZeroDivisionError("integer division or modulo by zero")
        safe = self._to_int(np.where(rvec == 0, 1, rvec))
        la = self._to_int(np.asarray(lv))
        r = np.abs(la) % np.abs(safe)
        return np.where(la >= 0, r, -r).astype(np.int64)

    def _expr_unop(self, expr: ast.UnOp, frame: _Frame, eff):
        value = self._expr(expr.operand, frame, eff)
        kind = self._kind(value)
        if expr.op == "-":
            if kind == "?":
                raise BatchIneligible("negation of non-numeric value")
            if kind == "f":
                self.counters.flops += self._popcount(eff)
            else:
                self.counters.int_ops += self._popcount(eff)
            return _Lanes(-value.a) if isinstance(value, _Lanes) else -value
        if expr.op == "!":
            self.counters.int_ops += self._popcount(eff)
            truth = self._truthy(value)
            if isinstance(truth, np.ndarray):
                return _Lanes((~truth).astype(np.int64))
            return int(not truth)
        raise BatchIneligible(f"unary operator {expr.op!r}")

    def _expr_cond(self, expr: ast.Cond, frame: _Frame, eff):
        self.counters.branches += self._popcount(eff)
        truth = self._truthy(self._expr(expr.cond, frame, eff))
        if not isinstance(truth, np.ndarray):
            return self._expr(expr.then if truth else expr.other, frame, eff)
        then_mask = self._and(eff, truth)
        else_mask = self._and(eff, ~truth)
        then_val = (
            self._expr(expr.then, frame, then_mask) if bool(then_mask.any()) else None
        )
        else_val = (
            self._expr(expr.other, frame, else_mask) if bool(else_mask.any()) else None
        )
        if then_val is None:
            return else_val
        if else_val is None:
            return then_val
        return self._where(truth, then_val, else_val)

    # -- calls ---------------------------------------------------------------

    def _expr_call(self, expr: ast.Call, frame: _Frame, eff):
        args = [self._expr(a, frame, eff) for a in expr.args]
        self.counters.calls += self._popcount(eff)
        name = expr.func
        if name in self.ex.functions:
            return self._call_user(self.ex.functions[name], args, eff)
        builtin = _VECTOR_BUILTINS.get(name)
        if builtin is not None:
            from repro.runtime.executor import BUILTIN_COSTS

            self.counters.flops += BUILTIN_COSTS[name] * self._popcount(eff)
            return builtin(self, args, eff, name)
        raise BatchIneligible(f"call to {name!r}")

    def _call_user(self, func: ast.FuncDef, args, eff):
        if func.name in self.call_stack:
            raise BatchIneligible(f"recursive call to {func.name}()")
        if len(args) != len(func.params):
            raise ExecutionError(
                f"{func.name}() takes {len(func.params)} args, got {len(args)}"
            )
        # Same name resolution as the tree's call path: parameters, then
        # straight to the context's root scope — not the caller's chain.
        frame = _Frame(
            self.ex._call_root_env(),
            eff,
            bindings=dict(zip((p.name for p in func.params), args)),
            is_func=True,
        )
        self.call_stack += (func.name,)
        try:
            self._stmt(func.body, frame, None)
        finally:
            self.call_stack = self.call_stack[:-1]
        if frame.ret_mask is None:
            return None  # void: every lane fell off the end
        covered = frame.ret_mask if eff is None else (frame.ret_mask | ~eff)
        if bool(covered.all()):
            return frame.ret_value
        if frame.ret_value is None:
            return None
        # Some lanes returned a value, others fell off the end; the tree
        # walker's fell-off lanes hold None and fault on use.
        return _Partial(self._as_vector(frame.ret_value), frame.ret_mask.copy())

    def _builtin_f64(self, value, eff):
        """(vector, is_vector) with the argument as float64 and inactive
        lanes sanitized to 1.0, so masked-off lanes cannot trip a domain
        check the tree would never perform."""
        if isinstance(value, _Lanes):
            vec = value.a if value.a.dtype.kind == "f" else value.a.astype(np.float64)
            if eff is not None:
                vec = np.where(eff, vec, 1.0)
            return vec, True
        if isinstance(value, (bool, int, np.integer, float, np.floating)):
            return value, False
        raise BatchIneligible(f"builtin argument of {type(value).__name__}")


class _uncounted:
    """Discards counter accrual on exit (loop cond/step evaluation).

    Staging and hazard tracking stay live — only the counters roll back,
    mirroring the tree's ``_eval_clause``/``_exec_free``."""

    __slots__ = ("runner", "saved")

    def __init__(self, runner: _BatchRunner):
        self.runner = runner

    def __enter__(self):
        self.saved = self.runner.counters.copy()
        return self

    def __exit__(self, *exc):
        self.runner.counters = self.saved
        return False


_COMPARE_OPS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_BITWISE_OPS = {
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


# --------------------------------------------------------------------------
# Vector builtin implementations
# --------------------------------------------------------------------------


def _vb_pyloop(runner, args, eff, name):
    value, vector = runner._builtin_f64(args[0], eff)
    if not vector:
        return _scalar_builtin(name, [value])
    try:
        out = mathops.VECTOR_IMPL[name](value)
    except ValueError as exc:
        raise ExecutionError(f"math domain error in {name}: {exc}")
    except OverflowError:
        raise
    return _Lanes(np.asarray(out, dtype=np.float64))


def _vb_pow(runner, args, eff, name):
    base, v1 = runner._builtin_f64(args[0], eff)
    expo, v2 = runner._builtin_f64(args[1], eff)
    if not v1 and not v2:
        return _scalar_builtin(name, [base, expo])
    try:
        out = mathops.vector_pow(base, expo)
    except ValueError as exc:
        raise ExecutionError(f"math domain error in pow: {exc}")
    return _Lanes(np.asarray(out, dtype=np.float64))


def _vb_sqrt(runner, args, eff, name):
    value, vector = runner._builtin_f64(args[0], eff)
    if not vector:
        return _scalar_builtin(name, [value])
    if bool(np.any(value < 0)):
        raise ExecutionError("math domain error in sqrt: math domain error")
    return _Lanes(np.sqrt(value))


def _vb_abs(runner, args, eff, name):
    value = args[0]
    if isinstance(value, _Lanes):
        # The tree's fabs is plain abs(): an int argument stays int.
        return _Lanes(np.abs(value.a))
    return _scalar_builtin(name, [value])


def _vb_floorceil(runner, args, eff, name):
    value, vector = runner._builtin_f64(args[0], eff)
    if not vector:
        return _scalar_builtin(name, [value])
    fn = np.floor if name == "floor" else np.ceil
    # math.floor/ceil return Python int; keep the integer kind.
    return _Lanes(fn(value).astype(np.int64))


def _vb_minmax(runner, args, eff, name):
    if not args:
        raise BatchIneligible(f"{name}() with no arguments")
    kinds = {runner._kind(a) for a in args}
    if "?" in kinds or len(kinds) != 1:
        # Python min/max return whichever argument wins, so mixed int and
        # float arguments produce per-lane result types.
        raise BatchIneligible(f"{name}() with mixed argument types")
    if not any(isinstance(a, _Lanes) for a in args):
        return _scalar_builtin(name, args)
    fn = np.minimum if name == "min" else np.maximum
    result = args[0].a if isinstance(args[0], _Lanes) else args[0]
    for arg in args[1:]:
        result = fn(result, arg.a if isinstance(arg, _Lanes) else arg)
    return _Lanes(np.asarray(result))


def _scalar_builtin(name, args):
    from repro.runtime.executor import _BUILTIN_IMPL

    try:
        return _BUILTIN_IMPL[name](*args)
    except ValueError as exc:
        raise ExecutionError(f"math domain error in {name}: {exc}")


_VECTOR_BUILTINS = {
    "exp": _vb_pyloop,
    "log": _vb_pyloop,
    "sin": _vb_pyloop,
    "cos": _vb_pyloop,
    "pow": _vb_pow,
    "sqrt": _vb_sqrt,
    "fabs": _vb_abs,
    "abs": _vb_abs,
    "floor": _vb_floorceil,
    "ceil": _vb_floorceil,
    "min": _vb_minmax,
    "max": _vb_minmax,
}


# ==========================================================================
# Driver
# ==========================================================================


def try_run_parallel_for(executor, loop: ast.For, env) -> Optional[int]:
    """Attempt batched execution of one parallel loop.

    On success, array writes are committed, the induction variable's
    final value lands where the tree would leave it, the loop's counters
    are merged into the executor's pending set, and the trip count is
    returned.  Returns ``None`` — with no lasting side effects — when the
    loop is ineligible or a runtime fault occurred, in which case the
    caller falls back to the tree walker (which reproduces the fault
    exactly, including its sequential partial side effects).
    """
    cache = executor._batch_static_cache
    info = cache.get(id(loop))
    if info is None:
        info = analyze_loop(loop, executor.functions)
        cache[id(loop)] = info
    if not info.eligible:
        return None

    stats = executor._batch_stats
    ctx = executor._ctx
    entry_pending = ctx.pending
    ctx.pending = OpCounters()
    try:
        trips, runner, commit = _run(executor, loop, env)
    except BatchIneligible as exc:
        # A dynamic bail will almost certainly repeat; stop re-attempting
        # this loop (falling back is always correct, only conservative).
        info.reject(f"dynamic: {exc}")
        ctx.pending = entry_pending
        stats["fallback"] += 1
        return None
    except (ReproError, ZeroDivisionError, OverflowError):
        # The loop faults; let the tree produce the exact error and the
        # exact partial state sequential execution mandates.
        ctx.pending = entry_pending
        stats["fallback"] += 1
        return None
    commit()
    entry_pending.add(ctx.pending)  # the init statement's operations
    if runner is not None:
        entry_pending.add(runner.counters)
    ctx.pending = entry_pending
    stats["batched"] += 1
    return trips


class LoopBounds:
    """A recognized counted loop: the facts every vector engine needs.

    Produced by :func:`recognize_bounds`, consumed by this engine's
    ``_run`` and by the codegen driver — the two engines must agree on
    what counts as a counted loop, and on exactly how the init clause
    executes, so they share the recognizer.
    """

    __slots__ = ("var", "scope", "start", "stride", "trips", "global_induction")

    def __init__(self, var, scope, start, stride, trips, global_induction):
        self.var = var
        self.scope = scope
        self.start = start
        self.stride = stride
        self.trips = trips
        self.global_induction = global_induction

    def finalize_induction(self):
        """Leave the induction variable where the tree would: the first
        value failing the condition.  VarDecl inits die with the loop
        scope; assignment inits write through to the enclosing binding."""
        self.scope.set(self.var, self.start + self.stride * self.trips)


def recognize_bounds(executor, loop: ast.For, env) -> LoopBounds:
    """Recognize ``for (init; cond; step)`` as a counted loop.

    Executes the init clause exactly as the tree's ``_run_loop`` would —
    charged to the loop's counters, root-declaring assignment-style
    inits — and evaluates the bound/stride uncharged.  Purity of all
    three clauses is required so a later fallback's re-execution is
    idempotent.  Raises :class:`BatchIneligible` when the shape is not
    recognized.
    """
    if loop.init is None or loop.cond is None or loop.step is None:
        raise BatchIneligible("loop without init/cond/step")
    var = _loop_var_name(loop)
    if var is None:
        raise BatchIneligible("unrecognized induction variable")

    cond = loop.cond
    if not isinstance(cond, ast.BinOp) or cond.op not in ("<", "<=", ">", ">="):
        raise BatchIneligible("unrecognized loop condition")
    if isinstance(cond.left, ast.Ident) and cond.left.name == var:
        bound_expr, op = cond.right, cond.op
    elif isinstance(cond.right, ast.Ident) and cond.right.name == var:
        mirror = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        bound_expr, op = cond.left, mirror[cond.op]
    else:
        raise BatchIneligible("condition does not test the induction variable")
    step_expr = _step_increment(loop.step, var)
    init_expr = loop.init.init if isinstance(loop.init, ast.VarDecl) else loop.init.value
    if step_expr is None or init_expr is None:
        raise BatchIneligible("unrecognized loop step or init")
    if not (_is_pure(init_expr) and _is_pure(bound_expr) and _is_pure(step_expr)):
        raise BatchIneligible("impure loop bounds")

    from repro.runtime.executor import Env

    scope = Env(parent=env)
    executor._exec_stmt(loop.init, scope)
    start = scope.get(var)
    bound = executor._eval_clause(bound_expr, scope)
    stride = executor._eval_clause(step_expr, scope)
    for v in (start, bound, stride):
        if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
            raise BatchIneligible("non-integer loop bounds")
    start, bound, stride = int(start), int(bound), int(stride)
    if stride == 0:
        raise BatchIneligible("zero loop stride")
    trips = _trip_count(start, bound, op, stride)
    if trips is None:
        raise BatchIneligible("non-terminating loop bounds")

    global_induction = var if not isinstance(loop.init, ast.VarDecl) else None
    return LoopBounds(var, scope, start, stride, trips, global_induction)


def _run(executor, loop: ast.For, env):
    """Recognize the bounds, run the body, return (trips, runner, commit)."""
    bounds = recognize_bounds(executor, loop, env)
    var, start, stride, trips = bounds.var, bounds.start, bounds.stride, bounds.trips

    runner = None
    if trips:
        lanes = start + stride * np.arange(trips, dtype=np.int64)
        runner = _BatchRunner(executor, lanes, bounds.global_induction)
        frame = _Frame(env, None, bindings={var: _Lanes(lanes)})
        executor._loop_vars.append(var)
        try:
            runner.run_body(loop.body, frame)
        finally:
            executor._loop_vars.pop()

    def commit():
        if runner is not None:
            for key, img in runner.staged.items():
                runner.real[key][...] = img
        bounds.finalize_induction()

    return trips, runner, commit
