"""Tests for symbol table construction and type sizing."""

import pytest

from repro.errors import SymbolError
from repro.analysis.symbols import (
    Scope,
    build_symbol_table,
    sizeof_type,
)
from repro.minic import ast_nodes as ast
from repro.minic.parser import parse

PROGRAM = """
struct Point {
    float x;
    float y;
    int id;
};

float gscale = 1.0;
double bigval;

void compute(float *A, int n) {
    float local;
    for (int i = 0; i < n; i++) {
        float t = A[i];
        A[i] = t * gscale;
    }
}
"""


class TestSizeof:
    def test_scalars(self):
        assert sizeof_type(ast.BaseType("int")) == 4
        assert sizeof_type(ast.BaseType("float")) == 4
        assert sizeof_type(ast.BaseType("double")) == 8
        assert sizeof_type(ast.BaseType("char")) == 1

    def test_pointer(self):
        assert sizeof_type(ast.PointerType(ast.BaseType("float"))) == 8

    def test_struct(self):
        table = build_symbol_table(parse(PROGRAM))
        assert sizeof_type(ast.StructType("Point"), table.structs) == 12

    def test_unknown_struct_raises(self):
        with pytest.raises(SymbolError):
            sizeof_type(ast.StructType("Nope"), {})

    def test_fixed_array(self):
        typ = ast.ArrayType(ast.BaseType("float"), ast.IntLit(10))
        assert sizeof_type(typ) == 40

    def test_unsized_array_raises(self):
        with pytest.raises(SymbolError):
            sizeof_type(ast.ArrayType(ast.BaseType("float"), None))


class TestSymbolTable:
    def test_globals_collected(self):
        table = build_symbol_table(parse(PROGRAM))
        assert table.globals_.lookup("gscale") == ast.BaseType("float")
        assert table.globals_.lookup("bigval") == ast.BaseType("double")

    def test_params_collected(self):
        table = build_symbol_table(parse(PROGRAM))
        assert isinstance(table.type_of("compute", "A"), ast.PointerType)
        assert table.type_of("compute", "n") == ast.BaseType("int")

    def test_locals_collected(self):
        table = build_symbol_table(parse(PROGRAM))
        assert table.type_of("compute", "local") == ast.BaseType("float")
        assert table.type_of("compute", "t") == ast.BaseType("float")

    def test_global_visible_in_function(self):
        table = build_symbol_table(parse(PROGRAM))
        assert table.type_of("compute", "gscale") == ast.BaseType("float")

    def test_unknown_name_is_none(self):
        table = build_symbol_table(parse(PROGRAM))
        assert table.type_of("compute", "nothere") is None

    def test_element_size_pointer(self):
        table = build_symbol_table(parse(PROGRAM))
        assert table.element_size("compute", "A") == 4

    def test_element_size_double_array(self):
        table = build_symbol_table(parse("void f(double *D) { }"))
        assert table.element_size("f", "D") == 8

    def test_element_size_unknown_defaults_to_float(self):
        table = build_symbol_table(parse(PROGRAM))
        assert table.element_size("compute", "mystery") == 4

    def test_structs_registered(self):
        table = build_symbol_table(parse(PROGRAM))
        assert "Point" in table.structs


class TestScope:
    def test_redeclaration_raises(self):
        scope = Scope()
        scope.declare("x", ast.BaseType("int"))
        with pytest.raises(SymbolError):
            scope.declare("x", ast.BaseType("float"))

    def test_parent_chain(self):
        parent = Scope()
        parent.declare("g", ast.BaseType("int"))
        child = Scope(parent=parent)
        assert child.lookup("g") == ast.BaseType("int")
        assert child.lookup("missing") is None
