"""Benchmark execution harness with caching and isolated optimizations.

Section VI methodology: each benchmark runs as the parallel CPU version,
the unoptimized MIC port, and the COMP-optimized MIC version; speedups
are ratios of whole-program (simulated) execution times.  The paper also
reports per-optimization speedups (Table II's parentheses, Figures 12,
14, 15); those come from *isolated* configurations that enable one
optimization stage at a time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.service.store import ResultStore
from repro.transforms.pipeline import OptimizationPlan
from repro.workloads.base import MiniCWorkload, Workload, WorkloadRun
from repro.workloads.suite import get_workload, workload_names


@dataclass
class BenchmarkResult:
    """The three standard variants of one benchmark."""

    name: str
    runs: Dict[str, WorkloadRun] = field(default_factory=dict)

    @property
    def cpu_time(self) -> float:
        """Simulated time of the parallel CPU variant."""
        return self.runs["cpu"].time

    @property
    def mic_time(self) -> float:
        """Simulated time of the unoptimized MIC variant."""
        return self.runs["mic"].time

    @property
    def opt_time(self) -> float:
        """Simulated time of the COMP-optimized variant."""
        return self.runs["opt"].time

    @property
    def unopt_speedup(self) -> float:
        """Figure 1: naive MIC offload over the parallel CPU version."""
        return self.cpu_time / self.mic_time

    @property
    def opt_speedup(self) -> float:
        """Figure 10: optimized MIC over the parallel CPU version."""
        return self.cpu_time / self.opt_time

    @property
    def relative_gain(self) -> float:
        """Figure 11: optimized MIC over unoptimized MIC."""
        return self.mic_time / self.opt_time

    def outputs_match(self, rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        """All variants computed the same results."""
        base = self.runs["cpu"].outputs
        for variant in ("mic", "opt"):
            other = self.runs[variant].outputs
            for key, value in base.items():
                if key not in other:
                    return False
                if not np.allclose(value, other[key], rtol=rtol, atol=atol):
                    return False
        return True


#: Stages that make up each named optimization for isolation runs.
#: Thread reuse and the memory-usage optimization are part of data
#: streaming in the paper (Section III).
ISOLATION_PLANS = {
    "streaming": dict(merging=False),
    "merging": dict(streaming=False, regularization=False, thread_reuse=False),
    "regularization": dict(streaming=False, merging=False, thread_reuse=False),
}


class SuiteRunner:
    """Runs and caches benchmark variants.

    *engine* selects the interpreter engine ("auto", "codegen", "batch",
    "tree", or None for per-workload defaults) for every run this
    harness issues; it participates in the cache key so one runner can
    compare engines.
    *seed* reseeds workload input generation (the global ``--seed``
    flag); None keeps each workload's fixed default inputs.
    *tracer_factory*, when given, is called as ``factory(name, variant)``
    per run and must return a :class:`repro.obs.Tracer` (or None); the
    run then executes on an instrumented machine.
    *devices* sizes the simulated offload fleet; above 1 every run
    executes on a multi-device machine with block sharding and failover
    (outputs stay bit-identical to the single-device run).
    *metrics*, when given, receives ``harness.cache.hits`` /
    ``harness.cache.misses`` counters from the run cache.

    The run cache is a :class:`~repro.service.store.ResultStore`, so a
    runner shared across threads (the campaign service keeps warm
    runners per worker) computes each variant exactly once even under
    concurrent identical requests.
    """

    def __init__(
        self,
        engine: Optional[str] = None,
        seed: Optional[int] = None,
        tracer_factory=None,
        devices: int = 1,
        metrics=None,
    ) -> None:
        if devices < 1:
            raise ValueError(f"devices must be >= 1, got {devices}")
        self.engine = engine
        self.seed = seed
        self.tracer_factory = tracer_factory
        self.devices = devices
        self._store: ResultStore = ResultStore(
            metrics=metrics, name="harness.cache"
        )

    def cache_stats(self) -> Tuple[int, int, int]:
        """``(hits, misses, size)`` of the run cache."""
        return self._store.stats()

    def _machine_for(self, workload: Workload, name: str, variant: str):
        tracer = None
        if self.tracer_factory is not None:
            tracer = self.tracer_factory(name, variant)
        if tracer is None and self.devices <= 1:
            return None
        return workload.machine(tracer=tracer, devices=self.devices)

    # -- standard variants ---------------------------------------------------

    def run_variant(self, name: str, variant: str) -> WorkloadRun:
        """Run (or fetch cached) one variant of one benchmark."""
        key = (name, variant, None, self.engine, self.seed, self.devices)

        def compute() -> WorkloadRun:
            workload = get_workload(name, seed=self.seed)
            return workload.run(
                variant,
                machine=self._machine_for(workload, name, variant),
                engine=self.engine,
            )

        return self._store.get_or_compute(key, compute)

    def run_benchmark(self, name: str) -> BenchmarkResult:
        """Run all three variants of one benchmark."""
        return BenchmarkResult(
            name=name,
            runs={v: self.run_variant(name, v) for v in ("cpu", "mic", "opt")},
        )

    def run_suite(self, names: Optional[List[str]] = None) -> Dict[str, BenchmarkResult]:
        """Run every requested benchmark; returns results by name."""
        return {
            name: self.run_benchmark(name)
            for name in (names or workload_names())
        }

    # -- isolated optimizations ---------------------------------------------------

    def run_isolated(self, name: str, optimization: str) -> WorkloadRun:
        """Run the MIC version with only *optimization* enabled."""
        if optimization not in ISOLATION_PLANS:
            raise KeyError(
                f"unknown optimization {optimization!r}; "
                f"know {sorted(ISOLATION_PLANS)}"
            )
        key = (name, "opt", optimization, self.engine, self.seed, self.devices)

        def compute() -> WorkloadRun:
            workload = get_workload(name, seed=self.seed)
            if not isinstance(workload, MiniCWorkload):
                raise TypeError(
                    f"{name} is not a MiniC workload; isolation applies to "
                    f"compiler-transformed benchmarks"
                )
            overrides = ISOLATION_PLANS[optimization]
            workload.plan = dataclasses.replace(workload.plan, **overrides)
            # Isolation runs stay untraced; only fleet sizing forces a
            # machine here.
            machine = (
                workload.machine(devices=self.devices)
                if self.devices > 1
                else None
            )
            return workload.run("opt", machine=machine, engine=self.engine)

        return self._store.get_or_compute(key, compute)

    def isolated_gain(self, name: str, optimization: str) -> float:
        """Speedup of one optimization over the unoptimized MIC version."""
        mic = self.run_variant(name, "mic")
        isolated = self.run_isolated(name, optimization)
        return mic.time / isolated.time
