"""Round-trip tests for the MiniC printer: parse(to_source(p)) == p."""

import pytest

from repro.minic import ast_nodes as ast
from repro.minic.parser import parse, parse_expr, parse_pragma
from repro.minic.printer import to_source

BLACKSCHOLES_LIKE = """
float BlkSchlsEqEuroNoDiv(float s, float k);

void main() {
#pragma offload target(mic:0) in(sptprice, strike : length(numOptions)) out(prices : length(numOptions))
#pragma omp parallel for private(i)
    for (int i = 0; i < numOptions; i++) {
        prices[i] = BlkSchlsEqEuroNoDiv(sptprice[i], strike[i]);
    }
}
"""

SRAD_LIKE = """
void main() {
#pragma omp parallel for
    for (int k = 0; k < rows * cols; k++) {
        float Jc = J[k];
        dN[k] = J[iN[k]] - Jc;
        dS[k] = J[iS[k]] - Jc;
        if (dN[k] > 0.0) {
            dN[k] = 0.0;
        }
    }
}
"""

STRUCT_PROGRAM = """
struct Node {
    float value;
    struct Node *next;
};

void visit(struct Node *p) {
    while (p != 0) {
        total += p->value;
        p = p->next;
    }
}
"""


def roundtrip(source):
    prog = parse(source)
    printed = to_source(prog)
    reparsed = parse(printed)
    assert reparsed == prog, f"round-trip mismatch:\n{printed}"
    return printed


class TestRoundTrip:
    def test_blackscholes_like(self):
        printed = roundtrip(BLACKSCHOLES_LIKE)
        assert "#pragma offload target(mic:0)" in printed
        assert "length(numOptions)" in printed

    def test_srad_like(self):
        roundtrip(SRAD_LIKE)

    def test_struct_program(self):
        printed = roundtrip(STRUCT_PROGRAM)
        assert "struct Node *next;" in printed
        assert "p->next" in printed

    def test_globals(self):
        roundtrip("int total = 0;\nfloat data[100];\nvoid main() { }")

    def test_while_break_continue(self):
        roundtrip(
            "void main() { while (x) { if (y) { break; } continue; } }"
        )

    def test_nested_loops(self):
        roundtrip(
            "void main() {"
            " for (int i = 0; i < n; i++) {"
            "  for (int j = 0; j < m; j++) { A[i * m + j] = 0.0; }"
            " } }"
        )

    def test_ternary_and_cast(self):
        roundtrip("void main() { x = a > b ? (float)a : b * 2.0; }")

    def test_sizeof(self):
        roundtrip("void main() { n = sizeof(float) * count; }")

    def test_offload_transfer_statement(self):
        roundtrip(
            "void main() {\n"
            "#pragma offload_transfer target(mic:0) "
            "in(A[k*b:b] : into(A1) alloc_if(0) free_if(0)) signal(t)\n"
            "    x = 1;\n"
            "}"
        )

    def test_offload_wait_statement(self):
        roundtrip(
            "void main() {\n"
            "#pragma offload_wait target(mic:0) wait(t)\n"
            "    x = 1;\n"
            "}"
        )

    def test_offload_block(self):
        roundtrip(
            "void main() {\n"
            "#pragma offload target(mic:0) in(A : length(n)) signal(s)\n"
            "    {\n        x = 1;\n    }\n"
            "}"
        )

    def test_reduction_pragma(self):
        roundtrip(
            "void main() {\n"
            "#pragma omp parallel for reduction(+:sum)\n"
            "    for (int i = 0; i < n; i++) { sum += A[i]; }\n"
            "}"
        )


class TestExpressionPrinting:
    def roundtrip_expr(self, text):
        expr = parse_expr(text)
        assert parse_expr(to_source(expr)) == expr

    def test_precedence_preserved(self):
        self.roundtrip_expr("(a + b) * c")

    def test_right_nested_subtraction(self):
        self.roundtrip_expr("a - (b - c)")

    def test_division_grouping(self):
        self.roundtrip_expr("a / (b / c)")

    def test_unary_in_binary(self):
        self.roundtrip_expr("-a * b")

    def test_deref_member(self):
        self.roundtrip_expr("(*p).x")

    def test_logical_mix(self):
        self.roundtrip_expr("a && (b || c)")

    def test_float_formatting_has_decimal(self):
        assert to_source(ast.FloatLit(2.0)) == "2.0"

    def test_comparison_chain_grouping(self):
        self.roundtrip_expr("(a < b) == (c < d)")


class TestPragmaPrinting:
    def roundtrip_pragma(self, text):
        pragma = parse_pragma(text)
        assert parse_pragma(to_source(pragma)) == pragma

    def test_offload_with_sections(self):
        self.roundtrip_pragma(
            "offload target(mic:0) in(A[k*b:b] : into(A1) alloc_if(0) free_if(0))"
        )

    def test_offload_length_only(self):
        self.roundtrip_pragma("offload target(mic:0) inout(B : length(n * 2))")

    def test_omp_clauses(self):
        self.roundtrip_pragma("omp parallel for private(x) reduction(*:prod)")

    def test_signal_wait(self):
        self.roundtrip_pragma("offload target(mic:0) signal(s1) wait(s0)")
