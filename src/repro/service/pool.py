"""Persistent worker pool: warm simulator processes behind asyncio.

The pool wraps the same executor class the ``--jobs`` campaign fan-out
uses (:data:`repro.faults.campaign._POOL_CLS`, a
``ProcessPoolExecutor`` unless a test substitutes a double), so service
workers inherit every property that machinery already guarantees:
module-level picklable job functions, per-process memoized baselines and
warm :class:`~repro.experiments.harness.SuiteRunner` instances, and
results that are pure functions of the spec — worker count and
scheduling never show up in a payload.

``workers=0`` selects *inline* mode: jobs execute synchronously on the
event-loop thread.  That is the zero-dependency path tests and the
deterministic trace replay default to; ``repro serve`` uses real
processes.

A process pool is mortal: a worker killed mid-job breaks the whole
executor (``BrokenProcessPool``).  The pool itself stays dumb about
that — :meth:`restart` tears the broken executor down and builds a
fresh one, and :class:`~repro.service.supervisor.WorkerSupervisor`
decides when to call it.  :meth:`kill_one_worker` is the chaos hook the
``repro replay-trace --kill-workers`` mode uses to kill real workers
mid-replay.
"""

from __future__ import annotations

import asyncio
import os
import signal
from typing import List, Optional

from repro.service import jobs as _jobs


class WorkerPool:
    """Executes job spec dicts on a persistent pool of warm workers."""

    def __init__(self, workers: int = 0, pool_cls=None) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._pool = None
        self._pool_cls = None
        self._closed = False
        #: Executors built over this pool's lifetime (1 + restarts).
        self.generations = 0
        if workers > 0:
            if pool_cls is None:
                # Late import keeps the service importable without the
                # campaign layer and honours test monkeypatching.
                from repro.faults import campaign

                pool_cls = campaign._POOL_CLS
            self._pool_cls = pool_cls
            self._pool = pool_cls(max_workers=workers)
            self.generations = 1

    @property
    def inline(self) -> bool:
        """True when jobs run on the event-loop thread (workers=0)."""
        return self._pool is None

    async def run(self, spec_payload: dict) -> dict:
        """Execute one job spec dict, returning its result dict."""
        if self._pool is None:
            return _jobs.execute_job(spec_payload)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, _jobs.execute_job, spec_payload
        )

    async def warm_stats(self) -> Optional[dict]:
        """One worker's warm-cache diagnostics (inline state if no pool)."""
        if self._pool is None:
            return _jobs.warm_stats()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, _jobs.warm_stats)

    def restart(self) -> None:
        """Replace the executor with a fresh one (supervision path).

        Safe to call on a broken executor: the old one is shut down
        without waiting (its workers may already be dead) and a new
        instance of the same class takes its place.  Inline pools and
        pools already shut down are a no-op — there is no process to
        lose (or resurrect).
        """
        if self._pool_cls is None or self._closed:
            return
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                # A broken executor may refuse a clean shutdown; the
                # replacement below supersedes it either way.
                pass
        self._pool = self._pool_cls(max_workers=self.workers)
        self.generations += 1

    def worker_pids(self) -> List[int]:
        """Live worker process ids (empty for inline or thread pools)."""
        if self._pool is None:
            return []
        processes = getattr(self._pool, "_processes", None)
        if not processes:
            return []
        return sorted(processes.keys())

    def kill_one_worker(self) -> Optional[int]:
        """SIGKILL one live pool worker; returns its pid (chaos hook).

        Returns None when there is no killable process — inline mode,
        thread-backed doubles, or a pool that has not spawned workers
        yet.  The resulting ``BrokenProcessPool`` is exactly the fault
        the supervisor exists to absorb.
        """
        for pid in self.worker_pids():
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue
            return pid
        return None

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool workers (idempotent; restart is refused after)."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None
