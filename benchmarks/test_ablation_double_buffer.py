"""Ablation: double-buffering on/off — device memory versus time.

The memory-usage optimization (Section III-B) keeps two block buffers
per streamed input instead of full-size device arrays.  It should slash
peak device memory without costing time.
"""

import dataclasses

from benchmarks.conftest import emit
from repro.experiments.report import render_table
from repro.runtime.executor import Machine
from repro.transforms.streaming import StreamingOptions
from repro.workloads.suite import get_workload


def run_variant(double_buffer: bool):
    workload = get_workload("blackscholes")
    workload.plan = dataclasses.replace(
        workload.plan,
        streaming_options=StreamingOptions(
            num_blocks=20, double_buffer=double_buffer
        ),
    )
    machine = Machine(scale=workload.sim_scale)
    run = workload.run("opt", machine=machine)
    return run.time, machine.device_memory.peak


def test_double_buffer_memory_vs_time(benchmark):
    def measure():
        return {flag: run_variant(flag) for flag in (False, True)}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    (t_full, mem_full), (t_db, mem_db) = results[False], results[True]
    emit(
        render_table(
            ["variant", "time", "device peak"],
            [
                ["full device arrays", f"{t_full*1000:.2f} ms", f"{mem_full/2**20:.1f} MiB"],
                ["double-buffered", f"{t_db*1000:.2f} ms", f"{mem_db/2**20:.1f} MiB"],
            ],
        )
    )
    # Figure 13's effect: >80% memory reduction at (approximately) no cost.
    assert mem_db < 0.2 * mem_full
    assert t_db < t_full * 1.1
