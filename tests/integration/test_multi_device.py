"""Multi-device offload differential: fleet size must be invisible.

The fleet layer shards streamed blocks over N simulated devices but the
correctness engine stays eager and host-ordered, so for ANY device count
— and any survivable fault schedule — outputs and dynamic op counters
must be bit-identical to the fault-free single-device run.  Device loss
only moves *timing* (quarantine, probes, block redistribution);
``DeviceLost`` may surface only when every card is permanently evicted
and host fallback is disabled.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.faults.policy import ResiliencePolicy
from repro.errors import DeviceLost
from repro.workloads.suite import get_workload

WORKLOADS = ["blackscholes", "nn"]


def _run(name, devices=1, plan=None, policy=None):
    workload = get_workload(name)
    machine = workload.machine(
        fault_plan=plan, resilience=policy, devices=devices
    )
    run = workload.run("opt", machine=machine)
    return run, machine


def _assert_bit_identical(run, baseline):
    assert run.outputs.keys() == baseline.outputs.keys()
    for key, want in baseline.outputs.items():
        np.testing.assert_array_equal(run.outputs[key], want)


def _assert_same_work(run, baseline):
    """Op counters and issue counts: the fleet re-times, never re-computes.

    ``kernel_launches`` may exceed the baseline — thread-reuse sessions
    are per card, so each device hosting blocks spawns its own
    persistent worker pool — but never shrink.
    """
    assert run.stats.ops.as_dict() == baseline.stats.ops.as_dict()
    assert run.stats.offload_count == baseline.stats.offload_count
    assert run.stats.kernel_launches >= baseline.stats.kernel_launches


class TestFaultFreeDifferential:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("devices", [2, 4])
    def test_fleet_matches_single_device(self, name, devices):
        baseline, _ = _run(name, devices=1)
        fleet_run, machine = _run(name, devices=devices)
        _assert_bit_identical(fleet_run, baseline)
        _assert_same_work(fleet_run, baseline)
        assert fleet_run.stats.devices == devices
        assert machine.fleet is not None
        # Sharding actually happened: more than one card saw blocks.
        active = [d for d in machine.fleet.devices if d.blocks_assigned]
        assert len(active) > 1

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_single_device_has_no_fleet(self, name):
        """--devices 1 must take the pre-fleet code path exactly."""
        _, machine = _run(name, devices=1)
        assert machine.fleet is None
        assert machine.coi.fleet is None


class TestSurvivableDeviceLoss:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("devices", [2, 4])
    def test_scripted_reset_is_bit_identical(self, name, devices):
        baseline, _ = _run(name, devices=1)
        plan = FaultPlan(
            seed=11, rates={}, scripted=[FaultSpec("device", 2, kind="reset")]
        )
        policy = ResiliencePolicy(checkpoint_interval=4)
        run, machine = _run(name, devices=devices, plan=plan, policy=policy)
        _assert_bit_identical(run, baseline)
        _assert_same_work(run, baseline)
        stats = machine.fault_stats
        assert stats.device_resets == 1
        assert stats.quarantines == 1
        assert stats.host_fallbacks == 0
        assert stats.recovery_seconds > 0.0

    def test_lost_blocks_land_in_survivor_histograms(self):
        plan = FaultPlan(
            seed=11, rates={}, scripted=[FaultSpec("device", 2, kind="reset")]
        )
        policy = ResiliencePolicy(checkpoint_interval=4)
        _, machine = _run(
            "blackscholes", devices=2, plan=plan, policy=policy
        )
        actions = machine.fault_stats.recovery_actions
        survived = [
            site for site, acts in actions.items()
            if site.startswith("dev") and "reset_survived" in acts
        ]
        absorbed = [
            site for site, acts in actions.items()
            if site.startswith("dev") and "absorbed_block" in acts
        ]
        assert len(survived) == 1, actions
        assert absorbed and survived[0] not in absorbed, actions
        absorbed_total = sum(
            acts.get("absorbed_block", 0) for acts in actions.values()
        )
        fleet = machine.fleet
        assert absorbed_total == sum(d.blocks_absorbed for d in fleet.devices)
        assert absorbed_total > 0

    def test_seeded_chaos_is_bit_identical(self):
        """Seeded device-loss chaos (not just one scripted reset) must
        still reproduce the fault-free answer bit for bit."""
        baseline, _ = _run("nn", devices=1)
        plan = FaultPlan(seed=5, rates={"device": 0.1})
        policy = ResiliencePolicy(checkpoint_interval=4)
        run, machine = _run("nn", devices=4, plan=plan, policy=policy)
        _assert_bit_identical(run, baseline)
        _assert_same_work(run, baseline)
        assert machine.fault_stats.device_resets > 0
        assert machine.fault_stats.host_fallbacks == 0


class TestFleetExhaustion:
    def _eviction_plan(self):
        # max_resets=0 evicts on first loss; two scripted resets kill
        # both cards of a 2-device fleet.
        return FaultPlan(
            seed=3,
            rates={},
            scripted=[
                FaultSpec("device", 1, kind="reset", device=0),
                FaultSpec("device", 1, kind="reset", device=1),
            ],
        )

    def test_all_devices_lost_raises_when_fallback_disabled(self):
        policy = ResiliencePolicy(
            checkpoint_interval=4, max_resets=0, host_fallback=False
        )
        with pytest.raises(DeviceLost, match="fleet devices permanently evicted"):
            _run(
                "blackscholes",
                devices=2,
                plan=self._eviction_plan(),
                policy=policy,
            )

    def test_all_devices_lost_falls_back_to_host_bit_identically(self):
        baseline, _ = _run("blackscholes", devices=1)
        policy = ResiliencePolicy(checkpoint_interval=4, max_resets=0)
        run, machine = _run(
            "blackscholes",
            devices=2,
            plan=self._eviction_plan(),
            policy=policy,
        )
        _assert_bit_identical(run, baseline)
        stats = machine.fault_stats
        assert stats.device_evictions == 2
        assert stats.host_fallbacks > 0
        assert machine.fleet.exhausted
        assert stats.recovery_actions["device"]["fleet_exhausted"] == 1
