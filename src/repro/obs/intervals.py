"""Interval arithmetic shared by the trace analyses.

The observability subsystem and the experiment-level overlap analysis
(:mod:`repro.experiments.trace`) both reason about time intervals:
merging per-resource busy spans, measuring the coverage of an interval
set, and intersecting two sets (the transfer/compute overlap metric data
streaming exists to maximize).  This module is the single source of
truth for that math.

Intervals are ``(start, end)`` tuples in simulated seconds.  All
functions treat touching intervals (``end == next start``) as mergeable
and ignore zero-length intervals when measuring coverage, matching the
semantics of the original analysis.
"""

from __future__ import annotations

from typing import List, Tuple

Interval = Tuple[float, float]


def merge_intervals(spans: List[Interval]) -> List[Interval]:
    """Coalesce a *sorted* interval list into disjoint intervals.

    Touching intervals merge: ``[(0, 1), (1, 2)] -> [(0, 2)]``.  The
    input must already be sorted by start (callers sort once).
    """
    merged: List[Interval] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def covered_time(spans: List[Interval]) -> float:
    """Total time covered by a disjoint interval list."""
    return sum(end - start for start, end in spans)


def intersect_total(a: List[Interval], b: List[Interval]) -> float:
    """Total time covered by both disjoint, sorted interval sets."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total
