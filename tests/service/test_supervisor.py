"""Tests for worker supervision: restarts, redispatch, poison quarantine."""

import asyncio
from concurrent.futures import BrokenExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.supervisor import PoisonJobError, WorkerSupervisor


class ScriptedPool:
    """Pool double following a per-call script of 'break' / result dicts."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0
        self.restarts = 0

    async def run(self, payload):
        self.calls += 1
        action = self.script.pop(0) if self.script else {"ok": True}
        if action == "break":
            raise BrokenProcessPool("worker died")
        return action

    def restart(self):
        self.restarts += 1


def make_supervisor(pool, **overrides):
    kwargs = dict(backoff_base=0.0, metrics=MetricsRegistry())
    kwargs.update(overrides)
    return WorkerSupervisor(pool, **kwargs)


class TestRecovery:
    def test_success_passthrough(self):
        pool = ScriptedPool([{"ok": True, "x": 1}])
        sup = make_supervisor(pool)
        result = asyncio.run(sup.run({"k": 1}, key_id="a"))
        assert result == {"ok": True, "x": 1}
        assert sup.restarts == 0 and sup.redispatches == 0

    def test_pool_death_restarts_and_redispatches(self):
        pool = ScriptedPool(["break", {"ok": True}])
        sup = make_supervisor(pool)
        result = asyncio.run(sup.run({"k": 1}, key_id="a"))
        assert result["ok"]
        assert pool.restarts == 1
        assert sup.restarts == 1
        assert sup.redispatches == 1
        assert sup.worker_failures == 1
        # A success wipes the spec's kill streak and the backoff streak.
        assert sup._kills == {}
        assert sup._restart_streak == 0

    def test_attempt_budget_reraises_pool_failure(self):
        pool = ScriptedPool(["break"] * 10)
        sup = make_supervisor(pool, max_attempts=2, poison_threshold=5)
        with pytest.raises(BrokenExecutor):
            asyncio.run(sup.run({"k": 1}, key_id="a"))
        assert pool.calls == 2
        # The pool is still rebuilt for everyone else's sake.
        assert pool.restarts == 2

    def test_metrics_counters_booked(self):
        pool = ScriptedPool(["break", {"ok": True}])
        sup = make_supervisor(pool)
        asyncio.run(sup.run({"k": 1}, key_id="a"))
        counters = sup.metrics.snapshot()["counters"]
        assert counters["service.supervisor.worker_failures"] == 1
        assert counters["service.supervisor.restarts"] == 1
        assert counters["service.supervisor.redispatches"] == 1

    def test_backoff_grows_until_success(self):
        sleeps = []

        async def fake_sleep(delay):
            sleeps.append(delay)

        pool = ScriptedPool(["break", "break", "break", {"ok": True}])
        sup = make_supervisor(
            pool, backoff_base=0.1, backoff_max=0.25, sleep=fake_sleep,
            max_attempts=10, poison_threshold=10,
        )
        asyncio.run(sup.run({"k": 1}, key_id="a"))
        assert sleeps == [0.1, 0.2, 0.25]  # doubles, then clamps


class TestPoison:
    def test_poison_spec_quarantined(self):
        pool = ScriptedPool(["break"] * 10)
        sup = make_supervisor(pool, poison_threshold=3, max_attempts=10)
        with pytest.raises(PoisonJobError) as exc:
            asyncio.run(sup.run({"k": 1}, key_id="bad", label="faults:x"))
        assert exc.value.kills == 3
        assert sup.is_quarantined("bad")
        assert sup.stats()["quarantined"] == 1
        letter = sup.stats()["dead_letters"][0]
        assert letter["key_id"] == "bad"
        assert letter["label"] == "faults:x"
        assert letter["kills"] == 3

    def test_quarantined_key_rejected_without_dispatch(self):
        pool = ScriptedPool(["break"] * 10)
        sup = make_supervisor(pool, poison_threshold=2, max_attempts=10)
        with pytest.raises(PoisonJobError):
            asyncio.run(sup.run({"k": 1}, key_id="bad"))
        calls = pool.calls
        with pytest.raises(PoisonJobError):
            asyncio.run(sup.run({"k": 1}, key_id="bad"))
        assert pool.calls == calls  # never touched the pool again

    def test_success_resets_kill_streak(self):
        # One crash, then a success, then another crash: the spec never
        # accumulates the 2 *consecutive* kills quarantine requires.
        pool = ScriptedPool(["break", {"ok": True}, "break", {"ok": True}])
        sup = make_supervisor(pool, poison_threshold=2, max_attempts=10)

        async def scenario():
            await sup.run({"k": 1}, key_id="a")
            await sup.run({"k": 1}, key_id="a")

        asyncio.run(scenario())
        assert not sup.is_quarantined("a")
        assert sup.stats()["quarantined"] == 0

    def test_innocent_bystanders_not_quarantined(self):
        # The same crash fails two different specs; neither reaches the
        # threshold because kills are attributed per-spec.
        pool = ScriptedPool(["break", "break", {"ok": True}, {"ok": True}])
        sup = make_supervisor(pool, poison_threshold=3, max_attempts=10)

        async def scenario():
            a, b = await asyncio.gather(
                sup.run({"k": 1}, key_id="a"),
                sup.run({"k": 2}, key_id="b"),
            )
            return a, b

        a, b = asyncio.run(scenario())
        assert a["ok"] and b["ok"]
        assert sup.stats()["quarantined"] == 0


class TestSingleFlight:
    def test_one_crash_one_rebuild(self):
        # Two in-flight jobs die on the same crash; exactly one rebuild
        # happens (the generation counter arbitrates).
        gate = asyncio.Event()

        class CrashRoundPool:
            def __init__(self):
                self.broken = True
                self.restarts = 0

            async def run(self, payload):
                if self.broken:
                    await gate.wait()
                    raise BrokenProcessPool("shared crash")
                return {"ok": True}

            def restart(self):
                self.broken = False
                self.restarts += 1

        pool = CrashRoundPool()
        sup = make_supervisor(pool)

        async def scenario():
            tasks = [
                asyncio.create_task(sup.run({"k": i}, key_id=f"k{i}"))
                for i in range(2)
            ]
            await asyncio.sleep(0)  # both enter pool.run
            gate.set()
            return await asyncio.gather(*tasks)

        results = asyncio.run(scenario())
        assert all(r["ok"] for r in results)
        assert pool.restarts == 1
        assert sup.restarts == 1
        assert sup.redispatches == 2
