"""Tests for the cross-iteration dependence checker."""

from repro.analysis.dependence import check_parallel_loop, is_parallel_loop
from repro.minic.parser import parse


def main_loop(body, pragma="#pragma omp parallel for"):
    src = f"void main() {{\n{pragma}\nfor (int i = 0; i < n; i++) {{ {body} }}\n}}"
    return parse(src).function("main").body.stmts[-1]


class TestParallelLoops:
    def test_elementwise_map_is_parallel(self):
        assert is_parallel_loop(main_loop("B[i] = A[i] * 2.0;"))

    def test_local_temp_is_parallel(self):
        assert is_parallel_loop(main_loop("float t = A[i]; B[i] = t * t;"))

    def test_private_clause_scalar_is_parallel(self):
        loop = main_loop(
            "t = A[i]; B[i] = t;",
            pragma="#pragma omp parallel for private(t)",
        )
        assert is_parallel_loop(loop)

    def test_reduction_is_parallel(self):
        loop = main_loop(
            "sum += A[i];", pragma="#pragma omp parallel for reduction(+:sum)"
        )
        assert is_parallel_loop(loop)

    def test_in_place_update_is_parallel(self):
        assert is_parallel_loop(main_loop("A[i] = A[i] + 1.0;"))

    def test_gather_is_parallel(self):
        assert is_parallel_loop(main_loop("C[i] = A[B[i]];"))


class TestSequentialLoops:
    def test_shared_scalar_write_rejected(self):
        report = check_parallel_loop(main_loop("t = A[i]; B[i] = t;"))
        assert not report.parallel
        assert any("t" in v for v in report.violations)

    def test_recurrence_rejected(self):
        report = check_parallel_loop(main_loop("A[i] = A[i - 1] + 1.0;"))
        assert not report.parallel

    def test_forward_dependence_rejected(self):
        assert not is_parallel_loop(main_loop("A[i] = A[i + 1];"))

    def test_invariant_write_rejected(self):
        assert not is_parallel_loop(main_loop("A[0] = A[i];"))

    def test_nonlinear_write_rejected(self):
        assert not is_parallel_loop(main_loop("A[i * i] = 1.0;"))

    def test_indirect_write_without_pragma_rejected(self):
        loop = main_loop("A[B[i]] = 1.0;", pragma="")
        assert not is_parallel_loop(loop)

    def test_indirect_write_with_pragma_trusted(self):
        assert is_parallel_loop(main_loop("A[B[i]] = 1.0;"))

    def test_malformed_loop_not_parallel(self):
        prog = parse("void main() { for (; x < 1; x++) { A[x] = 0.0; } }")
        loop = prog.function("main").body.stmts[0]
        assert not is_parallel_loop(loop)
