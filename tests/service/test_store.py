"""Tests for the shared result store (concurrency-safe get-or-compute)."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.store import ResultStore


class TestBasics:
    def test_get_put_roundtrip(self):
        store = ResultStore()
        assert store.get(("k",)) is None
        store.put(("k",), 42)
        assert store.get(("k",)) == 42
        assert ("k",) in store
        assert len(store) == 1

    def test_get_or_compute_computes_once(self):
        store = ResultStore()
        calls = []
        for _ in range(3):
            value = store.get_or_compute(("a", 1), lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1
        assert store.stats() == (2, 1, 1)

    def test_clear_starts_fresh_generation(self):
        # A wipe resets the hit/miss/eviction counters (a recovery-time
        # reload must not inherit prior-generation telemetry) and books
        # itself as a clear, distinct from evictions-under-pressure.
        store = ResultStore(max_entries=1)
        store.get_or_compute("k", lambda: 1)
        store.get_or_compute("k", lambda: 1)
        store.put("k2", 2)  # evicts "k"
        store.clear()
        assert len(store) == 0
        assert store.stats() == (0, 0, 0)
        assert store.evictions == 0
        assert store.clears == 1
        stats = store.cache_stats()
        assert stats["clears"] == 1
        assert stats["evictions"] == 0

    def test_clear_metric_counter(self):
        metrics = MetricsRegistry()
        store = ResultStore(metrics=metrics, name="svc")
        store.put("k", 1)
        store.clear()
        store.clear()
        counters = metrics.snapshot()["counters"]
        assert counters["svc.clears"] == 2
        assert metrics.snapshot()["gauges"]["svc.size"]["value"] == 0

    def test_compute_exception_releases_key(self):
        store = ResultStore()
        with pytest.raises(RuntimeError):
            store.get_or_compute("k", self._boom)
        # A later compute for the same key must not deadlock or see
        # stale state.
        assert store.get_or_compute("k", lambda: "ok") == "ok"

    @staticmethod
    def _boom():
        raise RuntimeError("compute failed")


class TestConcurrency:
    def test_concurrent_identical_keys_compute_once(self):
        store = ResultStore()
        calls = []
        barrier = threading.Barrier(8)

        def compute():
            calls.append(1)
            return "result"

        results = []

        def worker():
            barrier.wait()
            results.append(store.get_or_compute("hot", compute))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == ["result"] * 8
        assert len(calls) == 1
        hits, misses, _ = store.stats()
        assert misses == 1
        assert hits == 7

    def test_distinct_keys_do_not_serialize(self):
        # Two distinct keys computing concurrently must not deadlock on
        # each other: thread A's compute blocks until thread B has
        # *started* computing, which only works if B isn't waiting on A.
        store = ResultStore()
        b_started = threading.Event()

        def compute_a():
            assert b_started.wait(5), "key B never started: keys serialized"
            return "a"

        done = {}

        def run_a():
            done["a"] = store.get_or_compute("ka", compute_a)

        def run_b():
            done["b"] = store.get_or_compute(
                "kb", lambda: (b_started.set(), "b")[1]
            )

        ta = threading.Thread(target=run_a)
        tb = threading.Thread(target=run_b)
        ta.start()
        tb.start()
        ta.join(10)
        tb.join(10)
        assert done == {"a": "a", "b": "b"}


class TestMetrics:
    def test_counters_exported(self):
        metrics = MetricsRegistry()
        store = ResultStore(metrics=metrics, name="test.cache")
        store.get_or_compute("k", lambda: 1)
        store.get_or_compute("k", lambda: 1)
        store.get("k", record=True)
        store.get("absent", record=True)
        counters = metrics.snapshot()["counters"]
        assert counters["test.cache.hits"] == 2
        assert counters["test.cache.misses"] == 2
        assert metrics.snapshot()["gauges"]["test.cache.size"]["value"] == 1


class TestLRUBound:
    def test_insert_past_bound_evicts_coldest(self):
        store = ResultStore(max_entries=2)
        store.put(("a",), 1)
        store.put(("b",), 2)
        store.put(("c",), 3)
        assert store.get(("a",)) is None  # coldest entry evicted
        assert store.get(("b",)) == 2
        assert store.get(("c",)) == 3
        assert store.evictions == 1

    def test_hit_refreshes_recency(self):
        store = ResultStore(max_entries=2)
        store.put(("a",), 1)
        store.put(("b",), 2)
        assert store.get(("a",)) == 1  # touch: "a" is now the hottest
        store.put(("c",), 3)
        assert store.get(("b",)) is None
        assert store.get(("a",)) == 1

    def test_get_or_compute_respects_bound(self):
        store = ResultStore(max_entries=2)
        for name in ("a", "b", "c"):
            store.get_or_compute((name,), lambda name=name: name.upper())
        assert len(store) == 2
        assert store.evictions == 1
        assert store.get(("a",)) is None

    def test_unbounded_by_default(self):
        store = ResultStore()
        for i in range(100):
            store.put(("k", i), i)
        assert len(store) == 100
        assert store.evictions == 0

    def test_cache_stats_exposes_evictions(self):
        metrics = MetricsRegistry()
        store = ResultStore(metrics=metrics, name="svc", max_entries=1)
        store.put(("a",), 1)
        store.put(("b",), 2)
        store.get(("b",), record=True)
        store.get(("a",), record=True)
        assert store.cache_stats() == {
            "hits": 1,
            "misses": 1,
            "size": 1,
            "evictions": 1,
            "clears": 0,
            "max_entries": 1,
        }
        assert metrics.snapshot()["counters"]["svc.evictions"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultStore(max_entries=0)
