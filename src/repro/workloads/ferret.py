"""ferret (PARSEC): content-based image similarity search.

Shape: a database of images, each a small pointer-based bundle (header →
feature vector → region descriptors) allocated piecemeal at load time —
"benchmark ferret performs 80,298 shared memory allocations at runtime
and the total usage of shared memory is 83 MB.  It cannot run correctly
using Intel MYO due to the large number of allocations" (Table III).

* ``cpu``  — queries scan the database on the host.
* ``mic``  — the MYO baseline: shared allocations hit MYO's descriptor
  limit at full scale (the paper measured its 7.81x "by using 1500 input
  images", below the limit); every first touch on the device faults a
  page across the bus.
* ``opt``  — COMP's arena: objects are bump-allocated into segmented
  buffers, bulk-DMA'd, and dereferenced through bid+delta pointers.

The similarity kernel itself is modestly parallel (pipeline stages limit
concurrency) and pointer-chasing-irregular, so the coprocessor never
beats the host on ferret — only the MYO-vs-arena gap closes (Table III).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import MyoLimitError
from repro.hardware.device import OpCounters
from repro.runtime.arena import ArenaAllocator
from repro.runtime.executor import Machine
from repro.runtime.myo import MyoRuntime
from repro.workloads.base import SharedMemoryWorkload, Table2Row

N_IMAGES = 3500  # paper: "3500 images"
MYO_IMAGES = 1500  # paper: Table III speedup measured with 1500 images
TOTAL_ALLOCATIONS = 80_298
TOTAL_BYTES = 83 * (1 << 20)
STATIC_ALLOC_SITES = 19
#: Pipeline parallelism is bounded by in-flight queries, well under the
#: MIC's 200 threads — one reason ferret never beats the host.
QUERIES = 32
FEATURES = 48
#: Work per query-image pair (multi-region EMD-style comparison).
FLOPS_PER_PAIR = 52_000.0

#: A ferret-like loader fragment with the paper's 19 static allocation
#: sites, used by the shared-memory lowering pass (Table III "Static").
MINIC_SNIPPET = """
void load_image(int id) {
    hdr = Offload_shared_malloc(64);
    name = Offload_shared_malloc(256);
    fvec = Offload_shared_malloc(192);
    meta = Offload_shared_malloc(32);
    thumb = Offload_shared_malloc(4096);
    r0 = Offload_shared_malloc(96);
    r1 = Offload_shared_malloc(96);
    r2 = Offload_shared_malloc(96);
    r3 = Offload_shared_malloc(96);
    r4 = Offload_shared_malloc(96);
    r5 = Offload_shared_malloc(96);
    r6 = Offload_shared_malloc(96);
    r7 = Offload_shared_malloc(96);
    weights = Offload_shared_malloc(128);
    hist = Offload_shared_malloc(512);
    bbox = Offload_shared_malloc(48);
    mask = Offload_shared_malloc(1024);
    links = Offload_shared_malloc(64);
    index_node = Offload_shared_malloc(80);
}
"""


class FerretWorkload(SharedMemoryWorkload):
    """Drives the similarity search over the three runtimes."""

    def __init__(self) -> None:
        super().__init__(
            name="ferret",
            table2=Table2Row(
                suite="PARSEC",
                paper_input="3500 images",
                kloc=11.159,
                shared_memory=7.81,
            ),
        )
        self.minic_snippet = MINIC_SNIPPET
        self.static_alloc_sites = STATIC_ALLOC_SITES
        self.total_allocations = TOTAL_ALLOCATIONS

    # -- the database -----------------------------------------------------

    def _features(self, n_images: int) -> np.ndarray:
        rng = self._rng(4242)
        return rng.random((n_images, FEATURES)).astype(np.float32)

    def _queries(self, n_images: int) -> np.ndarray:
        rng = self._rng(77)
        return rng.random((QUERIES, FEATURES)).astype(np.float32)

    def _allocation_plan(self, n_images: int):
        """(count, bytes) of shared allocations for an n-image database."""
        per_image = TOTAL_ALLOCATIONS // N_IMAGES  # 22 bundle pieces
        remainder = TOTAL_ALLOCATIONS - per_image * N_IMAGES
        count = per_image * n_images + (remainder if n_images >= N_IMAGES else 0)
        avg_bytes = TOTAL_BYTES // TOTAL_ALLOCATIONS
        return count, avg_bytes

    def _similarity(self, n_images: int) -> Dict[str, np.ndarray]:
        """The query results — identical across all three variants."""
        db = self._features(n_images)
        queries = self._queries(n_images)
        scores = queries @ db.T  # (QUERIES, n_images)
        return {"best_match": scores.argmax(axis=1).astype(np.int32)}

    def _compute_counters(self, n_images: int) -> OpCounters:
        pairs = QUERIES * n_images
        return OpCounters(
            flops=pairs * FLOPS_PER_PAIR,
            loads=pairs * FEATURES,
            bytes_read=pairs * FEATURES * 4.0,
            irregular_accesses=pairs * FEATURES * 0.5,  # pointer-chased halves
        )

    # -- variants -------------------------------------------------------------
    # All three variants run the Table III input (1500 images) so their
    # timings and outputs are directly comparable; the full 3500-image
    # database only appears in the MYO-failure / arena-capacity hooks.

    def _run_cpu(self, machine: Machine) -> Dict[str, np.ndarray]:
        counters = self._compute_counters(MYO_IMAGES)
        machine.clock.advance(
            machine.cpu_model.compute_time(
                counters, parallel_iterations=QUERIES, vectorizable=False
            )
        )
        return self._similarity(MYO_IMAGES)

    def _run_mic_myo(self, machine: Machine) -> Dict[str, np.ndarray]:
        """The MYO baseline at the reduced 1500-image input.

        At full scale :meth:`myo_fails_at_full_scale` demonstrates the
        Table III failure; timing comparisons use the reduced input like
        the paper.
        """
        n_images = MYO_IMAGES
        myo = MyoRuntime(machine.coi)
        count, avg_bytes = self._allocation_plan(n_images)
        addrs = [myo.shared_malloc(avg_bytes) for _ in range(count)]
        self._offload_compute(machine, n_images)
        for addr in addrs:
            myo.device_access(addr, avg_bytes)
        self._myo_stats = myo.stats
        return self._similarity(n_images)

    def _run_mic_arena(
        self, machine: Machine, n_images: int = MYO_IMAGES
    ) -> Dict[str, np.ndarray]:
        arena = ArenaAllocator(chunk_bytes=16 << 20)
        count, avg_bytes = self._allocation_plan(n_images)
        for _ in range(count):
            arena.allocate(avg_bytes)
        arena.copy_to_device(machine.coi)
        self._offload_compute(machine, n_images)
        self._arena = arena
        return self._similarity(n_images)

    def _offload_compute(self, machine: Machine, n_images: int) -> None:
        counters = self._compute_counters(n_images)
        event = machine.coi.launch_kernel(
            machine.mic_model.compute_time(
                counters, parallel_iterations=QUERIES, vectorizable=False
            ),
            label="ferret-similarity",
        )
        machine.clock.wait_until(event)

    # -- Table III hooks ------------------------------------------------------

    def myo_fails_at_full_scale(self) -> bool:
        """Reproduce "It cannot run correctly using Intel MYO"."""
        machine = self.machine()
        myo = MyoRuntime(machine.coi)
        count, avg_bytes = self._allocation_plan(N_IMAGES)
        try:
            for _ in range(count):
                myo.shared_malloc(avg_bytes)
        except MyoLimitError:
            return True
        return False

    def arena_runs_at_full_scale(self) -> int:
        """The arena handles all 80,298 allocations; returns the count."""
        arena = ArenaAllocator(chunk_bytes=16 << 20)
        count, avg_bytes = self._allocation_plan(N_IMAGES)
        for _ in range(count):
            arena.allocate(avg_bytes)
        return arena.alloc_count


def make() -> FerretWorkload:
    """Construct the ferret workload instance."""
    return FerretWorkload()
