"""Helpers for building AST fragments from source templates.

Transforms construct a fair amount of new code (allocation prologues,
transfer pragmas, blocked loop nests).  Rather than assembling dataclasses
by hand, they parse small source templates and substitute placeholder
identifiers, which keeps the transform code close to the paper's Figure 5
listings.

Placeholders are ordinary identifiers; substitution values may be strings
(renames), expressions, or Python ints/floats (converted to literals).
"""

from __future__ import annotations

from typing import List, Union

from repro.minic import ast_nodes as ast
from repro.minic.parser import parse, parse_expr
from repro.minic.visitor import substitute

SubValue = Union[str, int, float, ast.Expr]


def _normalize(subs: dict) -> dict:
    normalized = {}
    for key, value in subs.items():
        if isinstance(value, bool):
            normalized[key] = ast.IntLit(int(value))
        elif isinstance(value, int):
            normalized[key] = ast.IntLit(value)
        elif isinstance(value, float):
            normalized[key] = ast.FloatLit(value)
        else:
            normalized[key] = value
    return normalized


def expr(text: str, **subs: SubValue) -> ast.Expr:
    """Parse an expression template, substituting placeholder identifiers."""
    node = parse_expr(text)
    if subs:
        node = substitute(node, _normalize(subs))
    return node


def stmts(text: str, **subs: SubValue) -> List[ast.Stmt]:
    """Parse a statement-list template into a list of statements."""
    program = parse("void __template__() {\n" + text + "\n}")
    body = program.function("__template__").body
    assert body is not None
    if subs:
        body = substitute(body, _normalize(subs))
    return body.stmts


def stmt(text: str, **subs: SubValue) -> ast.Stmt:
    """Parse a single-statement template."""
    result = stmts(text, **subs)
    if len(result) != 1:
        raise ValueError(f"template produced {len(result)} statements, expected 1")
    return result[0]


def ident(name: str) -> ast.Ident:
    """Identifier node."""
    return ast.Ident(name)


def intlit(value: int) -> ast.IntLit:
    """Integer literal node."""
    return ast.IntLit(value)


def binop(op: str, left: ast.Expr, right: ast.Expr) -> ast.BinOp:
    """Binary operation node."""
    return ast.BinOp(op, left, right)


def call(func: str, *args: ast.Expr) -> ast.Call:
    """Call expression node."""
    return ast.Call(func, list(args))


def assign(target: ast.Expr, value: ast.Expr, op: str = "=") -> ast.Assign:
    """Assignment statement node."""
    return ast.Assign(target, value, op)
