"""Tests for the data streaming transformation (Section III)."""

import numpy as np
import pytest

from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.runtime.executor import Machine, run_program
from repro.transforms.streaming import (
    StreamingOptions,
    apply_streaming,
)

BLACKSCHOLES_LIKE = """
void main() {
#pragma offload target(mic:0) in(sptprice : length(n)) in(strike : length(n)) in(n) out(prices : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        prices[i] = sqrt(sptprice[i]) * 0.5 + strike[i];
    }
}
"""

INOUT_LOOP = """
void main() {
#pragma offload target(mic:0) inout(A : length(n)) in(n)
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        A[i] = A[i] * 2.0 + 1.0;
    }
}
"""

OFFSET_LOOP = """
void main() {
#pragma offload target(mic:0) in(A : length(n + 2)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] + A[i + 2];
    }
}
"""

RESIDENT_MIX = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(table : length(4)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * table[0] + table[3];
    }
}
"""

REDUCTION_LOOP = """
void main() {
    float sum = 0.0;
#pragma offload target(mic:0) in(A : length(n)) in(n) inout(sum)
#pragma omp parallel for reduction(+:sum)
    for (int i = 0; i < n; i++) {
        sum += A[i];
    }
    total = sum;
}
"""

IRREGULAR_LOOP = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(B : length(n)) in(n) out(C : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        C[i] = A[B[i]];
    }
}
"""


def run_both(source, arrays_factory, scalars, options=None, scale=1.0):
    """Run original and streamed versions; return (orig, streamed) results."""
    original = run_program(
        source, arrays=arrays_factory(), scalars=dict(scalars),
        machine=Machine(scale=scale),
    )
    prog = parse(source)
    report = apply_streaming(prog, options or StreamingOptions(num_blocks=8))
    assert report.applied, report.reason
    streamed = run_program(
        prog, arrays=arrays_factory(), scalars=dict(scalars),
        machine=Machine(scale=scale),
    )
    return original, streamed


def n_arrays(n):
    def factory():
        rng = np.random.default_rng(42)
        return {
            "sptprice": rng.random(n).astype(np.float32) + 1.0,
            "strike": rng.random(n).astype(np.float32),
            "prices": np.zeros(n, dtype=np.float32),
        }

    return factory


class TestCorrectness:
    @pytest.mark.parametrize("double_buffer", [False, True])
    def test_blackscholes_output_identical(self, double_buffer):
        n = 233  # deliberately not divisible by the block count
        options = StreamingOptions(num_blocks=8, double_buffer=double_buffer)
        orig, streamed = run_both(
            BLACKSCHOLES_LIKE, n_arrays(n), {"n": n}, options
        )
        assert np.array_equal(orig.array("prices"), streamed.array("prices"))

    @pytest.mark.parametrize("double_buffer", [False, True])
    def test_inout_identical(self, double_buffer):
        n = 100

        def factory():
            return {"A": np.arange(n, dtype=np.float32)}

        options = StreamingOptions(num_blocks=4, double_buffer=double_buffer)
        orig, streamed = run_both(INOUT_LOOP, factory, {"n": n}, options)
        assert np.array_equal(orig.array("A"), streamed.array("A"))

    @pytest.mark.parametrize("double_buffer", [False, True])
    def test_offset_accesses_identical(self, double_buffer):
        n = 64

        def factory():
            return {
                "A": np.arange(n + 2, dtype=np.float32),
                "B": np.zeros(n, dtype=np.float32),
            }

        options = StreamingOptions(num_blocks=4, double_buffer=double_buffer)
        orig, streamed = run_both(OFFSET_LOOP, factory, {"n": n}, options)
        assert np.array_equal(orig.array("B"), streamed.array("B"))

    @pytest.mark.parametrize("double_buffer", [False, True])
    def test_resident_array_identical(self, double_buffer):
        n = 64

        def factory():
            return {
                "A": np.arange(n, dtype=np.float32),
                "table": np.array([2.0, 0.0, 0.0, 5.0], dtype=np.float32),
                "B": np.zeros(n, dtype=np.float32),
            }

        options = StreamingOptions(num_blocks=4, double_buffer=double_buffer)
        orig, streamed = run_both(RESIDENT_MIX, factory, {"n": n}, options)
        assert np.array_equal(orig.array("B"), streamed.array("B"))

    @pytest.mark.parametrize("double_buffer", [False, True])
    def test_reduction_identical(self, double_buffer):
        n = 96

        def factory():
            return {"A": np.ones(n, dtype=np.float32)}

        options = StreamingOptions(num_blocks=4, double_buffer=double_buffer)
        orig, streamed = run_both(REDUCTION_LOOP, factory, {"n": n}, options)
        assert orig.scalar("total") == streamed.scalar("total") == n

    def test_single_iteration_block_edge(self):
        """More blocks than iterations: trailing blocks must be empty."""
        n = 3
        options = StreamingOptions(num_blocks=8)
        orig, streamed = run_both(BLACKSCHOLES_LIKE, n_arrays(n), {"n": n}, options)
        assert np.array_equal(orig.array("prices"), streamed.array("prices"))


class TestLegality:
    def test_irregular_loop_rejected(self):
        prog = parse(IRREGULAR_LOOP)
        report = apply_streaming(prog)
        assert not report.applied
        assert "irregular" in report.reason

    def test_non_offloaded_loop_rejected(self):
        prog = parse(
            "void main() {\n#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { B[i] = A[i]; } }"
        )
        report = apply_streaming(prog)
        assert not report.applied

    def test_nonzero_start_rejected(self):
        prog = parse(
            "void main() {\n"
            "#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))\n"
            "#pragma omp parallel for\n"
            "for (int i = 1; i < n; i++) { B[i] = A[i]; } }"
        )
        report = apply_streaming(prog)
        assert not report.applied

    def test_negative_offset_array_falls_back_to_resident(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) {
                B[i] = i > 0 ? A[i - 1] : A[i];
            }
        }
        """
        prog = parse(src)
        # B still streams (unit writes); A is resident.  The transform
        # applies and results stay correct.
        report = apply_streaming(prog, StreamingOptions(num_blocks=4))
        assert report.applied
        n = 32
        arrays = {
            "A": np.arange(n, dtype=np.float32),
            "B": np.zeros(n, dtype=np.float32),
        }
        result = run_program(prog, arrays=arrays, scalars={"n": n})
        expected = run_program(src, arrays={
            "A": np.arange(n, dtype=np.float32),
            "B": np.zeros(n, dtype=np.float32),
        }, scalars={"n": n})
        assert np.array_equal(result.array("B"), expected.array("B"))

    def test_symbolic_coefficient_needs_bindings(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(n * d)) in(n) in(d) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) {
                B[i] = A[i * d];
            }
        }
        """
        unbound = apply_streaming(parse(src))
        assert not unbound.applied
        prog = parse(src)
        bound = apply_streaming(
            prog, StreamingOptions(num_blocks=4, bindings={"d": 3})
        )
        assert bound.applied
        n, d = 20, 3
        arrays = {
            "A": np.arange(n * d, dtype=np.float32),
            "B": np.zeros(n, dtype=np.float32),
        }
        result = run_program(prog, arrays=arrays, scalars={"n": n, "d": d})
        assert np.array_equal(result.array("B"), np.arange(n) * d)


class TestTimingAndMemory:
    SCALE = 5000.0

    def test_streaming_reduces_time(self):
        """Figure 12: overlap hides transfer time."""
        n = 1 << 14
        orig, streamed = run_both(
            BLACKSCHOLES_LIKE,
            n_arrays(n),
            {"n": n},
            StreamingOptions(num_blocks=16),
            scale=self.SCALE,
        )
        assert streamed.stats.total_time < orig.stats.total_time

    def test_double_buffer_cuts_memory(self):
        """Figure 13: streamed arrays occupy two blocks, not full size."""
        n = 1 << 14
        machine_plain = Machine(scale=self.SCALE)
        run_program(
            BLACKSCHOLES_LIKE, arrays=n_arrays(n)(), scalars={"n": n},
            machine=machine_plain,
        )
        prog = parse(BLACKSCHOLES_LIKE)
        apply_streaming(prog, StreamingOptions(num_blocks=16, double_buffer=True))
        machine_stream = Machine(scale=self.SCALE)
        run_program(prog, arrays=n_arrays(n)(), scalars={"n": n},
                    machine=machine_stream)
        reduction = 1 - machine_stream.device_memory.peak / machine_plain.device_memory.peak
        assert reduction > 0.6

    def test_thread_reuse_single_launch(self):
        n = 1 << 12
        prog = parse(BLACKSCHOLES_LIKE)
        apply_streaming(prog, StreamingOptions(num_blocks=8, thread_reuse=True))
        machine = Machine()
        result = run_program(prog, arrays=n_arrays(n)(), scalars={"n": n},
                             machine=machine)
        assert result.stats.kernel_launches == 1
        assert result.stats.kernel_signals == 7

    def test_no_thread_reuse_many_launches(self):
        n = 1 << 12
        prog = parse(BLACKSCHOLES_LIKE)
        apply_streaming(prog, StreamingOptions(num_blocks=8, thread_reuse=False))
        result = run_program(prog, arrays=n_arrays(n)(), scalars={"n": n},
                             machine=Machine())
        assert result.stats.kernel_launches == 8

    def test_more_blocks_less_memory(self):
        n = 1 << 14

        def peak(nb):
            prog = parse(BLACKSCHOLES_LIKE)
            apply_streaming(prog, StreamingOptions(num_blocks=nb))
            machine = Machine()
            run_program(prog, arrays=n_arrays(n)(), scalars={"n": n},
                        machine=machine)
            return machine.device_memory.peak

        assert peak(32) < peak(4)


class TestGeneratedSource:
    def test_printed_output_reparses(self):
        prog = parse(BLACKSCHOLES_LIKE)
        apply_streaming(prog, StreamingOptions(num_blocks=8))
        printed = to_source(prog)
        assert parse(printed) == prog

    def test_figure5_shape_markers(self):
        """The generated source carries the Figure 5(c) structure."""
        prog = parse(BLACKSCHOLES_LIKE)
        apply_streaming(prog, StreamingOptions(num_blocks=8, double_buffer=True))
        printed = to_source(prog)
        assert "sptprice__s1" in printed and "sptprice__s2" in printed
        assert "prices__b" in printed
        assert "offload_transfer" in printed
        assert "signal(0)" in printed
        assert "wait(__k)" in printed
        assert "free_if(1)" in printed

    def test_full_buffer_variant_has_no_renames(self):
        prog = parse(BLACKSCHOLES_LIKE)
        apply_streaming(prog, StreamingOptions(num_blocks=8, double_buffer=False))
        printed = to_source(prog)
        assert "__s1" not in printed
        assert "sptprice[i" in printed or "sptprice[__start" in printed
