"""Device memory footprint estimation for offload pragmas.

Section III-B motivates the memory-usage optimization: "There is at most
8 GB memory available on MIC ... Applications with large memory footprints
cannot be directly offloaded to MIC."  The streaming transform needs to
know how many bytes an offload's clauses will allocate on the device, both
to decide whether double-buffering is required and to report the >80%
memory savings of Figure 13.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.errors import AnalysisError
from repro.minic import ast_nodes as ast


def eval_int_expr(expr: ast.Expr, env: Mapping[str, int]) -> int:
    """Evaluate a clause expression to an integer given scalar bindings."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return int(expr.value)
    if isinstance(expr, ast.Ident):
        if expr.name not in env:
            raise AnalysisError(f"unbound symbol {expr.name!r} in clause expression")
        return int(env[expr.name])
    if isinstance(expr, ast.UnOp) and expr.op == "-":
        return -eval_int_expr(expr.operand, env)
    if isinstance(expr, ast.BinOp):
        left = eval_int_expr(expr.left, env)
        right = eval_int_expr(expr.right, env)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b,
            "%": lambda a, b: a % b,
        }
        if expr.op not in ops:
            raise AnalysisError(f"operator {expr.op!r} not allowed in clauses")
        return ops[expr.op](left, right)
    if isinstance(expr, ast.Cond):
        return (
            eval_int_expr(expr.then, env)
            if eval_int_expr(expr.cond, env)
            else eval_int_expr(expr.other, env)
        )
    if isinstance(expr, ast.Call) and expr.func in ("min", "max"):
        args = [eval_int_expr(a, env) for a in expr.args]
        return min(args) if expr.func == "min" else max(args)
    raise AnalysisError(f"cannot evaluate {type(expr).__name__} in clause")


def clause_bytes(
    clause: ast.TransferClause,
    env: Mapping[str, int],
    element_size: int = 4,
) -> int:
    """Bytes the device must hold for one transfer clause.

    A clause without a length describes a scalar (one element).  ``nocopy``
    clauses still name device storage when sized, so they count toward the
    footprint but not toward transfer volume (the caller distinguishes).
    """
    if clause.length is None:
        return element_size
    return eval_int_expr(clause.length, env) * element_size


def offload_footprint(
    pragma: ast.OffloadPragma,
    env: Mapping[str, int],
    element_sizes: Optional[Dict[str, int]] = None,
) -> int:
    """Total device bytes allocated by an offload's clauses.

    Clauses targeting the same device buffer (via ``into``) are counted
    once per destination buffer — re-transfers into an existing buffer do
    not grow the footprint.
    """
    element_sizes = element_sizes or {}
    seen: Dict[str, int] = {}
    for clause in pragma.clauses:
        dest = clause.into or clause.var
        size = clause_bytes(clause, env, element_sizes.get(clause.var, 4))
        seen[dest] = max(seen.get(dest, 0), size)
    return sum(seen.values())
