"""Per-benchmark tests: correctness across variants and Table II shape.

The headline reproduction claims live here:

* every benchmark computes identical results on the CPU, the unoptimized
  MIC and the optimized MIC;
* exactly the paper's applicability matrix of optimizations fires;
* the Figure 1 / 10 / 11 structural claims hold (8/12 lose unoptimized,
  9/12 improved, 9/12 beat the CPU after optimization, dedup/bfs/hotspot
  untouched).
"""

import numpy as np
import pytest

from repro.workloads.base import MiniCWorkload
from repro.workloads.suite import get_workload, workload_names

ALL = workload_names()

#: Table II applicability (which pipeline stages must fire per benchmark).
EXPECTED_APPLIED = {
    "blackscholes": {"data-streaming"},
    "streamcluster": {"offload-merging"},
    "dedup": set(),
    "kmeans": {"data-streaming"},
    "CG": {"offload-merging", "data-streaming"},
    "cfd": {"offload-merging"},
    "nn": {"regularization:reorder", "data-streaming"},
    "srad": {"regularization:split"},
    "bfs": set(),
    "hotspot": set(),
}


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(ALL) == 12

    def test_table2_names(self):
        assert ALL == [
            "blackscholes", "streamcluster", "ferret", "dedup", "freqmine",
            "kmeans", "CG", "cfd", "nn", "srad", "bfs", "hotspot",
        ]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_workload("mystery")

    def test_fresh_instances(self):
        assert get_workload("nn") is not get_workload("nn")

    def test_suites_match_paper(self):
        suites = {n: get_workload(n).table2.suite for n in ALL}
        assert suites["blackscholes"] == "PARSEC"
        assert suites["kmeans"] == "Phoenix"
        assert suites["CG"] == "NAS"
        assert suites["srad"] == "Rodinia"


@pytest.mark.parametrize("name", ALL)
class TestCorrectness:
    def test_outputs_match_across_variants(self, name, suite_results):
        result = suite_results[name]
        assert result.outputs_match(), (
            f"{name}: variants disagree on outputs"
        )

    def test_all_variants_ran(self, name, suite_results):
        result = suite_results[name]
        for variant in ("cpu", "mic", "opt"):
            assert result.runs[variant].time > 0


@pytest.mark.parametrize("name", sorted(EXPECTED_APPLIED))
def test_applicability_matches_table2(name, suite_results):
    run = suite_results[name].runs["opt"]
    assert run.pipeline is not None
    applied = {
        a for a in run.pipeline.applied() if a != "thread-reuse"
    }
    assert applied == EXPECTED_APPLIED[name], (
        f"{name}: applied {applied}, expected {EXPECTED_APPLIED[name]}"
    )


class TestFigure1Shape:
    def test_eight_of_twelve_lose_unoptimized(self, suite_results):
        losers = [n for n, r in suite_results.items() if r.unopt_speedup < 1.0]
        assert len(losers) == 8, sorted(losers)

    def test_preopt_winners(self, suite_results):
        winners = {
            n for n, r in suite_results.items() if r.unopt_speedup >= 1.0
        }
        assert winners == {"dedup", "srad", "bfs", "hotspot"}

    def test_streamcluster_is_worst(self, suite_results):
        worst = min(suite_results.values(), key=lambda r: r.unopt_speedup)
        assert worst.name == "streamcluster"
        assert worst.unopt_speedup < 0.1


class TestFigure11Shape:
    def test_nine_of_twelve_improve(self, suite_results):
        improved = [
            n for n, r in suite_results.items() if r.relative_gain > 1.005
        ]
        assert len(improved) == 9, sorted(improved)

    def test_untouched_benchmarks(self, suite_results):
        for name in ("dedup", "bfs", "hotspot"):
            assert suite_results[name].relative_gain == pytest.approx(1.0)

    def test_gain_range_shape(self, suite_results):
        gains = [
            r.relative_gain
            for r in suite_results.values()
            if r.relative_gain > 1.005
        ]
        # Paper: 1.16x to 52.21x, three benchmarks above 16x.
        assert 1.1 <= min(gains) <= 1.3
        assert max(gains) > 30
        assert sum(1 for g in gains if g > 10) == 3

    def test_merging_benchmarks_have_largest_gains(self, suite_results):
        top3 = sorted(
            suite_results.values(), key=lambda r: r.relative_gain
        )[-3:]
        assert {r.name for r in top3} == {"streamcluster", "CG", "cfd"}


class TestFigure10Shape:
    def test_nine_of_twelve_beat_cpu(self, suite_results):
        winners = [n for n, r in suite_results.items() if r.opt_speedup > 1.0]
        assert len(winners) == 9, sorted(winners)

    def test_five_additional_winners(self, suite_results):
        """Paper: 'Our optimizations make an additional 5 benchmarks
        achieve speedups on the MIC over their CPU versions.'"""
        new_winners = {
            n
            for n, r in suite_results.items()
            if r.opt_speedup > 1.0 and r.unopt_speedup < 1.0
        }
        assert len(new_winners) == 5, sorted(new_winners)

    def test_optimized_never_slower_than_unoptimized(self, suite_results):
        for name, result in suite_results.items():
            assert result.opt_speedup >= result.unopt_speedup * 0.999, name


class TestDeviceMemorySafety:
    def test_blackscholes_paper_scale_overflows_without_streaming(self):
        """Section III-B: un-streamed footprints can exceed MIC memory.

        blackscholes at 10^8 options (7 arrays x 400 MB) fits; at 10^9 the
        unoptimized offload must die with the paper's 'runtime error'
        while the double-buffered streamed version runs.
        """
        from repro.errors import DeviceOutOfMemory
        from repro.runtime.executor import Machine

        workload = get_workload("blackscholes")
        huge = 1e9 / 768  # scale for 10^9 options
        with pytest.raises(DeviceOutOfMemory):
            workload.run("mic", machine=Machine(scale=huge))
        streamed = get_workload("blackscholes")
        run = streamed.run("opt", machine=Machine(scale=huge))
        assert run.stats.device_peak_bytes < 8 << 30


class TestWorkloadKinds:
    def test_minic_workloads(self):
        for name in EXPECTED_APPLIED:
            assert isinstance(get_workload(name), MiniCWorkload)

    def test_shared_memory_workloads(self):
        from repro.workloads.base import SharedMemoryWorkload

        for name in ("ferret", "freqmine"):
            assert isinstance(get_workload(name), SharedMemoryWorkload)

    def test_ferret_full_scale_hooks(self):
        ferret = get_workload("ferret")
        assert ferret.myo_fails_at_full_scale()
        assert ferret.arena_runs_at_full_scale() == 80_262 or (
            ferret.arena_runs_at_full_scale() > 75_000
        )

    def test_hand_ported_sources_differ(self):
        for name in ("dedup", "hotspot", "srad", "bfs"):
            workload = get_workload(name)
            assert workload.mic_source is not None
            assert workload.mic_source != workload.source
