"""Metrics registry: counters, gauges, and histograms for one run.

Instrumented layers (the COI runtime, the executor, the arena and MYO
allocators, the fault injector, the campaign service's supervision and
tenant-isolation layers) record quantitative telemetry here — DMA
bytes, retries, arena allocations, kernel-launch latency
distributions, supervisor restarts, circuit-breaker trips.  A registry is deterministic: its snapshot depends only
on the simulated execution, never on wall-clock time, so two runs with
the same seed produce byte-identical snapshot JSON (the property the
regression-diff workflow relies on).

Disabled runs use :data:`NULL_METRICS`, whose instruments are shared
no-ops, so un-traced execution pays one attribute load per hook site
and allocates nothing.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

#: Default histogram bucket upper bounds: decades from 1 ns to 1000 s,
#: suitable for the simulated-seconds distributions the runtime records.
DEFAULT_BOUNDS = tuple(10.0 ** e for e in range(-9, 4))


class Counter:
    """A monotonically increasing value (ints or floats)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value; also remembers the maximum it reached."""

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value: float = 0
        self.max_value: float = 0

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        self.value = value
        self.max_value = max(self.max_value, value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by *delta* (either sign), tracking the max."""
        self.set(self.value + delta)


class Histogram:
    """A fixed-bucket distribution with count/sum/min/max summary."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Optional[List[float]] = None) -> None:
        self.bounds = tuple(sorted(bounds)) if bounds else DEFAULT_BOUNDS
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """Summary plus non-empty buckets, JSON-ready."""
        buckets = {
            f"le_{bound:g}": count
            for bound, count in zip(self.bounds, self.bucket_counts)
            if count
        }
        if self.bucket_counts[-1]:
            buckets["overflow"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Name-keyed instruments, created lazily on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(
        self, name: str, bounds: Optional[List[float]] = None
    ) -> Histogram:
        """Get or create the named histogram (bounds apply on creation)."""
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(bounds)
        return inst

    def counter_value(self, name: str, default: float = 0) -> float:
        """The named counter's value without creating it when absent."""
        inst = self._counters.get(name)
        return inst.value if inst is not None else default

    def snapshot(self) -> dict:
        """A flat, sorted, JSON-ready view of every instrument.

        Counters and gauges flatten to ``name -> number``; histograms to
        ``name -> {count, sum, min, max, mean, buckets}``.  Keys are
        sorted so two snapshots of identical runs diff cleanly.
        """
        return {
            "counters": {
                name: inst.value for name, inst in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": inst.value, "max": inst.max_value}
                for name, inst in sorted(self._gauges.items())
            },
            "histograms": {
                name: inst.as_dict()
                for name, inst in sorted(self._histograms.items())
            },
        }


def merge_snapshot(base: dict, other: dict) -> dict:
    """Fold one snapshot into another for fleet-wide aggregation.

    Counters and histogram count/sum/min/max/buckets add; gauges keep
    the latest value and the running maximum.  *base* is returned (and
    mutated), so a service can fold per-worker snapshots into one
    rollup: ``reduce(merge_snapshot, worker_snaps, empty_snapshot)``.
    Inputs are the dicts :meth:`MetricsRegistry.snapshot` produces.
    """
    counters = base.setdefault("counters", {})
    for name, value in other.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = base.setdefault("gauges", {})
    for name, data in other.get("gauges", {}).items():
        seen = gauges.get(name)
        if seen is None:
            gauges[name] = dict(data)
        else:
            seen["value"] = data["value"]
            seen["max"] = max(seen["max"], data["max"])
    histograms = base.setdefault("histograms", {})
    for name, data in other.get("histograms", {}).items():
        seen = histograms.get(name)
        if seen is None:
            histograms[name] = {**data, "buckets": dict(data["buckets"])}
            continue
        merged_count = seen["count"] + data["count"]
        seen["sum"] += data["sum"]
        seen["min"] = (
            min(seen["min"], data["min"]) if data["count"] and seen["count"]
            else (data["min"] if data["count"] else seen["min"])
        )
        seen["max"] = max(seen["max"], data["max"])
        seen["count"] = merged_count
        seen["mean"] = seen["sum"] / merged_count if merged_count else 0.0
        for bucket, count in data["buckets"].items():
            seen["buckets"][bucket] = seen["buckets"].get(bucket, 0) + count
    # Sort every section so merged snapshots diff as cleanly as raw ones.
    base["counters"] = dict(sorted(counters.items()))
    base["gauges"] = dict(sorted(gauges.items()))
    base["histograms"] = dict(sorted(histograms.items()))
    return base


class _NullInstrument:
    """Counter/gauge/histogram stand-in that discards every update."""

    __slots__ = ()
    value = 0
    max_value = 0
    count = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Registry stand-in for disabled runs: all instruments are no-ops."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, bounds: Optional[List[float]] = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counter_value(self, name: str, default: float = 0) -> float:
        return default

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
