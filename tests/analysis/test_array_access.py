"""Tests for affine index extraction and access classification."""

import pytest

from repro.errors import NotAffineError
from repro.analysis.array_access import (
    AccessKind,
    classify_accesses,
    extract_linear_form,
    irregular_accesses,
    is_streamable,
    loop_variable,
)
from repro.minic.parser import parse, parse_expr


def loop_from(body, init="int i = 0", cond="i < n", step="i++", pragmas=""):
    src = f"void main() {{\n{pragmas}\nfor ({init}; {cond}; {step}) {{ {body} }}\n}}"
    return parse(src).function("main").body.stmts[0]


class TestLinearForm:
    def test_plain_loop_var(self):
        form = extract_linear_form(parse_expr("i"), "i")
        assert (form.coeff, form.const) == (1, 0)

    def test_constant(self):
        form = extract_linear_form(parse_expr("7"), "i")
        assert (form.coeff, form.const) == (0, 7)

    def test_affine_combination(self):
        form = extract_linear_form(parse_expr("4 * i + 3"), "i")
        assert (form.coeff, form.const) == (4, 3)

    def test_commuted_product(self):
        form = extract_linear_form(parse_expr("i * 4"), "i")
        assert form.coeff == 4

    def test_subtraction(self):
        form = extract_linear_form(parse_expr("2 * i - 5"), "i")
        assert (form.coeff, form.const) == (2, -5)

    def test_negation(self):
        form = extract_linear_form(parse_expr("-i"), "i")
        assert form.coeff == -1

    def test_nested_parens(self):
        form = extract_linear_form(parse_expr("2 * (i + 1)"), "i")
        assert (form.coeff, form.const) == (2, 2)

    def test_symbolic_coefficient_with_binding(self):
        form = extract_linear_form(parse_expr("cols * i"), "i", {"cols": 64})
        assert form.coeff == 64

    def test_symbolic_without_binding_raises(self):
        with pytest.raises(NotAffineError):
            extract_linear_form(parse_expr("cols * i"), "i")

    def test_quadratic_raises(self):
        with pytest.raises(NotAffineError):
            extract_linear_form(parse_expr("i * i"), "i")

    def test_indirect_raises(self):
        with pytest.raises(NotAffineError):
            extract_linear_form(parse_expr("B[i]"), "i")

    def test_exact_division(self):
        form = extract_linear_form(parse_expr("(4 * i + 8) / 2"), "i")
        assert (form.coeff, form.const) == (2, 4)

    def test_inexact_division_raises(self):
        with pytest.raises(NotAffineError):
            extract_linear_form(parse_expr("i / 2"), "i")


class TestClassification:
    def test_unit_access(self):
        loop = loop_from("B[i] = A[i];")
        kinds = {a.array: a.kind for a in classify_accesses(loop)}
        assert kinds == {"A": AccessKind.UNIT, "B": AccessKind.UNIT}

    def test_write_flag(self):
        loop = loop_from("B[i] = A[i];")
        writes = {a.array for a in classify_accesses(loop) if a.is_write}
        assert writes == {"B"}

    def test_strided_access_is_affine(self):
        loop = loop_from("C[i] = A[4 * i];")
        access = next(a for a in classify_accesses(loop) if a.array == "A")
        assert access.kind is AccessKind.AFFINE
        assert access.linear.stride == 4

    def test_indirect_access(self):
        loop = loop_from("C[i] = A[B[i]];")
        kinds = {a.array: a.kind for a in classify_accesses(loop)}
        assert kinds["A"] is AccessKind.INDIRECT
        assert kinds["B"] is AccessKind.UNIT  # the inner read is regular
        assert kinds["C"] is AccessKind.UNIT

    def test_invariant_access(self):
        loop = loop_from("B[i] = A[k];")
        access = next(a for a in classify_accesses(loop) if a.array == "A")
        assert access.kind is AccessKind.INVARIANT

    def test_nonlinear_access(self):
        loop = loop_from("B[i] = A[i * i];")
        access = next(a for a in classify_accesses(loop) if a.array == "A")
        assert access.kind is AccessKind.NONLINEAR

    def test_aos_access(self):
        loop = loop_from("sum[i] = P[i].x + P[i].y;")
        aos = [a for a in classify_accesses(loop) if a.kind is AccessKind.AOS]
        assert {a.field for a in aos} == {"x", "y"}

    def test_guarded_access_flagged(self):
        loop = loop_from("if (A[i] > 0.0) { B[C[i]] = 1.0; }")
        guarded = next(a for a in classify_accesses(loop) if a.array == "B")
        assert guarded.guarded

    def test_unguarded_access_not_flagged(self):
        loop = loop_from("B[i] = A[i];")
        assert not any(a.guarded for a in classify_accesses(loop))

    def test_compound_assign_records_read_and_write(self):
        loop = loop_from("A[i] += B[i];")
        a_accesses = [a for a in classify_accesses(loop) if a.array == "A"]
        assert {a.is_write for a in a_accesses} == {True, False}

    def test_loop_variable_extraction(self):
        assert loop_variable(loop_from("x = 1;")) == "i"

    def test_loop_variable_assign_init(self):
        loop = loop_from("x = 1;", init="k = 0", cond="k < n", step="k++")
        assert loop_variable(loop) == "k"


class TestStreamability:
    def test_blackscholes_like_is_streamable(self):
        loop = loop_from("prices[i] = BlkSchls(sptprice[i], strike[i]);")
        assert is_streamable(loop)

    def test_offset_access_is_streamable(self):
        loop = loop_from("B[i] = A[i + 1];")
        assert is_streamable(loop)

    def test_indirect_blocks_streaming(self):
        loop = loop_from("C[i] = A[B[i]];")
        assert not is_streamable(loop)

    def test_aos_blocks_streaming(self):
        loop = loop_from("s[i] = P[i].x;")
        assert not is_streamable(loop)

    def test_nonlinear_blocks_streaming(self):
        loop = loop_from("B[i] = A[i * i];")
        assert not is_streamable(loop)

    def test_scalar_only_loop_is_streamable(self):
        loop = loop_from("sum += 1.0;")
        assert is_streamable(loop)


class TestIrregularAccesses:
    def test_strided_reported_irregular(self):
        loop = loop_from("C[i] = A[8 * i];")
        assert {a.array for a in irregular_accesses(loop)} == {"A"}

    def test_unit_not_reported(self):
        loop = loop_from("C[i] = A[i];")
        assert irregular_accesses(loop) == []

    def test_srad_like_pattern(self):
        loop = loop_from("dN[i] = J[iN[i]] - J[i];")
        arrays = {a.array for a in irregular_accesses(loop)}
        assert arrays == {"J"}
