"""The campaign service: asyncio job orchestration over warm workers.

:class:`CampaignService` ties the subsystem together:

* submissions pass **admission control** (:mod:`repro.service.queue`) —
  a bounded priority/FIFO queue that rejects with a retry-after hint
  past its high-water mark;
* accepted jobs dispatch to the **persistent worker pool**
  (:mod:`repro.service.pool`), gated by a worker-count semaphore so
  queue depth means "waiting", not "running";
* results land in the **shared result store**
  (:mod:`repro.service.store`), keyed on the job's provenance tuple, so
  identical submissions — same program, same seed, same knobs — are
  served from cache across clients, and concurrent identical
  submissions coalesce onto one in-flight execution;
* every job **streams events** (queued → started/cached → result →
  done) through its own ``asyncio.Queue``, which the TCP server relays
  line by line, and the service aggregates fleet-wide telemetry
  (queue depth, wall queue latency, job/fault totals, store hit rate)
  into one :class:`~repro.obs.metrics.MetricsRegistry`.

Results are pure functions of the spec (see :mod:`repro.service.jobs`),
so nothing here — caching, coalescing, worker count, scheduling order —
can change what a job returns; it can only change how fast.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import Job, JobSpec
from repro.service.pool import WorkerPool
from repro.service.queue import AdmissionQueue, AdmissionRejected
from repro.service.store import ResultStore

__all__ = ["CampaignService", "AdmissionRejected"]


class CampaignService:
    """Long-running job service over the simulated offload fleet."""

    def __init__(
        self,
        workers: int = 0,
        max_depth: int = 64,
        high_water: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        store: Optional[ResultStore] = None,
        pool: Optional[WorkerPool] = None,
        pool_cls=None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.store = store if store is not None else ResultStore(
            metrics=self.metrics, name="service.store"
        )
        self.queue = AdmissionQueue(
            max_depth=max_depth, high_water=high_water, metrics=self.metrics
        )
        self.pool = pool if pool is not None else WorkerPool(workers, pool_cls)
        #: Concurrency gate: at most this many jobs execute at once.
        self.slots = max(1, workers)
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._inflight: Dict[tuple, asyncio.Future] = {}
        self._jobs: Dict[int, Job] = {}
        self._ids = itertools.count(1)
        self._dispatcher: Optional[asyncio.Task] = None
        self._tasks: set = set()
        #: Wall-clock queue latencies (submit -> start), for the service
        #: benchmark; live telemetry only, never part of job results.
        self.wall_queue_latencies: List[float] = []

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "CampaignService":
        """Start the dispatcher; idempotent."""
        if self._dispatcher is None:
            self._semaphore = asyncio.Semaphore(self.slots)
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def close(self) -> None:
        """Stop dispatching, cancel waiters, shut the pool down."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for job in self.queue.drain():
            self._finish(job, error="service shut down before execution")
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self.pool.shutdown()

    async def drain(self) -> None:
        """Wait until every accepted job has finished."""
        while self.queue.depth or self._tasks:
            pending = set(self._tasks)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            else:
                await asyncio.sleep(0)

    async def __aenter__(self) -> "CampaignService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job; returns its :class:`Job` handle.

        Raises ``ValueError`` for malformed specs and
        :class:`AdmissionRejected` (with ``retry_after``) when the queue
        is past its high-water mark.  A spec whose provenance key is
        already in the shared store completes immediately from cache
        without consuming a queue slot.
        """
        spec.validate()
        job = Job(
            id=next(self._ids),
            spec=spec,
            submitted_wall=time.monotonic(),
            events=asyncio.Queue(),
            done=asyncio.get_running_loop().create_future(),
        )
        self._jobs[job.id] = job
        self.metrics.counter("service.jobs.submitted").inc()
        cached = self.store.get(spec.key(), record=True)
        if cached is not None:
            self._emit(job, "cached", key=spec.key_id())
            self.metrics.counter("service.jobs.cached").inc()
            job.cached = True
            self._finish(job, result=cached)
            return job
        try:
            depth = self.queue.offer(job)
        except AdmissionRejected:
            self.metrics.counter("service.jobs.rejected").inc()
            del self._jobs[job.id]
            raise
        job.state = "queued"
        self._emit(job, "queued", key=spec.key_id(), depth=depth)
        return job

    def job(self, job_id: int) -> Optional[Job]:
        """Look up a submitted job by id."""
        return self._jobs.get(job_id)

    # -- dispatch -----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._semaphore.acquire()
            try:
                job = await self.queue.get()
            except asyncio.CancelledError:
                self._semaphore.release()
                raise
            task = asyncio.create_task(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_job(self, job: Job) -> None:
        try:
            job.state = "running"
            job.started_wall = time.monotonic()
            latency = job.started_wall - job.submitted_wall
            self.wall_queue_latencies.append(latency)
            self.metrics.histogram("service.queue.wall_seconds").observe(latency)
            self._emit(job, "started")
            key = job.spec.key()
            cached = self.store.get(key)
            if cached is not None:
                job.cached = True
                self.metrics.counter("service.jobs.cached").inc()
                self._finish(job, result=cached)
                return
            inflight = self._inflight.get(key)
            if inflight is not None:
                # Coalesce: an identical job is already executing; wait
                # for its result instead of running the work twice.
                self._emit(job, "coalesced")
                try:
                    result = await asyncio.shield(inflight)
                except Exception as exc:
                    self._finish(job, error=str(exc))
                    return
                job.cached = True
                self.metrics.counter("service.jobs.cached").inc()
                self._finish(job, result=result)
                return
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            try:
                result = await self.pool.run(job.spec.as_dict())
            except Exception as exc:
                if not future.done():
                    future.set_exception(exc)
                    # Coalesced waiters consume the exception; nobody
                    # else should trip "exception never retrieved".
                    future.exception()
                self._finish(job, error=str(exc))
                return
            finally:
                self._inflight.pop(key, None)
            self.store.put(key, result)
            self._finish(job, result=result)
            if not future.done():
                future.set_result(result)
        finally:
            self._semaphore.release()

    # -- completion ---------------------------------------------------------

    def _emit(self, job: Job, event: str, **extra) -> None:
        payload = {"event": event, "job": job.id, **extra}
        job.events.put_nowait(payload)

    def _finish(
        self, job: Job, result: Optional[dict] = None, error: Optional[str] = None
    ) -> None:
        job.finished_wall = time.monotonic()
        if error is not None:
            job.state = "failed"
            job.error = error
            self.metrics.counter("service.jobs.failed").inc()
            self._emit(job, "failed", error=error)
            if not job.done.done():
                job.done.set_exception(RuntimeError(error))
                job.done.exception()
        else:
            job.state = "done"
            job.result = result
            self.metrics.counter("service.jobs.completed").inc()
            self.metrics.counter("service.sim_seconds").inc(
                result.get("sim_time", 0.0)
            )
            fault_stats = result.get("fault_stats")
            if fault_stats:
                self.metrics.counter("service.faults.injected").inc(
                    fault_stats.get("total_injected", 0)
                )
                self.metrics.counter("service.faults.sdc_escapes").inc(
                    fault_stats.get("sdc_escapes", 0)
                )
            self._emit(job, "result", result=result, cached=job.cached)
            self._emit(job, "done", ok=bool(result.get("ok", True)))
            if not job.done.done():
                job.done.set_result(result)

    # -- observation --------------------------------------------------------

    async def stream(self, job: Job):
        """Yield *job*'s events until it reaches a terminal state."""
        while True:
            event = await job.events.get()
            yield event
            if event["event"] in ("done", "failed"):
                return

    async def result(self, job: Job) -> dict:
        """Wait for *job* and return its result dict (raises on failure)."""
        return await job.done

    def snapshot(self) -> dict:
        """Fleet-wide service telemetry, JSON-ready."""
        hits, misses, size = self.store.stats()
        return {
            "queue_depth": self.queue.depth,
            "queue_accepted": self.queue.accepted,
            "queue_rejected": self.queue.rejected,
            "store": {"hits": hits, "misses": misses, "size": size},
            "jobs": len(self._jobs),
            "workers": self.pool.workers,
            "metrics": self.metrics.snapshot(),
        }
