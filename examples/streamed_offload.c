// A streamable offload loop: the shape data streaming (Section III)
// exists for.  Run it through the tracer to see transfer/compute
// overlap as parallel lanes in Perfetto:
//
//   python -m repro trace examples/streamed_offload.c \
//       --array A=4096:float:random --array B=4096:float:zeros \
//       --scalar n=4096 --optimize --scale 20000 \
//       --out trace.json --metrics metrics.json --check
//
// Without --optimize the trace shows the serialized schedule instead
// (transfer, then compute, then transfer back).
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = sqrt(A[i]) + A[i] * 0.5;
    }
}
