"""Observability for the offload runtime: tracing, metrics, exporters.

The subsystem has three pieces, all driven by the *simulated* clock so
every artifact is deterministic:

* :mod:`repro.obs.tracer` — hierarchical spans with attributes plus
  instant events, recorded per resource track (``cpu``, ``mic``,
  ``dma:h2d`` ...).  :data:`NULL_TRACER` is the default: disabled runs
  are bit-identical to uninstrumented ones.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  histograms (DMA bytes, retries, arena allocations, kernel-launch
  latency distributions) with a flat, diffable snapshot.
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), per-resource utilization and flamegraph
  aggregation, and the metrics-snapshot JSON.

Typical use::

    from repro import Machine, run_program
    from repro.obs import Tracer, chrome_trace_events, write_chrome_trace

    tracer = Tracer()
    machine = Machine(tracer=tracer)
    run_program(source, arrays=..., scalars=..., machine=machine)
    write_chrome_trace("trace.json", chrome_trace_events(tracer))
    print(tracer.metrics.snapshot()["counters"])
"""

from repro.obs.export import (
    chrome_trace_events,
    flamegraph_lines,
    fleet_utilization,
    metrics_snapshot,
    sort_trace_events,
    utilization,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.intervals import covered_time, intersect_total, merge_intervals
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    merge_snapshot,
)
from repro.obs.provenance import build_provenance, git_sha
from repro.obs.tracer import (
    HOST_TRACK,
    Instant,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    spans_from_timeline,
)

__all__ = [
    "Counter",
    "Gauge",
    "HOST_TRACK",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Tracer",
    "build_provenance",
    "chrome_trace_events",
    "covered_time",
    "flamegraph_lines",
    "fleet_utilization",
    "git_sha",
    "intersect_total",
    "merge_intervals",
    "merge_snapshot",
    "metrics_snapshot",
    "sort_trace_events",
    "spans_from_timeline",
    "utilization",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
]
