"""End-to-end observability: traced runs expose what the runtime did.

The acceptance contract for the tracing subsystem:

* a *streamed* workload's trace shows ``dma:h2d`` spans overlapping
  ``mic`` spans (the schedule data streaming exists to create);
* the metrics snapshot agrees with the run's own
  :class:`~repro.runtime.executor.ExecutionStats` counters;
* the exported Chrome trace passes the schema validator;
* fault firings and recovery actions appear as instants.
"""

import numpy as np
import pytest

from repro.experiments.trace import summarize
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.minic.parser import parse
from repro.obs.export import chrome_trace_events, validate_chrome_trace
from repro.obs.tracer import Tracer
from repro.runtime.executor import Machine, run_program
from repro.transforms.pipeline import CompOptimizer
from repro.workloads.suite import get_workload

SOURCE = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) { B[i] = sqrt(A[i]) + A[i] * 0.5; }
}
"""


def _traced_run(optimize=True, scale=20_000.0, **machine_kwargs):
    program = parse(SOURCE)
    if optimize:
        CompOptimizer().optimize(program)
    tracer = Tracer()
    machine = Machine(scale=scale, tracer=tracer, **machine_kwargs)
    n = 1024
    result = run_program(
        program,
        arrays={
            "A": np.ones(n, dtype=np.float32),
            "B": np.zeros(n, dtype=np.float32),
        },
        scalars={"n": n},
        machine=machine,
    )
    return tracer, result


class TestStreamedTrace:
    def test_dma_and_kernel_spans_overlap(self):
        tracer, _ = _traced_run(optimize=True)
        h2d = tracer.track_spans("dma:h2d")
        mic = tracer.track_spans("mic")
        assert h2d and mic
        overlaps = any(
            t.start < k.end and k.start < t.end
            for t in h2d
            for k in mic
        )
        assert overlaps, "streamed schedule shows no transfer/compute overlap"
        summary = summarize(tracer)
        assert summary.overlap_fraction > 0.5

    def test_unoptimized_trace_serializes(self):
        tracer, _ = _traced_run(optimize=False)
        assert summarize(tracer).overlap_fraction < 0.05

    def test_offload_phase_parents_host_spans(self):
        tracer, _ = _traced_run()
        offloads = [s for s in tracer.spans if s.name == "offload"]
        assert offloads
        by_sid = {s.sid: s for s in tracer.spans}
        children = [s for s in tracer.spans if s.parent in by_sid]
        assert children, "no span recorded under an offload phase"

    def test_chrome_export_validates(self):
        tracer, _ = _traced_run()
        assert validate_chrome_trace(chrome_trace_events(tracer)) == []


class TestMetricsAgreeWithStats:
    def test_counters_match_execution_stats(self):
        tracer, result = _traced_run()
        counters = tracer.metrics.snapshot()["counters"]
        stats = result.stats
        assert counters["coi.bytes_to_device"] == stats.bytes_to_device
        assert counters["coi.bytes_from_device"] == stats.bytes_from_device
        assert counters["coi.kernel_launches"] == stats.kernel_launches
        assert counters["coi.kernel_signals"] == stats.kernel_signals
        assert counters["exec.offloads"] == stats.offload_count
        assert counters["coi.bytes_to_device"] > 0
        assert counters["coi.kernel_launches"] > 0

    def test_counters_match_workload_run(self):
        workload = get_workload("blackscholes")
        tracer = Tracer()
        run = workload.run("opt", machine=workload.machine(tracer=tracer))
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["coi.bytes_to_device"] == run.stats.bytes_to_device
        assert counters["coi.kernel_launches"] == run.stats.kernel_launches

    def test_gauges_track_device_memory(self):
        tracer, result = _traced_run()
        gauges = tracer.metrics.snapshot()["gauges"]
        assert gauges["device.mem_peak"]["max"] == result.stats.device_peak_bytes

    def test_kernel_latency_histogram_populated(self):
        tracer, result = _traced_run()
        hist = tracer.metrics.snapshot()["histograms"]
        # One sample per kernel execution: fresh launches plus the
        # signal-triggered relaunches of the streamed schedule.
        assert (
            hist["coi.kernel_launch_overhead_seconds"]["count"]
            == result.stats.kernel_launches + result.stats.kernel_signals
        )
        assert hist["coi.dma.h2d.seconds"]["count"] > 0


class TestFaultEventsInTrace:
    def test_fault_firings_become_instants(self):
        tracer, result = _traced_run(
            fault_plan=FaultPlan(seed=7, rates={"h2d": 0.5}),
            resilience=ResiliencePolicy(),
        )
        fault_instants = [
            i for i in tracer.instants if i.name.startswith("fault:")
        ]
        recovery_instants = [
            i for i in tracer.instants if i.name.startswith("recovery:")
        ]
        assert fault_instants, "no fault instants despite a 50% h2d rate"
        assert recovery_instants, "faults fired but no recovery recorded"
        counters = tracer.metrics.snapshot()["counters"]
        injected = sum(
            v for k, v in counters.items() if k.startswith("faults.injected.")
        )
        assert injected == len(fault_instants)
        assert counters["faults.retries"] > 0

    def test_traced_faulty_run_still_correct(self):
        _, faulty = _traced_run(
            fault_plan=FaultPlan(seed=7, rates={"h2d": 0.5}),
            resilience=ResiliencePolicy(),
        )
        _, clean = _traced_run()
        assert (
            faulty.array("B").tobytes() == clean.array("B").tobytes()
        ), "fault recovery changed outputs"
