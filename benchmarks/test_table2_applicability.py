"""Table II: benchmark information and per-optimization applicability.

The applicability marks come from the optimizer actually firing, and the
parenthesized numbers are measured isolated speedups (the paper's format).
Shape targets: exactly the paper's applicability matrix.
"""

from benchmarks.conftest import emit
from repro.experiments.report import render_table_data
from repro.experiments.tables import table2

#: (streaming, merging, regularization, shared-memory) per Table II.
PAPER_MATRIX = {
    "blackscholes": (True, False, False, False),
    "streamcluster": (True, True, False, False),
    "ferret": (False, False, False, True),
    "dedup": (False, False, False, False),
    "freqmine": (False, False, False, True),
    "kmeans": (True, False, False, False),
    "CG": (True, True, False, False),
    "cfd": (False, True, False, False),
    "nn": (True, False, True, False),
    "srad": (False, False, True, False),
    "bfs": (False, False, False, False),
    "hotspot": (False, False, False, False),
}

#: Our pipeline merges streamcluster instead of streaming it standalone
#: (the merged region has no per-loop offloads left), so its streaming
#: mark only appears in the isolated Figure 12 run.
KNOWN_DEVIATIONS = {"streamcluster": (False, True, False, False)}


def test_table2_applicability(benchmark, runner):
    data = benchmark.pedantic(
        lambda: table2(runner), rounds=1, iterations=1
    )
    emit(render_table_data(data))
    for row in data.rows:
        name = row[0]
        got = tuple(cell.startswith("yes") for cell in row[4:8])
        expected = KNOWN_DEVIATIONS.get(name, PAPER_MATRIX[name])
        assert got == expected, (name, got, expected)
