"""Tests for regularization: array reordering and loop splitting (§IV)."""

import numpy as np
import pytest

from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.runtime.executor import Machine, run_program
from repro.transforms.regularize import reorder_arrays, split_loop

INDIRECT_READ = """
void main() {
#pragma offload target(mic:0) in(A : length(asize)) in(B : length(n)) in(n) out(C : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        C[i] = A[B[i]] * 2.0;
    }
}
"""

STRIDED_READ = """
void main() {
#pragma offload target(mic:0) in(A : length(4 * n)) in(n) out(C : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        C[i] = A[4 * i] + 1.0;
    }
}
"""

INDIRECT_WRITE = """
void main() {
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        A[B[i]] = C[i];
    }
}
"""

GUARDED = """
void main() {
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        if (C[i] > 0.0) {
            C[i] = A[B[i]];
        }
    }
}
"""

# The regular suffix is flop-rich, like real srad's diffusion-coefficient
# math — that is what vectorization accelerates after the split.
SRAD_LIKE = """
void main() {
#pragma offload target(mic:0) in(J : length(n)) in(iN : length(n)) in(iS : length(n)) in(n) out(dN : length(n)) out(dS : length(n)) out(R : length(n))
#pragma omp parallel for
    for (int k = 0; k < n; k++) {
        float Jc = J[k];
        dN[k] = J[iN[k]] - Jc;
        dS[k] = J[iS[k]] - Jc;
        float G2 = (dN[k] * dN[k] + dS[k] * dS[k]) / (Jc * Jc + 0.01);
        float L = (dN[k] + dS[k]) / (Jc + 0.01);
        float num = 0.5 * G2 - 0.0625 * L * L;
        float den = 1.0 + 0.25 * L;
        float qsqr = num / (den * den);
        R[k] = qsqr / (qsqr + 1.0 + 0.02) * sqrt(G2 + 1.0);
    }
}
"""


def srad_arrays(n, rng):
    return {
        "J": rng.random(n).astype(np.float32),
        "iN": rng.integers(0, n, n).astype(np.int32),
        "iS": rng.integers(0, n, n).astype(np.int32),
        "dN": np.zeros(n, dtype=np.float32),
        "dS": np.zeros(n, dtype=np.float32),
        "R": np.zeros(n, dtype=np.float32),
    }


class TestReorderArrays:
    def test_indirect_read_correctness(self):
        n, asize = 40, 100
        rng = np.random.default_rng(7)

        def arrays():
            return {
                "A": rng.random(asize).astype(np.float32),
                "B": rng.integers(0, asize, n).astype(np.int32),
                "C": np.zeros(n, dtype=np.float32),
            }

        a = arrays()
        expected = run_program(INDIRECT_READ, arrays=dict(a),
                               scalars={"n": n, "asize": asize})
        prog = parse(INDIRECT_READ)
        report = reorder_arrays(prog)
        assert report.applied
        result = run_program(prog, arrays=dict(a),
                             scalars={"n": n, "asize": asize})
        assert np.array_equal(result.array("C"), expected.array("C"))

    def test_indirect_read_creates_gather_loop(self):
        prog = parse(INDIRECT_READ)
        reorder_arrays(prog)
        printed = to_source(prog)
        assert "A__r0[i] = A[B[i]]" in printed
        assert "A__r0[i] * 2.0" in printed

    def test_transfer_clauses_updated(self):
        """The whole of A (and B) no longer cross the bus — nn's win."""
        prog = parse(INDIRECT_READ)
        reorder_arrays(prog)
        printed = to_source(prog)
        assert "in(A__r0 : length(n))" in printed
        assert "in(A : length(asize))" not in printed
        assert "in(B : length(n))" not in printed

    def test_strided_read(self):
        n = 30
        a = np.arange(4 * n, dtype=np.float32)

        def arrays():
            return {"A": a.copy(), "C": np.zeros(n, dtype=np.float32)}

        expected = run_program(STRIDED_READ, arrays=arrays(), scalars={"n": n})
        prog = parse(STRIDED_READ)
        report = reorder_arrays(prog)
        assert report.applied
        result = run_program(prog, arrays=arrays(), scalars={"n": n})
        assert np.array_equal(result.array("C"), expected.array("C"))

    def test_strided_reduces_transfer_bytes(self):
        n = 1 << 10
        arrays = {
            "A": np.arange(4 * n, dtype=np.float32),
            "C": np.zeros(n, dtype=np.float32),
        }
        plain = run_program(
            STRIDED_READ, arrays={k: v.copy() for k, v in arrays.items()},
            scalars={"n": n}, machine=Machine(),
        ).stats
        prog = parse(STRIDED_READ)
        reorder_arrays(prog)
        opt = run_program(
            prog, arrays={k: v.copy() for k, v in arrays.items()},
            scalars={"n": n}, machine=Machine(),
        ).stats
        assert opt.bytes_to_device < plain.bytes_to_device / 2

    def test_indirect_write_scatter_back(self):
        n = 16
        rng = np.random.default_rng(3)
        perm = rng.permutation(n).astype(np.int32)

        def arrays():
            return {
                "A": np.zeros(n, dtype=np.float32),
                "B": perm.copy(),
                "C": np.arange(n, dtype=np.float32),
            }

        expected = run_program(INDIRECT_WRITE, arrays=arrays(), scalars={"n": n})
        prog = parse(INDIRECT_WRITE)
        report = reorder_arrays(prog)
        assert report.applied
        result = run_program(prog, arrays=arrays(), scalars={"n": n})
        assert np.array_equal(result.array("A"), expected.array("A"))

    def test_guarded_access_not_touched(self):
        """Section IV: 'we apply the transformation only on arrays whose
        accesses are not guarded by any branch'."""
        prog = parse(GUARDED)
        report = reorder_arrays(prog)
        assert not report.applied

    def test_regular_loop_not_touched(self):
        prog = parse(
            "void main() {\n#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { C[i] = A[i]; } }"
        )
        assert not reorder_arrays(prog).applied

    def test_printed_output_reparses(self):
        prog = parse(INDIRECT_READ)
        reorder_arrays(prog)
        assert parse(to_source(prog)) == prog


class TestSplitLoop:
    def test_srad_correctness(self):
        n = 64
        rng = np.random.default_rng(11)
        a = srad_arrays(n, rng)
        expected = run_program(
            SRAD_LIKE, arrays={k: v.copy() for k, v in a.items()},
            scalars={"n": n},
        )
        prog = parse(SRAD_LIKE)
        report = split_loop(prog)
        assert report.applied, report.reason
        result = run_program(
            prog, arrays={k: v.copy() for k, v in a.items()}, scalars={"n": n}
        )
        for name in ("dN", "dS", "R"):
            assert np.array_equal(result.array(name), expected.array(name)), name

    def test_split_produces_two_loops(self):
        prog = parse(SRAD_LIKE)
        split_loop(prog)
        printed = to_source(prog)
        assert printed.count("omp parallel for") == 2

    def test_local_recomputed_in_suffix(self):
        prog = parse(SRAD_LIKE)
        split_loop(prog)
        printed = to_source(prog)
        # Jc defined in both halves (its definition J[k] is regular).
        assert printed.count("float Jc = J[k];") == 2

    def test_second_loop_is_regular(self):
        from repro.analysis.array_access import is_streamable
        from repro.minic.visitor import find_loops

        prog = parse(SRAD_LIKE)
        split_loop(prog)
        loops = find_loops(prog)
        assert len(loops) == 2
        assert not is_streamable(loops[0])
        assert is_streamable(loops[1])

    def test_second_loop_vectorizes_faster(self):
        """Fig 15 srad mechanism: the regular half gets SIMD speed."""
        n = 1 << 12
        rng = np.random.default_rng(5)
        a = srad_arrays(n, rng)
        scale = 1000.0
        plain = run_program(
            SRAD_LIKE, arrays={k: v.copy() for k, v in a.items()},
            scalars={"n": n}, machine=Machine(scale=scale),
        ).stats
        prog = parse(SRAD_LIKE)
        split_loop(prog)
        split = run_program(
            prog, arrays={k: v.copy() for k, v in a.items()},
            scalars={"n": n}, machine=Machine(scale=scale),
        ).stats
        assert split.total_time < plain.total_time

    def test_single_offload_region_around_both_halves(self):
        """No runtime overhead: one offload, original clauses, one launch."""
        from repro.minic import ast_nodes as ast
        from repro.minic.visitor import walk

        prog = parse(SRAD_LIKE)
        split_loop(prog)
        printed = to_source(prog)
        assert printed.count("#pragma offload ") == 1
        blocks = [n for n in walk(prog) if isinstance(n, ast.OffloadBlock)]
        assert len(blocks) == 1
        clause_vars = {c.var for c in blocks[0].pragma.clauses}
        assert {"J", "iN", "iS", "dN", "dS", "R", "n"} == clause_vars

    def test_split_single_kernel_launch(self):
        n = 128
        rng = np.random.default_rng(2)
        a = srad_arrays(n, rng)
        prog = parse(SRAD_LIKE)
        split_loop(prog)
        machine = Machine()
        stats = run_program(
            prog, arrays=a, scalars={"n": n}, machine=machine
        ).stats
        assert stats.kernel_launches == 1

    def test_split_does_not_increase_transfers(self):
        """'There is no runtime overhead': device-resident intermediates."""
        n = 1 << 10
        rng = np.random.default_rng(9)
        a = srad_arrays(n, rng)
        plain = run_program(
            SRAD_LIKE, arrays={k: v.copy() for k, v in a.items()},
            scalars={"n": n}, machine=Machine(),
        ).stats
        prog = parse(SRAD_LIKE)
        split_loop(prog)
        split = run_program(
            prog, arrays={k: v.copy() for k, v in a.items()},
            scalars={"n": n}, machine=Machine(),
        ).stats
        assert split.bytes_to_device == plain.bytes_to_device

    def test_fully_regular_loop_not_split(self):
        prog = parse(
            "void main() {\n#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { C[i] = A[i]; B[i] = C[i]; } }"
        )
        assert not split_loop(prog).applied

    def test_irregular_suffix_not_split(self):
        prog = parse(
            "void main() {\n#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { C[i] = A[i]; D[i] = A[B[i]]; } }"
        )
        report = split_loop(prog)
        assert not report.applied

    def test_printed_output_reparses(self):
        prog = parse(SRAD_LIKE)
        split_loop(prog)
        assert parse(to_source(prog)) == prog
