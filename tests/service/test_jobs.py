"""Tests for the job model: provenance keys, wire format, execution parity."""

import dataclasses

import numpy as np
import pytest

from repro.runtime.executor import Machine, run_program
from repro.service.jobs import (
    JobSpec,
    digest_array,
    digest_arrays,
    execute_job,
    parse_array_spec,
    parse_scalar_spec,
)

SOURCE = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0;
    }
}
"""


def run_spec():
    return JobSpec(
        kind="run",
        source=SOURCE,
        arrays=("A=32:float:arange", "B=32:float:zeros"),
        scalars=("n=32",),
        seed=0,
    )


class TestParsers:
    def test_array_spec_kinds(self):
        rng = np.random.default_rng(0)
        name, value = parse_array_spec("X=8:float:arange", rng)
        assert name == "X"
        assert np.array_equal(value, np.arange(8, dtype=np.float32))

    def test_array_spec_errors_name_the_spec(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="X"):
            parse_array_spec("X", rng)
        with pytest.raises(ValueError, match="not an integer"):
            parse_array_spec("X=lots", rng)
        with pytest.raises(ValueError, match="fibonacci"):
            parse_array_spec("X=8:float:fibonacci", rng)

    def test_scalar_spec(self):
        assert parse_scalar_spec("n=8") == ("n", 8)
        assert parse_scalar_spec("x=0.5") == ("x", 0.5)
        with pytest.raises(ValueError, match="not a number"):
            parse_scalar_spec("n=eight")


class TestDigests:
    def test_digest_covers_dtype_shape_and_bytes(self):
        a = np.arange(8, dtype=np.float32)
        assert digest_array(a) == digest_array(a.copy())
        assert digest_array(a) != digest_array(a.astype(np.float64))
        b = a.copy()
        b[3] += 1
        assert digest_array(a) != digest_array(b)

    def test_digest_arrays_sorted(self):
        arrays = {"b": np.zeros(2), "a": np.ones(2)}
        assert list(digest_arrays(arrays)) == ["a", "b"]


class TestJobSpec:
    def test_key_excludes_scheduling_hints(self):
        base = run_spec()
        hinted = dataclasses.replace(base, priority=0, tenant="other")
        assert base.key() == hinted.key()
        assert base.key_id() == hinted.key_id()

    def test_key_includes_execution_fields(self):
        base = run_spec()
        assert base.key() != dataclasses.replace(base, seed=1).key()
        assert base.key() != dataclasses.replace(base, optimize=True).key()
        assert base.key() != dataclasses.replace(base, devices=2).key()

    def test_dict_roundtrip(self):
        spec = JobSpec(
            kind="faults", workload="hotspot", scenario=1, seed=3,
            rates=(("kernel", 0.01),), policy=(("max_retries", 5),),
        )
        assert JobSpec.from_dict(spec.as_dict()) == spec
        assert JobSpec.from_dict(spec.as_dict()).key() == spec.key()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="bogus"):
            JobSpec.from_dict({"kind": "bench", "bogus": 1})

    def test_validate_names_offending_field(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(kind="mystery").validate()
        with pytest.raises(ValueError, match="engine"):
            JobSpec(
                kind="bench", workload="hotspot", engine="warp"
            ).validate()
        with pytest.raises(ValueError, match="devices"):
            dataclasses.replace(run_spec(), devices=0).validate()
        with pytest.raises(ValueError, match="workload"):
            JobSpec(kind="bench", workload="nope").validate()
        with pytest.raises(ValueError, match="source"):
            JobSpec(kind="run", source=None).validate()


class TestExecuteParity:
    def test_run_job_matches_direct_execution(self):
        # The tentpole invariant: a service job's outputs and op
        # counters are bit-identical to running the same program
        # directly (what `repro run` does).
        result = execute_job(run_spec().as_dict())

        rng = np.random.default_rng(0)
        arrays = dict(
            parse_array_spec(s, rng)
            for s in ("A=32:float:arange", "B=32:float:zeros")
        )
        from repro.minic.parser import parse

        machine = Machine()
        direct = run_program(
            parse(SOURCE), arrays=arrays, scalars={"n": 32}, machine=machine
        )
        assert result["ok"]
        assert result["outputs"] == digest_arrays(machine.host.arrays)
        assert result["sim_time"] == direct.stats.total_time
        assert result["stats"]["ops"] == dataclasses.asdict(direct.stats.ops)

    def test_execute_is_deterministic(self):
        payload = run_spec().as_dict()
        assert execute_job(payload) == execute_job(payload)

    def test_faults_job_matches_direct_cell(self):
        from repro.faults.campaign import scenario_cell
        from repro.faults.policy import ResiliencePolicy

        spec = JobSpec(
            kind="faults", workload="hotspot", scenario=0, seed=5,
            rates=(("kernel", 0.05),),
        )
        result = execute_job(spec.as_dict())
        outcome = scenario_cell(
            "hotspot", 0, 5, "opt", None, {"kernel": 0.05},
            ResiliencePolicy(), None, 1,
        )
        assert result["outcome"] == outcome.as_dict()
        assert result["fault_stats"] == outcome.stats.as_dict()
        assert result["ok"] == outcome.ok

    def test_traced_run_returns_events(self):
        spec = dataclasses.replace(run_spec(), trace=True)
        result = execute_job(spec.as_dict())
        events = result["trace_events"]
        assert events
        assert all("ph" in event for event in events)
