"""Campaign-level fault-injection properties.

Two system-wide invariants backstop the resilience work:

* **determinism** — a campaign is a pure function of its seed: running
  it twice yields byte-equal summaries (same faults at the same
  operations, same recovery costs, same outputs);
* **engine independence** — the interpreter engine (batched numpy vs
  tree walker) changes how device bodies are evaluated, never *what*
  the offload runtime does, so the same fault plan produces identical
  outputs and identical :class:`FaultStats` under either engine.
"""

import numpy as np

from repro.faults import FaultPlan, ResiliencePolicy
from repro.faults.campaign import outputs_identical, run_campaign, scenario_seed
from repro.workloads.suite import get_workload

#: Rates high enough that a two-scenario campaign always injects
#: something, so the determinism assertions are not vacuous.
HOT_RATES = {"h2d": 0.2, "d2h": 0.2, "kernel": 0.1, "alloc": 0.02, "signal": 0.1}


class TestCampaignDeterminism:
    def test_same_seed_same_summary(self):
        first = run_campaign(["blackscholes"], scenarios=2, seed=5, rates=HOT_RATES)
        second = run_campaign(["blackscholes"], scenarios=2, seed=5, rates=HOT_RATES)
        assert first.totals.total_injected > 0
        assert first.as_dict() == second.as_dict()

    def test_contract_holds_under_hot_rates(self):
        result = run_campaign(["blackscholes"], scenarios=3, seed=11, rates=HOT_RATES)
        assert result.ok
        for outcome in result.outcomes:
            assert outcome.identical
            if outcome.faults_injected:
                assert outcome.time > outcome.baseline_time

    def test_scenarios_are_decorrelated(self):
        """Different scenario cells draw from independent fault streams."""
        seeds = {
            scenario_seed(0, k, name)
            for k in range(3)
            for name in ("blackscholes", "nn")
        }
        assert len(seeds) == 6


class TestEngineDifferential:
    def _run(self, engine):
        plan_seed = scenario_seed(3, 0, "blackscholes")
        workload = get_workload("blackscholes")
        machine = workload.machine(
            fault_plan=FaultPlan(seed=plan_seed, rates=HOT_RATES),
            resilience=ResiliencePolicy(),
        )
        run = workload.run("opt", machine=machine, engine=engine)
        return run, machine

    def test_batch_and_tree_agree_under_faults(self):
        batch_run, batch_machine = self._run("batch")
        tree_run, tree_machine = self._run("tree")
        assert batch_machine.fault_stats.total_injected > 0
        assert outputs_identical(batch_run.outputs, tree_run.outputs)
        assert (
            batch_machine.fault_stats.as_dict()
            == tree_machine.fault_stats.as_dict()
        )
        assert np.isclose(batch_machine.clock.now, tree_machine.clock.now)

    def test_fault_stats_flow_into_workload_run(self):
        run, machine = self._run("batch")
        assert run.fault_stats is machine.fault_stats
