"""The MiniC interpreter: executes programs against the simulated machine.

The interpreter serves two purposes at once:

1. **Correctness** — programs run concretely over numpy arrays, so a
   transformed program can be checked for bit-identical outputs against
   the original (our substitute for running the paper's benchmarks on
   real hardware).
2. **Timing** — every evaluated operation accrues dynamic counters
   (flops, loads/stores, bytes, irregularity); parallel loops convert
   counters to device time via the roofline model; LEO pragmas drive DMA
   transfers and kernel launches on the shared event timeline.  Simulated
   time is completely decoupled from wall-clock interpretation speed, and
   a *scale* factor lets a workload execute at a reduced element count
   while being timed (and memory-checked) at paper scale.

Execution contexts: code runs on the **host** until an offload pragma is
reached; the annotated loop or block is interpreted in a **device**
context whose name resolution is restricted to data actually transferred
by the clauses (a missing clause raises
:class:`~repro.errors.MissingTransferError`).  Serial statements inside a
device context are timed at MIC serial speed — which is how offload
merging's cost ("we may increase the sequential execution on MIC") shows
up naturally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import (
    DeviceLost,
    DeviceOutOfMemory,
    ExecutionError,
    MissingTransferError,
    OffloadTimeout,
    RuntimeFault,
)
from repro.analysis.array_access import (
    AccessKind,
    extract_linear_form,
)
from repro.errors import NotAffineError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.faults.stats import FaultStats
from repro.analysis.symbols import sizeof_type
from repro.analysis.vectorize import is_vectorizable
from repro.hardware.device import ComputeDevice, OpCounters
from repro.hardware.event_sim import Clock, Event, Timeline
from repro.hardware.memory import DeviceMemoryManager
from repro.hardware.spec import MachineSpec, paper_machine
from repro.minic import ast_nodes as ast
from repro.minic.parser import parse
from repro.minic.visitor import walk as walk_nodes
from repro.runtime import mathops
from repro.obs.tracer import NULL_TRACER
from repro.runtime import batch_exec
from repro.runtime import codegen
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.coi import DEVICE, DMA_FROM_DEVICE, DMA_TO_DEVICE, CoiRuntime
from repro.runtime.integrity import IntegrityManager
from repro.runtime.values import DeviceSpace, HostSpace

# Flop costs of builtin math calls (rough icc/SVML-like latencies).
BUILTIN_COSTS = {
    "exp": 10.0,
    "log": 10.0,
    "sqrt": 4.0,
    "fabs": 1.0,
    "abs": 1.0,
    "pow": 14.0,
    "sin": 10.0,
    "cos": 10.0,
    "floor": 1.0,
    "ceil": 1.0,
    "min": 1.0,
    "max": 1.0,
}

_BUILTIN_IMPL = {
    "exp": mathops.scalar_exp,
    "log": mathops.scalar_log,
    "sqrt": math.sqrt,
    "fabs": abs,
    "abs": abs,
    "pow": mathops.scalar_pow,
    "sin": mathops.scalar_sin,
    "cos": mathops.scalar_cos,
    "floor": math.floor,
    "ceil": math.ceil,
    "min": min,
    "max": max,
}

_NUMPY_TYPES = {
    "float": np.float32,
    "double": np.float64,
    "int": np.int32,
    "char": np.int8,
}


# ==========================================================================
# Machine: everything the executor runs against
# ==========================================================================


@dataclass
class Machine:
    """One simulated host+coprocessor machine instance."""

    spec: MachineSpec = field(default_factory=paper_machine)
    scale: float = 1.0
    #: Optional deterministic fault schedule for this run.
    fault_plan: Optional[FaultPlan] = None
    #: Recovery policy; defaults to :class:`ResiliencePolicy` when a
    #: fault plan is given.  A policy without a plan enables the
    #: resilient code paths (OOM demotion, host fallback) for *genuine*
    #: faults without injecting any.
    resilience: Optional[ResiliencePolicy] = None
    #: Observability sink (:class:`repro.obs.Tracer`).  The default null
    #: tracer makes every instrumentation hook a no-op, so untraced runs
    #: stay bit-identical to uninstrumented ones.
    tracer: Optional[object] = None
    #: Number of coprocessor cards; None defers to ``spec.devices``.
    #: With 1 (the default everywhere) no fleet is built and every
    #: single-device code path runs unchanged, bit for bit.
    devices: Optional[int] = None

    def __post_init__(self) -> None:
        self.timeline = Timeline()
        self.clock = Clock()
        self.host = HostSpace()
        self.device = DeviceSpace()
        if self.tracer is None:
            self.tracer = NULL_TRACER
        self.device_memory = DeviceMemoryManager(
            capacity=self.spec.mic.usable_memory, scale=self.scale
        )
        self.coi = CoiRuntime(
            self.spec,
            self.timeline,
            self.clock,
            self.device_memory,
            self.host,
            self.device,
            scale=self.scale,
            tracer=self.tracer,
        )
        self.cpu_model = ComputeDevice(self.spec.cpu)
        self.mic_model = ComputeDevice(self.spec.mic)
        self.fault_stats = FaultStats()
        if self.fault_plan is not None and self.resilience is None:
            self.resilience = ResiliencePolicy()
        if self.resilience is not None:
            self.coi.resilience = self.resilience
            self.coi.fault_stats = self.fault_stats
        if self.fault_plan is not None:
            injector = FaultInjector(self.fault_plan, self.fault_stats)
            injector.tracer = self.tracer
            injector.clock = self.clock
            self.coi.injector = injector
            self.device_memory.injector = injector
        # Checkpoint/restart is opt-in via the policy: without it the
        # COI note hooks are never reached and a device reset is fatal.
        self.checkpoint = None
        if self.resilience is not None and self.resilience.checkpoint_interval > 0:
            self.checkpoint = CheckpointManager(
                self.resilience, self.fault_stats, tracer=self.tracer
            )
            self.coi.checkpoint = self.checkpoint
        # The integrity layer rides along whenever silent faults could
        # be injected (a fault plan is present) or verification was
        # asked for; in "off" mode with no plan it is never attached and
        # every hook site stays on the original code path.
        self.integrity = None
        mode = "off" if self.resilience is None else self.resilience.integrity_mode
        if self.fault_plan is not None or mode != "off":
            self.integrity = IntegrityManager(
                self.resilience if self.resilience is not None
                else ResiliencePolicy(),
                self.fault_stats,
                tracer=self.tracer,
            )
            self.coi.integrity = self.integrity
        # Multi-device fleet: only built above 1 card, so single-device
        # runs keep the legacy runtime objects untouched.
        if self.devices is None:
            self.devices = self.spec.devices
        if self.devices < 1:
            raise ValueError(f"device count must be >= 1, got {self.devices}")
        self.fleet = None
        if self.devices > 1:
            from repro.runtime.fleet import DeviceFleet

            self.fleet = DeviceFleet(
                self.spec,
                self.scale,
                self.devices,
                seed=None if self.fault_plan is None else self.fault_plan.seed,
                policy=(
                    self.resilience if self.resilience is not None
                    else ResiliencePolicy()
                ),
                stats=self.fault_stats,
                tracer=self.tracer,
            )
            self.coi.fleet = self.fleet
            if self.coi.injector is not None:
                for dev in self.fleet.devices:
                    dev.memory.injector = self.coi.injector
        # Shared-memory runtimes for programs using the Section V
        # allocation intrinsics, created lazily.
        self._myo = None
        self._arena = None

    def finalize_integrity(self) -> None:
        """Run the integrity layer's end-of-run sweep (idempotent).

        ``full`` mode verifies every remaining reference checksum;
        every mode then counts still-unresolved corruption records as
        SDC escapes.  Workload drivers call this once outputs are final.
        """
        if self.integrity is not None:
            self.integrity.finalize(self.coi)

    @property
    def myo(self):
        """Lazily created MYO runtime for shared-malloc intrinsics."""
        if self._myo is None:
            from repro.runtime.myo import MyoRuntime

            self._myo = MyoRuntime(self.coi)
        return self._myo

    @property
    def arena(self):
        """Lazily created arena allocator for arena_alloc intrinsics."""
        if self._arena is None:
            from repro.runtime.arena import ArenaAllocator

            self._arena = ArenaAllocator()
            self._arena.tracer = self.tracer
            if self.checkpoint is not None:
                self.checkpoint.register_arena(self._arena)
        return self._arena


# ==========================================================================
# Environments
# ==========================================================================


class Env:
    """A lexical scope chain ending in a memory-space root."""

    def __init__(self, parent: Optional["Env"] = None):
        self.parent = parent
        self.vars: Dict[str, object] = {}

    def declare(self, name: str, value: object) -> None:
        """Bind *name* in this scope."""
        self.vars[name] = value

    def get(self, name: str) -> object:
        """Resolve *name* through the scope chain."""
        if name in self.vars:
            value = self.vars[name]
            if value is None:
                raise ExecutionError(f"variable {name!r} used uninitialized")
            return value
        if self.parent is not None:
            return self.parent.get(name)
        raise self._missing(name)

    def set(self, name: str, value: object) -> None:
        """Assign to an existing binding in the scope chain."""
        if name in self.vars:
            self.vars[name] = value
            return
        if self.parent is not None:
            self.parent.set(name, value)
            return
        raise self._missing(name)

    def has(self, name: str) -> bool:
        """True when *name* resolves somewhere in the chain."""
        if name in self.vars:
            return True
        return self.parent is not None and self.parent.has(name)

    def _missing(self, name: str) -> Exception:
        return ExecutionError(f"undefined variable {name!r}")

    def root(self) -> "Env":
        """The chain's root scope (file-scope storage)."""
        env = self
        while env.parent is not None:
            env = env.parent
        return env

    def _own_int_bindings(self) -> Dict[str, int]:
        return {
            k: int(v)
            for k, v in self.vars.items()
            if isinstance(v, (int, np.integer))
        }

    def int_bindings(self) -> Dict[str, int]:
        """All integer-valued scalars visible here (for access analysis)."""
        bindings: Dict[str, int] = {}
        env: Optional[Env] = self
        while env is not None:
            for key, value in env._own_int_bindings().items():
                if key not in bindings:
                    bindings[key] = value
            env = env.parent
        return bindings


class _HostRootEnv(Env):
    """Root scope over the host memory space."""

    def __init__(self, host: HostSpace):
        super().__init__()
        self.host = host

    def declare(self, name, value):
        if isinstance(value, np.ndarray):
            self.host.arrays[name] = value
        else:
            self.host.scalars[name] = value

    def get(self, name):
        if name in self.host.arrays:
            return self.host.arrays[name]
        if name in self.host.scalars:
            return self.host.scalars[name]
        raise self._missing(name)

    def set(self, name, value):
        if name in self.host.arrays and isinstance(value, np.ndarray):
            self.host.arrays[name] = value
        else:
            self.host.scalars[name] = value

    def has(self, name):
        return name in self.host.arrays or name in self.host.scalars

    def _own_int_bindings(self):
        return {
            k: int(v)
            for k, v in self.host.scalars.items()
            if isinstance(v, (int, np.integer))
        }


class _DeviceRootEnv(Env):
    """Root scope over the device memory space: strict name resolution."""

    def __init__(self, device: DeviceSpace):
        super().__init__()
        self.device = device

    def declare(self, name, value):
        if isinstance(value, np.ndarray):
            self.device.arrays[name] = value
        else:
            self.device.scalars[name] = value

    def get(self, name):
        if name in self.device.arrays:
            return self.device.arrays[name]
        if name in self.device.scalars:
            return self.device.scalars[name]
        raise self._missing(name)

    def set(self, name, value):
        if name in self.device.arrays and isinstance(value, np.ndarray):
            self.device.arrays[name] = value
        else:
            self.device.scalars[name] = value

    def has(self, name):
        return name in self.device.arrays or name in self.device.scalars

    def _missing(self, name):
        return MissingTransferError(
            f"device code touched {name!r}, which was never transferred "
            f"to the coprocessor (missing in/inout clause?)"
        )

    def _own_int_bindings(self):
        return {
            k: int(v)
            for k, v in self.device.scalars.items()
            if isinstance(v, (int, np.integer))
        }


# ==========================================================================
# Control-flow signals
# ==========================================================================


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


# ==========================================================================
# Execution contexts (timing accumulators)
# ==========================================================================


class _TimedContext:
    """Accumulates compute time for one processor."""

    def __init__(
        self,
        model: ComputeDevice,
        scale: float,
        is_device: bool,
        sink: Optional[OpCounters] = None,
        record: Optional[list] = None,
        tracer=None,
    ):
        self.model = model
        self.scale = scale
        self.is_device = is_device
        self.pending = OpCounters()
        self.seconds = 0.0
        self.in_parallel = False
        #: Run-wide counter total (shared across host and device contexts).
        self.sink = sink
        #: Optional ``(kind, counters, trip, vectorizable)`` trace of the
        #: timing charges, so the resilience layer can re-price the same
        #: work on another device (host fallback) without re-interpreting.
        self.record = record
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def flush_serial(self) -> None:
        if self.pending.work_ops or self.pending.total_bytes:
            self.seconds += self.model.compute_time(
                self.pending.scaled(self.scale), serial=True
            )
            if self.record is not None:
                self.record.append(("serial", self.pending, 0.0, False))
        if self.sink is not None:
            self.sink.add(self.pending)
        self.pending = OpCounters()

    def add_parallel(
        self, counters: OpCounters, trip: float, vectorizable: bool
    ) -> None:
        if self.sink is not None:
            self.sink.add(counters)
        if self.record is not None:
            self.record.append(("parallel", counters, trip, vectorizable))
        self.seconds += self.model.compute_time(
            counters.scaled(self.scale),
            parallel_iterations=trip * self.scale,
            vectorizable=vectorizable,
        )
        if self.tracer.enabled:
            # Annotate the enclosing span with the roofline verdict: which
            # bound the loop sat on, thread count, SIMD applicability.
            info = self.model.explain(
                counters.scaled(self.scale),
                parallel_iterations=trip * self.scale,
                vectorizable=vectorizable,
            )
            self.tracer.annotate(
                **{f"loop.{key}": value for key, value in info.items()}
            )
            self.tracer.metrics.histogram(
                "exec.parallel_loop_seconds"
            ).observe(info["seconds"])

    def take_seconds(self) -> float:
        self.flush_serial()
        seconds, self.seconds = self.seconds, 0.0
        return seconds


# ==========================================================================
# Results
# ==========================================================================


@dataclass
class ExecutionStats:
    """Timing and traffic breakdown of one program run (simulated units)."""

    total_time: float = 0.0
    host_compute_time: float = 0.0
    device_busy_time: float = 0.0
    #: Kernel compute only, without launch/signal overheads (Figure 4's
    #: "calculation time").
    device_compute_time: float = 0.0
    transfer_to_device_time: float = 0.0
    transfer_from_device_time: float = 0.0
    bytes_to_device: float = 0.0
    bytes_from_device: float = 0.0
    kernel_launches: int = 0
    kernel_signals: int = 0
    offload_count: int = 0
    device_peak_bytes: int = 0
    #: Coprocessor cards the run was configured with (fleet size).
    devices: int = 1
    #: Dynamic operation totals across the whole run (host + device),
    #: excluding uncharged clause/loop-control evaluation.
    ops: OpCounters = field(default_factory=OpCounters)

    @property
    def transfer_time(self) -> float:
        """Host-to-device plus device-to-host DMA time."""
        return self.transfer_to_device_time + self.transfer_from_device_time


@dataclass
class ExecutionResult:
    """Final host memory plus the stats of the run."""

    host: HostSpace
    stats: ExecutionStats
    return_value: object = None

    def array(self, name: str) -> np.ndarray:
        """A named host array after execution."""
        return self.host.array(name)

    def scalar(self, name: str) -> object:
        """A named host scalar after execution."""
        return self.host.scalars[name]


# ==========================================================================
# The executor
# ==========================================================================


#: Execution engines, fastest first.  ``auto`` walks the ladder per
#: loop: codegen where the emitter proves eligibility, batch for the
#: general vector cases, tree for everything else.
ENGINES = ("auto", "codegen", "batch", "tree")


class Executor:
    """Interprets one program on one machine."""

    def __init__(
        self,
        program: Union[ast.Program, str],
        machine: Optional[Machine] = None,
        engine: str = "auto",
    ):
        if isinstance(program, str):
            program = parse(program)
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}: valid engines are "
                + ", ".join(ENGINES)
            )
        self.program = program
        self.machine = machine or Machine()
        self.engine = engine
        self.functions = {f.name: f for f in program.functions() if f.body}
        self.structs = {s.name: s for s in program.structs()}
        self._access_cache: Dict[Tuple[int, str], AccessKind] = {}
        self._ops_total = OpCounters()
        self._host_ctx = _TimedContext(
            self.machine.cpu_model,
            self.machine.scale,
            is_device=False,
            sink=self._ops_total,
            tracer=self.machine.tracer,
        )
        self._ctx = self._host_ctx
        self._loop_vars: List[str] = []
        self._host_root = _HostRootEnv(self.machine.host)
        self._device_root = _DeviceRootEnv(self.machine.device)
        # Batched execution: per-loop static verdicts and engagement
        # telemetry (how many parallel loops ran batched vs fell back).
        self._batch_static_cache: Dict[int, object] = {}
        self._batch_stats = {"batched": 0, "fallback": 0}
        # Codegen execution: per-loop static verdicts plus engagement and
        # compile-cache telemetry for the generated-kernel tier.
        self._codegen_static_cache: Dict[int, object] = {}
        self._codegen_stats = {
            "ran": 0,
            "fallback": 0,
            "compiled": 0,
            "cache_hits": 0,
        }
        # Vectorizability memo: per-loop relevant symbol names plus the
        # verdict per concrete binding of those names.
        self._vec_meta: Dict[int, Tuple[List[str], List[str]]] = {}
        self._vec_cache: Dict[Tuple, bool] = {}

    # -- public API ---------------------------------------------------------

    def run(
        self,
        entry: str = "main",
        arrays: Optional[Dict[str, np.ndarray]] = None,
        scalars: Optional[Dict[str, object]] = None,
    ) -> ExecutionResult:
        """Execute function *entry* with the given host bindings."""
        host = self.machine.host
        for name, value in (arrays or {}).items():
            host.arrays[name] = value
        for name, value in (scalars or {}).items():
            host.scalars[name] = value
        for decl in self.program.decls:
            if isinstance(decl, ast.GlobalDecl):
                self._exec_global(decl.decl)

        func = self.functions.get(entry)
        if func is None:
            raise ExecutionError(f"no function {entry!r} in program")
        env = Env(parent=self._host_root)
        args = []
        for param in func.params:
            if not self._host_root.has(param.name):
                raise ExecutionError(
                    f"entry parameter {param.name!r} was not bound"
                )
            args.append(self._host_root.get(param.name))
        value = self._call_function(func, args, env_parent=self._host_root)

        self._drain_host()
        self.machine.finalize_integrity()
        return ExecutionResult(
            host=host, stats=self._collect_stats(), return_value=value
        )

    # -- stats --------------------------------------------------------------------

    def _collect_stats(self) -> ExecutionStats:
        machine = self.machine
        coi = machine.coi
        timeline = machine.timeline
        fleet = machine.fleet
        if fleet is None:
            device_busy = timeline.busy_time(DEVICE)
            h2d_time = timeline.busy_time(DMA_TO_DEVICE)
            d2h_time = timeline.busy_time(DMA_FROM_DEVICE)
            device_peak = machine.device_memory.peak
        else:
            # Per-card tracks: busy times sum (each card has its own
            # compute lane and DMA engines), as does the memory peak.
            device_busy = sum(
                timeline.busy_time(d.compute_track) for d in fleet.devices
            )
            h2d_time = sum(
                timeline.busy_time(d.h2d_track) for d in fleet.devices
            )
            d2h_time = sum(
                timeline.busy_time(d.d2h_track) for d in fleet.devices
            )
            device_peak = fleet.peak_bytes()
        return ExecutionStats(
            # Asynchronous tails (pipelined regularization, unwaited
            # transfers) bound completion even when the host got ahead.
            total_time=max(machine.clock.now, timeline.finish_time()),
            host_compute_time=timeline.busy_time("cpu")
            + self._host_seconds_total,
            device_busy_time=device_busy,
            device_compute_time=coi.stats.kernel_compute_seconds,
            transfer_to_device_time=h2d_time,
            transfer_from_device_time=d2h_time,
            bytes_to_device=coi.stats.bytes_to_device,
            bytes_from_device=coi.stats.bytes_from_device,
            kernel_launches=coi.stats.kernel_launches,
            kernel_signals=coi.stats.kernel_signals,
            offload_count=self._offload_count,
            device_peak_bytes=device_peak,
            devices=machine.devices,
            ops=self._ops_total.copy(),
        )

    _host_seconds_total: float = 0.0
    _offload_count: int = 0

    def _drain_host(self) -> None:
        seconds = self._host_ctx.take_seconds()
        self._host_seconds_total += seconds
        clock = self.machine.clock
        start = clock.now
        clock.advance(seconds)
        if seconds > 0 and self.machine.tracer.enabled:
            self.machine.tracer.span("host-compute", "cpu", start, clock.now)

    # -- globals / functions ---------------------------------------------------------

    def _exec_global(self, decl: ast.VarDecl) -> None:
        if self._host_root.has(decl.name):
            return  # bound by the caller
        if isinstance(decl.type, ast.ArrayType):
            self._host_root.declare(decl.name, self._make_local_array(decl.type))
        elif decl.init is not None:
            self._host_root.declare(decl.name, self._eval(decl.init, self._host_root))
        else:
            self._host_root.declare(decl.name, 0)

    def _call_function(self, func: ast.FuncDef, args, env_parent: Env):
        if len(args) != len(func.params):
            raise ExecutionError(
                f"{func.name}() takes {len(func.params)} args, got {len(args)}"
            )
        env = Env(parent=env_parent)
        for param, value in zip(func.params, args):
            env.declare(param.name, value)
        try:
            self._exec_block(func.body, env)
        except _Return as ret:
            return ret.value
        return None

    # -- statements --------------------------------------------------------------------

    def _exec_block(self, block: ast.Block, env: Env) -> None:
        scope = Env(parent=env)
        for stmt in block.stmts:
            self._exec_stmt(stmt, scope)

    def _exec_stmt(self, stmt: ast.Stmt, env: Env) -> None:
        # Type-keyed dispatch (see _STMT_DISPATCH below the class body):
        # one dict hit replaces an isinstance ladder on the hot path.
        handler = _STMT_DISPATCH.get(stmt.__class__)
        if handler is None:
            raise ExecutionError(f"cannot execute {type(stmt).__name__}")
        handler(self, stmt, env)

    def _exec_exprstmt(self, stmt: ast.ExprStmt, env: Env) -> None:
        self._eval(stmt.expr, env)

    def _exec_if(self, stmt: ast.If, env: Env) -> None:
        self._ctx.pending.branches += 1
        if self._truthy(self._eval(stmt.cond, env)):
            self._exec_stmt(stmt.then, env)
        elif stmt.other is not None:
            self._exec_stmt(stmt.other, env)

    def _exec_return(self, stmt: ast.Return, env: Env) -> None:
        raise _Return(None if stmt.value is None else self._eval(stmt.value, env))

    def _exec_break(self, stmt: ast.Break, env: Env) -> None:
        raise _Break()

    def _exec_continue(self, stmt: ast.Continue, env: Env) -> None:
        raise _Continue()

    def _exec_pragma_node(self, stmt: ast.PragmaStmt, env: Env) -> None:
        self._exec_pragma_stmt(stmt.pragma, env)

    def _exec_offload_block(self, stmt: ast.OffloadBlock, env: Env) -> None:
        self._exec_offload(stmt.pragma, stmt.body, env, loop=None)

    def _exec_decl(self, decl: ast.VarDecl, env: Env) -> None:
        if isinstance(decl.type, ast.ArrayType):
            env.declare(decl.name, self._make_local_array(decl.type, env))
        elif decl.init is not None:
            value = self._eval(decl.init, env)
            env.declare(decl.name, self._coerce(decl.type, value))
        else:
            env.declare(decl.name, None)

    def _make_local_array(self, typ: ast.ArrayType, env: Optional[Env] = None):
        size = (
            self._eval(typ.size, env or self._host_root)
            if typ.size is not None
            else 0
        )
        base = typ.base
        dtype = _NUMPY_TYPES.get(getattr(base, "name", "float"), np.float64)
        return np.zeros(int(size), dtype=dtype)

    def _coerce(self, typ: ast.Type, value):
        if isinstance(typ, ast.BaseType) and typ.name == "int" and not isinstance(
            value, np.ndarray
        ):
            return int(value)
        if isinstance(typ, ast.BaseType) and typ.name in ("float", "double"):
            if not isinstance(value, np.ndarray):
                return float(value)
        return value

    # -- assignment ----------------------------------------------------------------------

    def _exec_assign(self, stmt: ast.Assign, env: Env) -> None:
        value = self._eval(stmt.value, env)
        target = stmt.target
        if stmt.op != "=":
            current = self._eval(target, env)
            value = self._binary_value(stmt.op[0], current, value)
        if isinstance(target, ast.Ident):
            if not env.has(target.name):
                # Assignment to an undeclared name creates it at file scope
                # (host globals / device scalars), C-extern style.
                env.root().declare(target.name, value)
            else:
                old = None
                try:
                    old = env.get(target.name)
                except ExecutionError:
                    pass
                if isinstance(old, (int, np.integer)) and not isinstance(
                    value, np.ndarray
                ):
                    value = int(value)
                env.set(target.name, value)
        elif isinstance(target, ast.Subscript):
            array, index = self._resolve_subscript(target, env)
            self._count_access(
                target, env, is_write=True,
                itemsize=array.dtype.itemsize, array=array,
            )
            array[index] = value
        elif isinstance(target, ast.Member):
            self._assign_member(target, value, env)
        else:
            raise ExecutionError(f"cannot assign to {type(target).__name__}")

    def _assign_member(self, target: ast.Member, value, env: Env) -> None:
        if isinstance(target.base, ast.Subscript):
            array, index = self._resolve_subscript(target.base, env)
            if array.dtype.names is None or target.field not in array.dtype.names:
                raise ExecutionError(
                    f"array {array.dtype} has no field {target.field!r}"
                )
            self._count_access(
                target.base,
                env,
                is_write=True,
                itemsize=array.dtype[target.field].itemsize,
                aos=True,
                array=array,
            )
            array[target.field][index] = value
        else:
            base = self._eval(target.base, env)
            try:
                base[target.field] = value
            except (TypeError, IndexError, KeyError) as exc:
                raise ExecutionError(f"bad member assignment: {exc}") from exc

    # -- loops -------------------------------------------------------------------------------

    def _exec_for(self, loop: ast.For, env: Env) -> None:
        offload = next(
            (p for p in loop.pragmas if isinstance(p, ast.OffloadPragma)), None
        )
        if offload is not None and not self._ctx.is_device:
            self._exec_offload(offload, loop.body, env, loop=loop)
            return
        omp = next(
            (p for p in loop.pragmas if isinstance(p, ast.OmpParallelFor)), None
        )
        if omp is not None and not self._ctx.in_parallel:
            self._exec_parallel_for(loop, env)
            return
        self._run_loop(loop, env)

    def _run_loop(self, loop: ast.For, env: Env) -> int:
        """Interpret a loop sequentially; returns the trip count.

        Loop-control overhead (condition, increment) is not charged: it is
        negligible next to real body work, and charging it would wrongly
        scale an outer loop's bookkeeping by the simulation scale factor.
        """
        scope = Env(parent=env)
        if loop.init is not None:
            self._exec_stmt(loop.init, scope)
        var = self._loop_var_name(loop)
        if var is not None:
            self._loop_vars.append(var)
        trips = 0
        try:
            while loop.cond is None or self._truthy(
                self._eval_clause(loop.cond, scope)
            ):
                trips += 1
                try:
                    self._exec_stmt(loop.body, scope)
                except _Continue:
                    pass
                except _Break:
                    break
                if loop.step is not None:
                    self._exec_free(loop.step, scope)
        finally:
            if var is not None:
                self._loop_vars.pop()
        return trips

    def _exec_free(self, stmt: ast.Stmt, env: Env) -> None:
        """Execute a statement without charging its operations."""
        saved, self._ctx.pending = self._ctx.pending, OpCounters()
        try:
            self._exec_stmt(stmt, env)
        finally:
            self._ctx.pending = saved

    #: Share of a pipelined regularization loop that delays the program:
    #: "the only extra overhead caused by regularization is the time taken
    #: to regularize the first data block" (Section IV).
    PIPELINED_FIRST_BLOCK = 1.0 / 20.0

    def _exec_parallel_for(self, loop: ast.For, env: Env) -> None:
        """Interpret a parallel loop and time it with the roofline model."""
        ctx = self._ctx
        ctx.flush_serial()
        outer_pending = ctx.pending
        ctx.pending = OpCounters()
        ctx.in_parallel = True
        try:
            trips = None
            if self.engine in ("auto", "codegen"):
                trips = codegen.try_run_parallel_for(self, loop, env)
            if trips is None and self.engine != "tree":
                trips = batch_exec.try_run_parallel_for(self, loop, env)
            if trips is None:
                trips = self._run_loop(loop, env)
        finally:
            ctx.in_parallel = False
            loop_counters = ctx.pending
            ctx.pending = outer_pending
        vectorizable = self._is_vectorizable(loop, env)

        omp = next(
            (p for p in loop.pragmas if isinstance(p, ast.OmpParallelFor)), None
        )
        if omp is not None and omp.pipelined and not ctx.is_device:
            # Pipelined regularization: the gather overlaps downstream
            # transfer/compute on a spare host thread; only the first
            # block's share delays issue.  The full cost still occupies
            # the regularizer resource and bounds total program time.
            duration = ctx.model.compute_time(
                loop_counters.scaled(ctx.scale),
                parallel_iterations=trips * ctx.scale,
                vectorizable=vectorizable,
            )
            if ctx.sink is not None:
                ctx.sink.add(loop_counters)
            self._drain_host()
            event = self.machine.timeline.schedule(
                "cpu:regularize",
                duration,
                not_before=self.machine.clock.now,
                label="pipelined-regularize",
            )
            tracer = self.machine.tracer
            if tracer.enabled:
                tracer.span(
                    "pipelined-regularize", "cpu:regularize",
                    event.time - duration, event.time,
                    first_block_share=self.PIPELINED_FIRST_BLOCK,
                )
                tracer.metrics.counter("exec.pipelined_regularizations").inc()
            self.machine.clock.advance(duration * self.PIPELINED_FIRST_BLOCK)
            return
        ctx.add_parallel(loop_counters, trips, vectorizable)

    def _exec_while(self, loop: ast.While, env: Env) -> None:
        while self._truthy(self._eval_clause(loop.cond, env)):
            self._ctx.pending.branches += 1
            try:
                self._exec_stmt(loop.body, env)
            except _Continue:
                continue
            except _Break:
                break

    def _exec_do_while(self, loop: ast.DoWhile, env: Env) -> None:
        while True:
            self._ctx.pending.branches += 1
            try:
                self._exec_stmt(loop.body, env)
            except _Continue:
                pass
            except _Break:
                break
            if not self._truthy(self._eval_clause(loop.cond, env)):
                break

    def _loop_var_name(self, loop: ast.For) -> Optional[str]:
        if isinstance(loop.init, ast.VarDecl):
            return loop.init.name
        if isinstance(loop.init, ast.Assign) and isinstance(
            loop.init.target, ast.Ident
        ):
            return loop.init.target.name
        return None

    # -- vectorizability ------------------------------------------------------------------------

    def _is_vectorizable(self, loop: ast.For, env: Env) -> bool:
        """Delegate to the vectorizability analysis with the concrete
        integer bindings visible at loop entry, so expressions like
        ``i * cols + j`` resolve to unit stride in ``j``.

        The analysis consults bindings only for symbols appearing in
        subscript index expressions, so the verdict is memoized per
        (loop node, values of those symbols) — repeated offloads of the
        same loop skip the re-analysis entirely.
        """
        meta = self._vec_meta.get(id(loop))
        if meta is None:
            nest_vars = []
            for f in [loop] + [
                s for s in _walk_stmts(loop.body) if isinstance(s, ast.For)
            ]:
                name = self._loop_var_name(f)
                if name is not None:
                    nest_vars.append(name)
            index_names = set()
            for node in walk_nodes(loop):
                if isinstance(node, ast.Subscript):
                    index_names.update(
                        n.name
                        for n in walk_nodes(node.index)
                        if isinstance(n, ast.Ident)
                    )
            meta = (nest_vars, sorted(index_names - set(nest_vars)))
            self._vec_meta[id(loop)] = meta
        nest_vars, index_names = meta
        bindings = env.int_bindings()
        # Override any stale values for the nest's own induction
        # variables: they are constants from the innermost perspective.
        for name in nest_vars:
            bindings[name] = 0
        key = (id(loop), tuple(bindings.get(n) for n in index_names))
        cached = self._vec_cache.get(key)
        if cached is None:
            cached = is_vectorizable(loop, bindings)
            self._vec_cache[key] = cached
        return cached

    # -- offload ------------------------------------------------------------------------------------

    def _exec_offload(
        self,
        pragma: ast.OffloadPragma,
        body: ast.Stmt,
        env: Env,
        loop: Optional[ast.For],
    ) -> None:
        tracer = self.machine.tracer
        if not tracer.enabled:
            self._exec_offload_inner(pragma, body, env, loop)
            return
        # Drain pre-offload host work first so its span is a sibling of
        # (not a child of) the offload phase about to open.
        self._drain_host()
        tracer.metrics.counter("exec.offloads").inc()
        with tracer.phase(
            "offload",
            self.machine.clock,
            index=self._offload_count,
            persistent=bool(pragma.persistent),
        ):
            self._exec_offload_inner(pragma, body, env, loop)

    def _exec_offload_inner(
        self,
        pragma: ast.OffloadPragma,
        body: ast.Stmt,
        env: Env,
        loop: Optional[ast.For],
    ) -> None:
        self._drain_host()
        self._offload_count += 1
        coi = self.machine.coi
        resilience = coi.resilience
        fleet = self.machine.fleet

        # Fleet sharding: deal this block to a healthy card (probing
        # quarantined ones first).  None ⇒ every card is gone.
        if fleet is not None and not coi.fallback_mode:
            if fleet.begin_block(coi) is None:
                self._fleet_exhausted()

        # The device site is consulted once per offload entry — the one
        # boundary where all device state is quiescent, so a full reset
        # can be recovered without tearing a transfer or kernel in half.
        # In a fleet the draw rides the *assigned* card's stream; after a
        # loss the block is re-dealt without a second draw (one consult
        # per offload entry, same as single-device).
        if coi.injector is not None:
            reset = coi.injector.draw("device", device=coi.active_device_index)
            if reset is not None:
                self._recover_device_reset(reset)
                if fleet is not None and not coi.fallback_mode:
                    if fleet.begin_block(coi) is None:
                        self._fleet_exhausted()
        integrity = coi.integrity
        if integrity is not None:
            integrity.maybe_scrub(coi)

        deps: List[Event] = []
        if pragma.wait is not None:
            tag = self._eval_clause(pragma.wait, env)
            deps.extend(coi.take_signal(tag))

        if resilience is None:
            transfer_events, freed_after = self._do_in_clauses(
                pragma.clauses, env, deps
            )
        else:
            try:
                transfer_events, freed_after = self._do_in_clauses(
                    pragma.clauses, env, deps
                )
            except DeviceOutOfMemory as oom:
                if self._recover_offload_oom(oom, pragma, body, env, loop, deps):
                    return
                # Transient injected OOM on a non-demotable offload: the
                # backoff is charged; re-issue with injection silenced.
                with coi.injector_suspended():
                    transfer_events, freed_after = self._do_in_clauses(
                        pragma.clauses, env, deps
                    )

        # Input buffers must be verified before the body is interpreted:
        # the simulator computes eagerly, so repair has to land before
        # corrupted input bytes could propagate into outputs.
        if integrity is not None:
            integrity.pre_kernel_verify(
                coi, self._clause_device_names(pragma.clauses)
            )

        # Interpret the body on the device, accumulating device time.
        record = [] if resilience is not None else None
        kernel_seconds = self._interpret_device_body(body, env, loop, record)
        if integrity is not None:
            integrity.note_kernel_writes(coi)

        persistent_key = None
        if pragma.persistent:
            persistent_key = pragma.session or f"offload@{id(pragma)}"
        if coi.fallback_mode:
            # Fleet exhausted: the body was interpreted for correctness
            # above; its cost is charged as host re-execution.
            self._charge_host_fallback(record)
            kernel_event = None
        else:
            try:
                kernel_event = coi.launch_kernel(
                    kernel_seconds,
                    deps=deps + transfer_events,
                    label="offload",
                    persistent_key=persistent_key,
                )
            except OffloadTimeout:
                if resilience is None or not resilience.host_fallback:
                    raise
                # The device already holds the (correct) results — the
                # simulator decouples correctness from timing — so fallback
                # charges the host re-execution cost and the out clauses
                # below deliver exactly what host execution would have.
                self._charge_host_fallback(record)
                kernel_event = None

        if integrity is not None and kernel_event is not None:
            integrity.kernel_completed(
                coi, self._clause_out_names(pragma.clauses), kernel_seconds
            )

        out_deps = (
            [kernel_event] if kernel_event is not None else list(transfer_events)
        )
        out_events = self._do_out_clauses(pragma.clauses, env, out_deps)
        for name in freed_after:
            coi.free_buffer(name)

        final = out_events[-1] if out_events else kernel_event
        if pragma.signal is not None:
            tag = self._eval_clause(pragma.signal, env)
            coi.post_signal(tag, [final] if final is not None else [])
        elif final is not None:
            self.machine.clock.wait_until(final)

        if coi.checkpoint is not None:
            coi.checkpoint.block_completed(
                coi, kernel_seconds, session=persistent_key
            )

    def _interpret_device_body(
        self,
        body: ast.Stmt,
        env: Env,
        loop: Optional[ast.For],
        record: Optional[list] = None,
    ) -> float:
        """Interpret an offload body in a device context; returns seconds."""
        device_env = Env(parent=self._device_root)
        saved_ctx = self._ctx
        self._ctx = _TimedContext(
            self.machine.mic_model,
            self.machine.scale,
            is_device=True,
            sink=self._ops_total,
            record=record,
            tracer=self.machine.tracer,
        )
        try:
            if loop is not None:
                omp = next(
                    (p for p in loop.pragmas if isinstance(p, ast.OmpParallelFor)),
                    None,
                )
                if omp is not None:
                    self._exec_parallel_for(loop, device_env)
                else:
                    self._run_loop(loop, device_env)
            else:
                self._exec_stmt(body, device_env)
            return self._ctx.take_seconds()
        finally:
            self._ctx = saved_ctx

    # -- fault recovery ---------------------------------------------------------------------------

    def _recover_device_reset(self, fault) -> None:
        """Survive a full device reset drawn at offload entry.

        With checkpoint/restart enabled on the policy, the checkpoint
        manager restores the session (re-upload live blocks, rebuild
        arenas, re-charge uncommitted kernel work) and execution resumes
        as if the reset were a very expensive stall.  Without it there
        is nothing to resume from: the device state is gone and the run
        dies with :class:`~repro.errors.DeviceLost`.
        """
        coi = self.machine.coi
        fleet = self.machine.fleet
        if fleet is not None:
            # A fleet absorbs the loss: quarantine/evict the card and
            # redistribute its blocks to the survivors.  Exhaustion is
            # decided at the next begin_block, not here.
            fleet.handle_device_loss(coi, fault)
            return
        manager = coi.checkpoint
        stats = coi.fault_stats
        if manager is None:
            if stats is not None:
                stats.device_resets += 1
            raise DeviceLost(
                f"device reset at offload #{self._offload_count - 1} with "
                f"checkpointing disabled; set "
                f"ResiliencePolicy.checkpoint_interval > 0 to make "
                f"streamed offloads resumable"
            )
        manager.handle_reset(coi, fault)

    def _fleet_exhausted(self) -> None:
        """Every fleet card is evicted: host fallback or give up.

        With ``host_fallback`` enabled the run enters permanent
        fallback mode — data ops stay eager (correctness is unaffected)
        and every remaining offload is charged as host re-execution.
        Otherwise the run dies with :class:`~repro.errors.DeviceLost`,
        which by the fleet invariant can only happen when every device
        is gone.
        """
        coi = self.machine.coi
        policy = coi.resilience
        stats = coi.fault_stats
        if policy is None or not policy.host_fallback:
            raise DeviceLost(
                f"all {self.machine.devices} fleet devices permanently "
                f"evicted by offload #{self._offload_count - 1} and host "
                f"fallback is disabled"
            )
        coi.enter_fallback_mode()
        if stats is not None:
            stats.record_action("device", "fleet_exhausted")
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.instant(
                "fleet:exhausted", self.machine.clock.now, track="cpu",
                devices=self.machine.devices,
            )
            tracer.metrics.counter("fleet.exhausted").inc()

    def _recover_offload_oom(
        self,
        oom: DeviceOutOfMemory,
        pragma: ast.OffloadPragma,
        body: ast.Stmt,
        env: Env,
        loop: Optional[ast.For],
        deps: List[Event],
    ) -> bool:
        """Decide how an offload survives a device OOM.

        Returns True when the offload has been fully executed through a
        recovery path (streamed demotion or host fallback); False when
        the OOM was transient (injected) and the caller should simply
        retry the in-clauses.  A genuine OOM with no recovery path
        re-raises.
        """
        coi = self.machine.coi
        policy = coi.resilience
        stats = coi.fault_stats
        simple = self._demotable(pragma, env)
        if policy.demote_on_oom and simple and loop is not None:
            self._exec_offload_demoted(pragma, body, env, loop, deps)
            return True
        if oom.injected:
            pause = policy.backoff(0)
            self.machine.clock.advance(pause)
            stats.backoff_seconds += pause
            stats.retries += 1
            stats.record_action("alloc", "retry")
            return False
        if policy.host_fallback and simple:
            self._exec_offload_on_host(pragma, body, env, loop)
            return True
        raise oom

    def _demotable(self, pragma: ast.OffloadPragma, env: Env) -> bool:
        """True when every clause moves a whole host value with default
        alloc/free semantics — the shape the runtime can transparently
        replay in streamed (block-granular) form, or hand to the host."""
        for clause in pragma.clauses:
            if clause.direction == "nocopy":
                return False
            if clause.into is not None or clause.start is not None:
                return False
            if clause.alloc_if is not None or clause.free_if is not None:
                return False
            value = self._lookup_host(clause.var, env, allow_missing=True)
            if value is None:
                return False
            if isinstance(value, np.ndarray) and clause.length is not None:
                if self._eval_clause_int(clause.length, env, len(value)) != len(
                    value
                ):
                    return False
        return True

    def _charge_host_fallback(
        self, record: Optional[list], fraction: float = 1.0
    ) -> None:
        """Charge the cost of abandoning device work to the host CPU:
        the policy's migration penalty plus re-executing *fraction* of
        the recorded kernel work at host speed."""
        coi = self.machine.coi
        policy = coi.resilience
        stats = coi.fault_stats
        replay = (
            self.machine.cpu_model.replay_time(record or [], self.machine.scale)
            * fraction
        )
        cost = policy.fallback_penalty + replay
        self.machine.clock.advance(cost)
        stats.host_fallbacks += 1
        stats.fallback_seconds += cost
        stats.record_action("kernel", "host_fallback")
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.instant(
                "recovery:host-fallback", self.machine.clock.now, track="cpu",
                cost=cost, fraction=fraction,
            )
            tracer.metrics.counter("faults.host_fallbacks").inc()

    def _exec_offload_on_host(
        self,
        pragma: ast.OffloadPragma,
        body: ast.Stmt,
        env: Env,
        loop: Optional[ast.For],
    ) -> None:
        """Graceful degradation: run the offload region on the host CPU.

        The body is interpreted with the *current* environment in the
        host context, so results land directly in host memory; in-only
        clause values are snapshotted and restored, matching the device
        semantics where writes to in-only data are discarded.
        """
        coi = self.machine.coi
        policy = coi.resilience
        stats = coi.fault_stats
        start_clock = self.machine.clock.now
        self.machine.clock.advance(policy.fallback_penalty)

        saved_arrays = []
        saved_scalars = []
        for clause in pragma.clauses:
            if clause.direction != "in":
                continue
            value = self._lookup_host(clause.var, env, allow_missing=True)
            if isinstance(value, np.ndarray):
                saved_arrays.append((value, value.copy()))
            elif value is not None:
                saved_scalars.append((clause.var, value))
        try:
            if loop is not None:
                omp = next(
                    (p for p in loop.pragmas if isinstance(p, ast.OmpParallelFor)),
                    None,
                )
                if omp is not None:
                    self._exec_parallel_for(loop, env)
                else:
                    self._run_loop(loop, env)
            else:
                self._exec_stmt(body, env)
        finally:
            for array, snapshot in saved_arrays:
                array[:] = snapshot
            for name, value in saved_scalars:
                env.set(name, value)
        self._drain_host()

        stats.host_fallbacks += 1
        stats.fallback_seconds += self.machine.clock.now - start_clock
        stats.record_action("alloc", "host_fallback")
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.instant(
                "recovery:host-fallback", self.machine.clock.now, track="cpu",
                cost=self.machine.clock.now - start_clock,
            )
            tracer.metrics.counter("faults.host_fallbacks").inc()
        if pragma.signal is not None:
            tag = self._eval_clause(pragma.signal, env)
            coi.post_signal(tag, [])

    def _exec_offload_demoted(
        self,
        pragma: ast.OffloadPragma,
        body: ast.Stmt,
        env: Env,
        loop: ast.For,
        deps: List[Event],
    ) -> None:
        """Replay an un-streamed offload that hit device OOM in streamed
        form: block-granular transfers with only two blocks of each array
        resident, the kernel chopped into per-block chunks on a
        persistent session.

        Unlike the compiler's streaming transform, the demoted schedule
        is deliberately conservative — every kernel chunk waits for all
        in-transfers and chunks are serialized — so recovery is never
        faster than the healthy offload it replaces.
        """
        from repro.transforms.streaming import choose_demotion_blocks

        coi = self.machine.coi
        policy = coi.resilience
        stats = coi.fault_stats
        stats.oom_demotions += 1
        stats.record_action("alloc", "demotion")
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.instant(
                "recovery:oom-demotion", self.machine.clock.now, track="cpu",
            )
            tracer.metrics.counter("faults.oom_demotions").inc()

        array_clauses = []
        for clause in pragma.clauses:
            value = self._lookup_host(clause.var, env)
            if isinstance(value, np.ndarray):
                array_clauses.append((clause, value))
            elif clause.direction in ("in", "inout"):
                self.machine.device.scalars[clause.var] = value
            else:
                self.machine.device.scalars.setdefault(
                    clause.var, value if value is not None else 0
                )
        # Drop whatever the failed full-size attempt left allocated.
        mem = coi.active_memory()
        for clause, value in array_clauses:
            if mem.holds(clause.var):
                coi.free_buffer(clause.var)
        footprint = sum(value.nbytes for _, value in array_clauses)
        nblocks = choose_demotion_blocks(
            footprint * mem.scale, mem.capacity - mem.in_use
        )

        def block_len(value: np.ndarray) -> int:
            return max(1, math.ceil(len(value) / nblocks))

        in_events: List[Event] = []
        with coi.injector_suspended():
            for clause, value in array_clauses:
                resident = 1 if clause.direction == "out" else 2
                coi.alloc_buffer(
                    clause.var,
                    len(value),
                    dtype=value.dtype,
                    account_elems=resident * block_len(value),
                )
        for clause, value in array_clauses:
            if clause.direction not in ("in", "inout"):
                continue
            step = block_len(value)
            for start in range(0, len(value), step):
                stop = min(start + step, len(value))
                in_events.append(
                    coi.write_buffer(
                        clause.var,
                        start,
                        value[start:stop],
                        deps=deps,
                        sync=False,
                        block=True,
                    )
                )

        integrity = coi.integrity
        if integrity is not None:
            integrity.pre_kernel_verify(
                coi, [clause.var for clause, _ in array_clauses]
            )

        record: list = []
        kernel_seconds = self._interpret_device_body(body, env, loop, record)
        if integrity is not None:
            integrity.note_kernel_writes(coi)

        session = f"demote@{id(pragma)}"
        chunk = kernel_seconds / nblocks
        kernel_event: Optional[Event] = None
        for i in range(nblocks):
            kdeps = list(deps) + in_events
            if kernel_event is not None:
                kdeps.append(kernel_event)
            try:
                kernel_event = coi.launch_kernel(
                    chunk,
                    deps=kdeps,
                    label="offload~demoted",
                    persistent_key=session,
                )
            except OffloadTimeout:
                if not policy.host_fallback:
                    coi.end_persistent(session)
                    raise
                self._charge_host_fallback(record, fraction=(nblocks - i) / nblocks)
                kernel_event = None
                break
        coi.end_persistent(session)

        if integrity is not None and kernel_event is not None:
            integrity.kernel_completed(
                coi,
                [
                    clause.var
                    for clause, _ in array_clauses
                    if clause.direction in ("out", "inout")
                ],
                kernel_seconds,
            )

        out_deps = [kernel_event] if kernel_event is not None else list(in_events)
        out_events: List[Event] = []
        for clause, value in array_clauses:
            if clause.direction not in ("out", "inout"):
                continue
            step = block_len(value)
            for start in range(0, len(value), step):
                stop = min(start + step, len(value))
                out_events.append(
                    coi.read_buffer(
                        clause.var,
                        start,
                        stop - start,
                        value,
                        start,
                        deps=out_deps,
                        sync=False,
                        block=True,
                    )
                )
        for clause in pragma.clauses:
            if clause.direction not in ("out", "inout"):
                continue
            if clause.var in self.machine.device.scalars and not isinstance(
                self._lookup_host(clause.var, env, allow_missing=True), np.ndarray
            ):
                value = self.machine.device.scalars[clause.var]
                if env.has(clause.var):
                    env.set(clause.var, value)
                else:
                    env.declare(clause.var, value)
        for clause, value in array_clauses:
            coi.free_buffer(clause.var)

        final = out_events[-1] if out_events else kernel_event
        if pragma.signal is not None:
            tag = self._eval_clause(pragma.signal, env)
            coi.post_signal(tag, [final] if final is not None else [])
        elif final is not None:
            self.machine.clock.wait_until(final)

        if coi.checkpoint is not None:
            coi.checkpoint.block_completed(coi, kernel_seconds, session=session)

    def _exec_pragma_stmt(self, pragma: ast.Pragma, env: Env) -> None:
        coi = self.machine.coi
        if isinstance(pragma, ast.OffloadWaitPragma):
            self._drain_host()
            tag = self._eval_clause(pragma.wait, env)
            coi.wait_signal(tag)
            return
        if isinstance(pragma, ast.OffloadTransferPragma):
            self._drain_host()
            try:
                events, freed = self._do_in_clauses(pragma.clauses, env, deps=[])
            except DeviceOutOfMemory as oom:
                # A standalone transfer pragma (streamed code's block
                # traffic) has no demotion shape; an injected OOM is
                # transient — back off and re-issue.  Genuine OOM here is
                # a real capacity failure and propagates.
                if coi.resilience is None or not oom.injected:
                    raise
                pause = coi.resilience.backoff(0)
                self.machine.clock.advance(pause)
                coi.fault_stats.backoff_seconds += pause
                coi.fault_stats.retries += 1
                coi.fault_stats.record_action("alloc", "retry")
                with coi.injector_suspended():
                    events, freed = self._do_in_clauses(
                        pragma.clauses, env, deps=[]
                    )
            events += self._do_out_clauses(pragma.clauses, env, deps=[])
            for name in freed:
                coi.free_buffer(name)
            if pragma.signal is not None:
                tag = self._eval_clause(pragma.signal, env)
                coi.post_signal(tag, events)
            else:
                for event in events:
                    self.machine.clock.wait_until(event)
            return
        raise ExecutionError(f"cannot execute pragma {type(pragma).__name__}")

    # -- clause processing ------------------------------------------------------------------------

    def _do_in_clauses(
        self, clauses: List[ast.TransferClause], env: Env, deps: List[Event]
    ) -> Tuple[List[Event], List[str]]:
        """Handle in/inout/nocopy clauses; returns (events, buffers to free)."""
        coi = self.machine.coi
        events: List[Event] = []
        freed_after: List[str] = []
        for clause in clauses:
            if clause.direction == "out":
                # Allocation side of an out clause: ensure the device buffer
                # exists (freshly written by the kernel).
                self._prepare_out_buffer(clause, env, freed_after)
                continue
            alloc = self._flag(clause.alloc_if, env, default=True)
            free = self._flag(clause.free_if, env, default=clause.direction != "nocopy")
            if clause.direction == "nocopy":
                # Pure device-buffer management: the name may have no host
                # counterpart (double-buffering's sptprice1/sptprice2).
                dest = clause.into or clause.var
                host_value = self._lookup_host(clause.var, env, allow_missing=True)
                dtype = (
                    host_value.dtype
                    if isinstance(host_value, np.ndarray)
                    else np.float32
                )
                if alloc:
                    length = self._eval_clause_int(clause.length, env, 0)
                    coi.alloc_buffer(dest, length, dtype=dtype)
                if free:
                    freed_after.append(dest)
                continue
            src_value = self._lookup_host(clause.var, env)
            if isinstance(src_value, np.ndarray):
                dest = clause.into or clause.var
                start = self._eval_clause_int(clause.start, env, 0)
                length = (
                    self._eval_clause_int(clause.length, env, len(src_value) - start)
                )
                if clause.into is None:
                    # in(A[s:l]): the device mirror keeps the host layout.
                    into_start = start
                else:
                    into_start = self._eval_clause_int(clause.into_start, env, 0)
                if start < 0 or start + length > len(src_value):
                    raise RuntimeFault(
                        f"clause section [{start}:{start + length}) out of range "
                        f"for host array {clause.var!r} of {len(src_value)}"
                    )
                if alloc:
                    coi.alloc_buffer(
                        dest, into_start + length, dtype=src_value.dtype
                    )
                if clause.direction in ("in", "inout"):
                    events.append(
                        coi.write_buffer(
                            dest,
                            into_start,
                            src_value[start : start + length],
                            deps=deps,
                            sync=False,
                            # Sectioned transfers are a streamed loop's
                            # blocks; their fault replays are what the
                            # block-restart counter reports.
                            block=clause.into is not None
                            or start != 0
                            or length != len(src_value),
                        )
                    )
                if free:
                    freed_after.append(dest)
            else:
                # Scalar: copied at allocation time (Section III-A); the
                # cost rides along with the kernel launch.
                if clause.direction in ("in", "inout"):
                    self.machine.device.scalars[clause.var] = src_value
        return events, freed_after

    def _prepare_out_buffer(
        self, clause: ast.TransferClause, env: Env, freed_after: List[str]
    ) -> None:
        coi = self.machine.coi
        alloc = self._flag(clause.alloc_if, env, default=True)
        free = self._flag(clause.free_if, env, default=True)
        host_side = clause.into or clause.var
        host_value = self._lookup_host(host_side, env, allow_missing=True)
        if not isinstance(host_value, np.ndarray):
            # Scalar out: pre-seed the device scalar so kernel writes land
            # in device space (and can be copied back afterwards).
            self.machine.device.scalars.setdefault(
                clause.var, host_value if host_value is not None else 0
            )
            return
        start = self._eval_clause_int(clause.start, env, 0)
        length = self._eval_clause_int(clause.length, env, len(host_value) - start)
        if alloc and not self.machine.device.holds(clause.var):
            coi.alloc_buffer(clause.var, start + length, dtype=host_value.dtype)
        elif alloc:
            coi.alloc_buffer(
                clause.var,
                max(start + length, len(self.machine.device.array(clause.var))),
                dtype=host_value.dtype,
            )
        if free:
            freed_after.append(clause.var)

    def _do_out_clauses(
        self, clauses: List[ast.TransferClause], env: Env, deps: List[Event]
    ) -> List[Event]:
        coi = self.machine.coi
        events: List[Event] = []
        for clause in clauses:
            if clause.direction not in ("out", "inout"):
                continue
            if clause.direction == "inout":
                src_name = clause.into or clause.var
                host_name = clause.var
            else:
                src_name = clause.var
                host_name = clause.into or clause.var
            host_value = self._lookup_host(host_name, env, allow_missing=True)
            if isinstance(host_value, np.ndarray):
                if clause.direction == "inout":
                    dev_start = self._eval_clause_int(clause.into_start, env, 0)
                    host_start = self._eval_clause_int(clause.start, env, 0)
                else:
                    dev_start = self._eval_clause_int(clause.start, env, 0)
                    if clause.into is None:
                        # out(B[s:l]): same section on both sides.
                        host_start = dev_start
                    else:
                        host_start = self._eval_clause_int(
                            clause.into_start, env, 0
                        )
                length = self._eval_clause_int(
                    clause.length, env, len(host_value) - host_start
                )
                events.append(
                    coi.read_buffer(
                        src_name,
                        dev_start,
                        length,
                        host_value,
                        host_start,
                        deps=deps,
                        sync=False,
                        block=clause.into is not None
                        or host_start != 0
                        or length != len(host_value),
                    )
                )
            else:
                # Scalar out: copy the device scalar back to the host scope.
                if clause.var in self.machine.device.scalars:
                    value = self.machine.device.scalars[clause.var]
                    if env.has(clause.var):
                        env.set(clause.var, value)
                    else:
                        env.declare(clause.var, value)
        return events

    @staticmethod
    def _clause_device_names(clauses: List[ast.TransferClause]) -> List[str]:
        """Device buffer names an offload's clauses refer to (any direction)."""
        names = []
        for clause in clauses:
            if clause.direction == "out":
                names.append(clause.var)
            else:
                names.append(clause.into or clause.var)
        return names

    @staticmethod
    def _clause_out_names(clauses: List[ast.TransferClause]) -> List[str]:
        """Device buffer names an offload's kernel writes (out/inout)."""
        names = []
        for clause in clauses:
            if clause.direction == "out":
                names.append(clause.var)
            elif clause.direction == "inout":
                names.append(clause.into or clause.var)
        return names

    def _lookup_host(self, name: str, env: Env, allow_missing: bool = False):
        if env.has(name):
            return env.get(name)
        if allow_missing:
            return None
        raise RuntimeFault(f"offload clause names unknown host variable {name!r}")

    def _flag(self, expr: Optional[ast.Expr], env: Env, default: bool) -> bool:
        if expr is None:
            return default
        return bool(self._eval_clause(expr, env))

    def _eval_clause(self, expr: ast.Expr, env: Env):
        saved, self._ctx.pending = self._ctx.pending, OpCounters()
        try:
            return self._eval(expr, env)
        finally:
            self._ctx.pending = saved

    def _eval_clause_int(
        self, expr: Optional[ast.Expr], env: Env, default: int
    ) -> int:
        if expr is None:
            return int(default)
        return int(self._eval_clause(expr, env))

    # -- expressions -----------------------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, env: Env):
        # Type-keyed dispatch (see _EVAL_DISPATCH below the class body):
        # this is the interpreter's hottest function.
        handler = _EVAL_DISPATCH.get(expr.__class__)
        if handler is None:
            raise ExecutionError(f"cannot evaluate {type(expr).__name__}")
        return handler(self, expr, env)

    def _eval_literal(self, expr, env: Env):
        return expr.value

    def _eval_ident(self, expr: ast.Ident, env: Env):
        return env.get(expr.name)

    def _eval_subscript(self, expr: ast.Subscript, env: Env):
        array, index = self._resolve_subscript(expr, env)
        self._count_access(
            expr, env, is_write=False,
            itemsize=array.dtype.itemsize, array=array,
        )
        value = array[index]
        if isinstance(value, np.void):
            return value
        return value.item() if isinstance(value, np.generic) else value

    def _eval_cond(self, expr: ast.Cond, env: Env):
        self._ctx.pending.branches += 1
        if self._truthy(self._eval(expr.cond, env)):
            return self._eval(expr.then, env)
        return self._eval(expr.other, env)

    def _eval_cast(self, expr: ast.Cast, env: Env):
        value = self._eval(expr.operand, env)
        return self._coerce(expr.type, value)

    def _eval_sizeof(self, expr: ast.SizeOf, env: Env):
        return sizeof_type(expr.type, self.structs)

    def _eval_binop(self, expr: ast.BinOp, env: Env):
        if expr.op == "&&":
            self._ctx.pending.int_ops += 1
            return int(
                self._truthy(self._eval(expr.left, env))
                and self._truthy(self._eval(expr.right, env))
            )
        if expr.op == "||":
            self._ctx.pending.int_ops += 1
            return int(
                self._truthy(self._eval(expr.left, env))
                or self._truthy(self._eval(expr.right, env))
            )
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        return self._binary_value(expr.op, left, right)

    def _binary_value(self, op: str, left, right):
        is_float = isinstance(left, (float, np.floating)) or isinstance(
            right, (float, np.floating)
        )
        if op in ("+", "-", "*", "/"):
            if is_float:
                self._ctx.pending.flops += 1
            else:
                self._ctx.pending.int_ops += 1
        else:
            self._ctx.pending.int_ops += 1
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if is_float:
                return left / right
            quotient = abs(int(left)) // abs(int(right))
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if op == "%":
            remainder = abs(int(left)) % abs(int(right))
            return remainder if left >= 0 else -remainder
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        raise ExecutionError(f"unsupported operator {op!r}")

    def _eval_unop(self, expr: ast.UnOp, env: Env):
        value = self._eval(expr.operand, env)
        if expr.op == "-":
            if isinstance(value, (float, np.floating)):
                self._ctx.pending.flops += 1
            else:
                self._ctx.pending.int_ops += 1
            return -value
        if expr.op == "!":
            self._ctx.pending.int_ops += 1
            return int(not self._truthy(value))
        raise ExecutionError(f"unsupported unary operator {expr.op!r}")

    def _eval_member(self, expr: ast.Member, env: Env):
        if isinstance(expr.base, ast.Subscript):
            array, index = self._resolve_subscript(expr.base, env)
            if array.dtype.names is None or expr.field not in array.dtype.names:
                raise ExecutionError(f"no field {expr.field!r} in {array.dtype}")
            self._count_access(
                expr.base,
                env,
                is_write=False,
                itemsize=array.dtype[expr.field].itemsize,
                aos=True,
                array=array,
            )
            value = array[expr.field][index]
            return value.item() if isinstance(value, np.generic) else value
        base = self._eval(expr.base, env)
        if isinstance(base, np.void):
            return base[expr.field]
        try:
            return base[expr.field]
        except (TypeError, IndexError, KeyError) as exc:
            raise ExecutionError(f"bad member access: {exc}") from exc

    #: Shared-memory allocation intrinsics (Section V).  ``malloc`` and
    #: ``Offload_shared_malloc`` go through the MYO baseline; the lowering
    #: pass rewrites them to ``arena_alloc`` which goes through the
    #: segmented arena.  Each returns an opaque address handle.
    _SHARED_ALLOC_FUNCS = frozenset(
        {"malloc", "Offload_shared_malloc", "shared_malloc"}
    )
    _ARENA_FUNCS = frozenset({"arena_alloc"})
    _FREE_FUNCS = frozenset(
        {"free", "Offload_shared_free", "shared_free", "arena_free"}
    )

    def _call_root_env(self) -> Env:
        """The root scope function calls resolve against (context-based)."""
        return self._device_root if self._ctx.is_device else self._host_root

    def _eval_call(self, expr: ast.Call, env: Env):
        args = [self._eval(a, env) for a in expr.args]
        self._ctx.pending.calls += 1
        if expr.func in self.functions:
            return self._call_function(
                self.functions[expr.func], args, self._call_root_env()
            )
        if expr.func in _BUILTIN_IMPL:
            self._ctx.pending.flops += BUILTIN_COSTS[expr.func]
            try:
                return _BUILTIN_IMPL[expr.func](*args)
            except ValueError as exc:
                raise ExecutionError(f"math domain error in {expr.func}: {exc}")
        if expr.func in self._SHARED_ALLOC_FUNCS:
            return self.machine.myo.shared_malloc(int(args[0]))
        if expr.func in self._ARENA_FUNCS:
            return self.machine.arena.allocate(int(args[0])).ptr.addr
        if expr.func in self._FREE_FUNCS:
            # Shared frees are deferred: MYO reclaims at program end, the
            # arena releases whole buffers (Section V-A).
            return 0
        raise ExecutionError(f"call to unknown function {expr.func!r}")

    # -- access accounting -------------------------------------------------------------------------------

    def _resolve_subscript(self, expr: ast.Subscript, env: Env):
        base = self._eval_no_count(expr.base, env)
        if not isinstance(base, np.ndarray):
            raise ExecutionError("subscript of a non-array value")
        index = int(self._eval(expr.index, env))
        if index < 0 or index >= len(base):
            raise ExecutionError(
                f"index {index} out of range for array of {len(base)}"
            )
        return base, index

    def _eval_no_count(self, expr: ast.Expr, env: Env):
        if isinstance(expr, ast.Ident):
            return env.get(expr.name)
        return self._eval(expr, env)

    #: Arrays whose (simulated) size fits comfortably in cache are charged
    #: no memory traffic and no locality penalty: centroid tables,
    #: dictionaries and other small lookup structures live in L1/L2.
    CACHED_ARRAY_BYTES = 256 << 10

    def _count_access(
        self,
        node: ast.Subscript,
        env: Env,
        is_write: bool,
        itemsize: int,
        aos: bool = False,
        array=None,
    ) -> None:
        pending = self._ctx.pending
        cached = (
            array is not None
            and array.nbytes * self.machine.scale <= self.CACHED_ARRAY_BYTES
        )
        if is_write:
            pending.stores += 1
            if not cached:
                pending.bytes_written += itemsize
        else:
            pending.loads += 1
            if not cached:
                pending.bytes_read += itemsize
        if not cached and (aos or self._is_irregular_site(node, env)):
            pending.irregular_accesses += 1

    def _is_irregular_site(self, node: ast.Subscript, env: Env) -> bool:
        """Static-per-site classification of access regularity.

        Classified once per (AST node, innermost loop variable) against
        concrete bindings, then cached — the dynamic count of irregular
        accesses is what the locality model consumes.
        """
        if not self._loop_vars:
            return False
        var = self._loop_vars[-1]
        key = (id(node), var)
        cached = self._access_cache.get(key)
        if cached is None:
            cached = self._classify_site(node.index, var, env.int_bindings())
            self._access_cache[key] = cached
        return cached in (
            AccessKind.INDIRECT,
            AccessKind.NONLINEAR,
            AccessKind.AFFINE,
        )

    def _classify_site(
        self, index: ast.Expr, var: str, bindings: Dict[str, int]
    ) -> AccessKind:
        if any(isinstance(n, ast.Subscript) for n in walk_nodes(index)):
            return AccessKind.INDIRECT
        bindings = dict(bindings)
        bindings.pop(var, None)
        try:
            form = extract_linear_form(index, var, bindings)
        except NotAffineError:
            return AccessKind.NONLINEAR
        if form.coeff == 0:
            return AccessKind.INVARIANT
        if abs(form.coeff) == 1:
            return AccessKind.UNIT
        return AccessKind.AFFINE

    @staticmethod
    def _truthy(value) -> bool:
        return bool(value)


def _walk_stmts(stmt: ast.Stmt):
    """Yield all statements under *stmt*, depth-first."""
    stack = [stmt]
    while stack:
        current = stack.pop()
        yield current
        for child in current.children():
            if isinstance(child, ast.Stmt):
                stack.append(child)


#: Type-keyed statement dispatch: ``stmt.__class__`` -> unbound method.
_STMT_DISPATCH = {
    ast.VarDecl: Executor._exec_decl,
    ast.Assign: Executor._exec_assign,
    ast.ExprStmt: Executor._exec_exprstmt,
    ast.Block: Executor._exec_block,
    ast.If: Executor._exec_if,
    ast.For: Executor._exec_for,
    ast.While: Executor._exec_while,
    ast.DoWhile: Executor._exec_do_while,
    ast.Return: Executor._exec_return,
    ast.Break: Executor._exec_break,
    ast.Continue: Executor._exec_continue,
    ast.PragmaStmt: Executor._exec_pragma_node,
    ast.OffloadBlock: Executor._exec_offload_block,
}

#: Type-keyed expression dispatch: ``expr.__class__`` -> unbound method.
_EVAL_DISPATCH = {
    ast.IntLit: Executor._eval_literal,
    ast.FloatLit: Executor._eval_literal,
    ast.StringLit: Executor._eval_literal,
    ast.Ident: Executor._eval_ident,
    ast.BinOp: Executor._eval_binop,
    ast.UnOp: Executor._eval_unop,
    ast.Subscript: Executor._eval_subscript,
    ast.Member: Executor._eval_member,
    ast.Call: Executor._eval_call,
    ast.Cond: Executor._eval_cond,
    ast.Cast: Executor._eval_cast,
    ast.SizeOf: Executor._eval_sizeof,
}


def run_program(
    source: Union[str, ast.Program],
    arrays: Optional[Dict[str, np.ndarray]] = None,
    scalars: Optional[Dict[str, object]] = None,
    machine: Optional[Machine] = None,
    entry: str = "main",
    engine: str = "auto",
) -> ExecutionResult:
    """Convenience wrapper: parse (if needed), execute, return the result."""
    executor = Executor(source, machine, engine=engine)
    return executor.run(entry=entry, arrays=arrays, scalars=scalars)
