"""The COMP optimization driver.

Decides, per program, which of the paper's optimizations apply and in
what order — the automation that produces Table II's applicability
matrix:

1. **Regularization** first (Section IV): loop splitting for
   irregular-prefix loops, array reordering for unguarded indirect or
   strided accesses, AoS-to-SoA for structure fields.  Regularization is
   an enabler: it can turn a non-streamable loop into a streamable one.
2. **Offload merging** for serial host loops containing multiple
   offloaded inner loops (Section III-C).
3. **Data streaming** (with double-buffering and thread reuse) for every
   remaining offloaded parallel loop that passes the legality check
   (Section III).
4. **Thread reuse** for any offloads still relaunched inside host loops.
5. **Shared-memory lowering** for programs with shared allocation sites
   (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.minic import ast_nodes as ast
from repro.transforms.aos_to_soa import convert_aos_to_soa, detect_aos_arrays
from repro.transforms.base import TransformReport
from repro.transforms.merge_offload import merge_offloads
from repro.transforms.regularize import reorder_arrays, split_loop
from repro.transforms.shared_memory import lower_shared_memory
from repro.transforms.streaming import StreamingOptions, apply_streaming
from repro.transforms.thread_reuse import apply_thread_reuse


@dataclass
class OptimizationPlan:
    """Which optimizations to attempt, plus their knobs."""

    streaming: bool = True
    merging: bool = True
    regularization: bool = True
    shared_memory: bool = True
    thread_reuse: bool = True
    streaming_options: StreamingOptions = field(default_factory=StreamingOptions)
    #: Whole-array transfer lengths for arrays whose extents cannot be
    #: derived from the loops (indirect accesses), used by offload merging.
    array_lengths: Dict[str, ast.Expr] = field(default_factory=dict)


@dataclass
class PipelineResult:
    """Reports from every attempted transform, in application order."""

    reports: List[TransformReport] = field(default_factory=list)
    #: Post-transform lint findings (see repro.analysis.validate).
    diagnostics: List[object] = field(default_factory=list)

    def applied(self) -> List[str]:
        """Names of the transforms that fired, in order."""
        return [r.name for r in self.reports if r.applied]

    def report(self, name: str) -> Optional[TransformReport]:
        """The report for one transform name, or None."""
        for r in self.reports:
            if r.name == name:
                return r
        return None

    def was_applied(self, name: str) -> bool:
        """True when the named transform fired."""
        report = self.report(name)
        return bool(report and report.applied)

    @property
    def stream_schedules(self) -> List[object]:
        """Resumable block schedules from every streamed loop, in order.

        One :class:`~repro.transforms.streaming.StreamSchedule` per loop
        the streaming transform rewrote — the facts checkpoint/restart
        needs (session name, block count, live buffers per block)
        without re-deriving them from the transformed AST.
        """
        return [s for r in self.reports for s in r.schedules]


class CompOptimizer:
    """Applies the COMP optimization pipeline to a program in place."""

    def __init__(self, plan: Optional[OptimizationPlan] = None):
        self.plan = plan or OptimizationPlan()

    def optimize(self, program: ast.Program) -> PipelineResult:
        """Apply the pipeline to *program* in place; returns reports."""
        plan = self.plan
        result = PipelineResult()
        bindings = plan.streaming_options.bindings

        # Harvest whole-array lengths from the existing clauses before any
        # transform rewrites them: regularization may drop an array from a
        # loop's clauses while merging still needs its extent.
        harvested = dict(plan.array_lengths)
        from repro.minic.visitor import clone, walk

        for node in walk(program):
            if isinstance(node, (ast.OffloadPragma, ast.OffloadTransferPragma)):
                for clause in node.clauses:
                    if clause.length is not None and clause.var not in harvested:
                        harvested[clause.var] = clone(clause.length)
        import dataclasses

        plan = dataclasses.replace(plan, array_lengths=harvested)

        if plan.regularization:
            if detect_aos_arrays(program):
                result.reports.append(convert_aos_to_soa(program))
            result.reports.append(split_loop(program, bindings=bindings))
            result.reports.append(reorder_arrays(program, bindings=bindings))

        if plan.merging:
            # Merge repeatedly until no parent loop qualifies (programs can
            # have several phases with inner offloads).
            while True:
                report = merge_offloads(
                    program, array_lengths=plan.array_lengths
                )
                result.reports.append(report)
                if not report.applied:
                    break

        if plan.streaming:
            streaming_report = apply_streaming(program, plan.streaming_options)
            result.reports.append(streaming_report)
            if streaming_report.applied:
                self._mark_pipelined_regularization(result)

        if plan.thread_reuse:
            result.reports.append(apply_thread_reuse(program))

        if plan.shared_memory:
            result.reports.append(lower_shared_memory(program))

        # Structural self-check: the generated pragma choreography must
        # lint clean; a transform bug shows up here before execution.
        from repro.analysis.validate import validate_program

        result.diagnostics = validate_program(program)
        # Transform provenance: two loops that print identically but went
        # through different pipelines must not share a generated kernel,
        # so the codegen cache keys on this stamp.
        program.comp_provenance = ",".join(result.applied())
        return result

    @staticmethod
    def _mark_pipelined_regularization(result: PipelineResult) -> None:
        """Overlap reorder's permutation loops with the streamed pipeline.

        Section IV: "the regularization of block i+2 can be done in
        parallel with the data transfer of block i+1 and the computation
        of block i.  The only extra overhead ... is the time taken to
        regularize the first data block."
        """
        reorder = result.report("regularization:reorder")
        if reorder is None or not reorder.applied:
            return
        for loop in getattr(reorder, "permute_loops", []):
            for pragma in loop.pragmas:
                if isinstance(pragma, ast.OmpParallelFor):
                    pragma.pipelined = True
