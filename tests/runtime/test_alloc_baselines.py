"""Tests for the rejected Section V-A allocation strategies."""

import pytest

from repro.errors import RuntimeFault
from repro.runtime.alloc_baselines import (
    MAX_CONTIGUOUS_BYTES,
    GrowCopyAllocator,
    PreallocAllocator,
)


class TestPrealloc:
    def test_bump_allocation(self):
        alloc = PreallocAllocator(reserve_bytes=1024)
        assert alloc.allocate(100) == 0
        assert alloc.allocate(100) == 100
        assert alloc.stats.allocations == 2

    def test_waste_is_reserved_minus_used(self):
        alloc = PreallocAllocator(reserve_bytes=1 << 20)
        alloc.allocate(1000)
        assert alloc.stats.waste == (1 << 20) - 1000

    def test_exhaustion(self):
        alloc = PreallocAllocator(reserve_bytes=128)
        alloc.allocate(100)
        with pytest.raises(RuntimeFault):
            alloc.allocate(100)

    def test_cannot_reserve_past_contiguous_limit(self):
        with pytest.raises(RuntimeFault):
            PreallocAllocator(reserve_bytes=MAX_CONTIGUOUS_BYTES + 1)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            PreallocAllocator().allocate(0)


class TestGrowCopy:
    def test_grows_by_doubling(self):
        alloc = GrowCopyAllocator(initial_bytes=64)
        alloc.allocate(60)
        alloc.allocate(60)  # forces growth to 128
        assert alloc.capacity == 128
        assert alloc.growths == [128]

    def test_growth_moves_live_data(self):
        alloc = GrowCopyAllocator(initial_bytes=64)
        alloc.allocate(60)
        alloc.allocate(60)
        assert alloc.stats.moved_bytes == 60

    def test_repeated_growth_accumulates_movement(self):
        alloc = GrowCopyAllocator(initial_bytes=16)
        total = 0
        for _ in range(20):
            alloc.allocate(16)
            total += 16
        # Doubling from 16 to >=320 moves the live set each time.
        assert alloc.stats.moved_bytes > total

    def test_contiguity_ceiling(self):
        alloc = GrowCopyAllocator(initial_bytes=MAX_CONTIGUOUS_BYTES // 2)
        alloc.allocate(MAX_CONTIGUOUS_BYTES // 2 - 8)
        alloc.allocate(MAX_CONTIGUOUS_BYTES // 2)  # grows to the ceiling
        with pytest.raises(RuntimeFault):
            alloc.allocate(MAX_CONTIGUOUS_BYTES // 2)

    def test_bad_initial_size(self):
        with pytest.raises(ValueError):
            GrowCopyAllocator(initial_bytes=0)
