"""Roofline-style compute timing for the host CPU and the MIC.

The executor interprets loop bodies and accumulates dynamic operation
counters; this module converts counters plus a device spec into seconds.
The model is a classic roofline: time is the max of the compute term
(flops over aggregate floating-point throughput, boosted by SIMD when the
loop is vectorizable) and the memory term (bytes over bandwidth, derated
by the locality factor when accesses are irregular).

A parallel loop with fewer iterations than threads cannot use every
thread; utilization below saturation follows ``(t/T) ** alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.hardware.cache import locality_factor
from repro.hardware.spec import CpuSpec, MicSpec


@dataclass
class OpCounters:
    """Dynamic operation counts accumulated by the interpreter."""

    flops: float = 0.0
    int_ops: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    irregular_accesses: float = 0.0
    calls: float = 0.0
    branches: float = 0.0

    def add(self, other: "OpCounters") -> None:
        """Accumulate another counter set into this one."""
        self.flops += other.flops
        self.int_ops += other.int_ops
        self.loads += other.loads
        self.stores += other.stores
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.irregular_accesses += other.irregular_accesses
        self.calls += other.calls
        self.branches += other.branches

    def copy(self) -> "OpCounters":
        """An independent copy of this counter set."""
        return OpCounters(
            flops=self.flops,
            int_ops=self.int_ops,
            loads=self.loads,
            stores=self.stores,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            irregular_accesses=self.irregular_accesses,
            calls=self.calls,
            branches=self.branches,
        )

    def as_dict(self) -> dict:
        """Counter values as a plain dict (for comparisons and reports)."""
        return {
            "flops": self.flops,
            "int_ops": self.int_ops,
            "loads": self.loads,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "irregular_accesses": self.irregular_accesses,
            "calls": self.calls,
            "branches": self.branches,
        }

    def scaled(self, factor: float) -> "OpCounters":
        """A copy with every count multiplied by *factor*."""
        return OpCounters(
            flops=self.flops * factor,
            int_ops=self.int_ops * factor,
            loads=self.loads * factor,
            stores=self.stores * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            irregular_accesses=self.irregular_accesses * factor,
            calls=self.calls * factor,
            branches=self.branches * factor,
        )

    @property
    def total_accesses(self) -> float:
        """Loads plus stores."""
        return self.loads + self.stores

    @property
    def total_bytes(self) -> float:
        """Bytes read plus bytes written."""
        return self.bytes_read + self.bytes_written

    @property
    def work_ops(self) -> float:
        """Arithmetic work: integer ops and branches cost half a flop slot."""
        return self.flops + 0.5 * self.int_ops + 0.5 * self.branches

    def irregular_fraction(self) -> float:
        """Share of accesses classified irregular, in [0, 1]."""
        total = self.total_accesses
        if total <= 0:
            return 0.0
        return min(1.0, self.irregular_accesses / total)


@dataclass(frozen=True)
class ResetSemantics:
    """Timing model of a full coprocessor reset.

    The MIC's failure mode of last resort is a watchdog reset: the card
    drops off the PCIe bus, every resident buffer, persistent kernel
    thread, and in-flight signal is lost, and the host must re-open the
    driver session before any further offload.  The recovery *cost* has
    three parts: the host-side watchdog latency to declare the device
    dead, a fixed driver/firmware re-initialization handshake, and a
    per-thread term for re-spawning the device worker pool (the paper's
    thread-reuse sessions must be rebuilt from scratch).
    """

    #: Host watchdog latency before the device is declared dead.  An
    #: order of magnitude above the kernel watchdog (cf.
    #: ``ResiliencePolicy.kernel_timeout``): a whole-device loss is only
    #: declared after per-operation recovery has already given up.
    detection_timeout: float = 0.100
    #: Fixed driver re-open + firmware boot handshake.
    reinit_base: float = 0.150
    #: Per-thread cost of re-spawning the device worker pool.
    reinit_per_thread: float = 2.0e-5

    def reinit_seconds(self, threads: int) -> float:
        """Driver + thread-pool re-initialization time for *threads*."""
        return self.reinit_base + self.reinit_per_thread * max(0, threads)

    def overhead(self, threads: int) -> float:
        """Total dead time of one reset, detection through re-init."""
        return self.detection_timeout + self.reinit_seconds(threads)


#: The paper machine's reset behaviour; shared default for every run.
RESET_SEMANTICS = ResetSemantics()


@dataclass(frozen=True)
class ProbeSemantics:
    """Timing and admission model for re-probing a quarantined device.

    After a survivable reset a fleet device is *quarantined*: it holds no
    state and receives no blocks until a re-admission probe (a small
    host-side echo offload through the re-opened driver session) succeeds.
    Probes are deterministic per ``(plan seed, device)`` — a seeded coin
    with :attr:`readmit_probability` models the card either coming back
    cleanly or still flaking under load.
    """

    #: Host time one probe costs (echo offload round trip).
    cost: float = 0.010
    #: Per-probe chance the quarantined card is re-admitted.
    readmit_probability: float = 0.5


#: Shared default probe behaviour for every fleet.
PROBE_SEMANTICS = ProbeSemantics()


@dataclass
class DeviceHealth:
    """Failure-history ledger for one fleet device.

    Tracks the consecutive-failure count that drives quarantine, the
    lifetime reset budget that drives permanent eviction, and the
    timestamps/ordinals the fleet scheduler needs to decide when a
    quarantined card may be probed again.
    """

    #: Resets this device has survived (lifetime, monotone).
    resets_survived: int = 0
    #: Consecutive failures since the last successful block.
    consecutive_failures: int = 0
    #: Current state: ``"healthy"``, ``"quarantined"``, or ``"evicted"``.
    state: str = "healthy"
    #: Fleet-wide block-assignment ordinal at which the device entered
    #: quarantine; probes are deferred until at least one newer block has
    #: been assigned, so a lost block's own re-assignment can never
    #: immediately re-admit the card that just dropped it.
    quarantined_at: Optional[int] = None
    #: Re-admission probes sent while quarantined.
    probes_sent: int = 0

    @property
    def healthy(self) -> bool:
        """True while the device is accepting blocks."""
        return self.state == "healthy"

    @property
    def evicted(self) -> bool:
        """True once the device is permanently out of the fleet."""
        return self.state == "evicted"


class ComputeDevice:
    """Timing model for one processor (host CPU or MIC)."""

    def __init__(self, spec: Union[CpuSpec, MicSpec]):
        self.spec = spec

    def effective_threads(self, parallel_iterations: float) -> float:
        """Threads usable by a loop with the given trip count."""
        spec = self.spec
        threads = float(spec.threads_used)
        if parallel_iterations <= 0:
            return 1.0
        if parallel_iterations >= threads:
            return threads
        alpha = getattr(spec, "scaling_alpha", 1.0)
        return max(1.0, threads * (parallel_iterations / threads) ** alpha)

    def simd_factor(self, vectorizable: bool) -> float:
        """Speedup multiplier the vector unit contributes."""
        if not vectorizable:
            return 1.0
        return 1.0 + (self.spec.simd_lanes - 1) * self.spec.simd_efficiency

    def _roofline_terms(
        self,
        counters: OpCounters,
        parallel_iterations: float,
        vectorizable: bool,
        serial: bool,
    ):
        """The roofline's (threads, compute term, memory term) triple."""
        spec = self.spec
        threads = 1.0 if serial else self.effective_threads(parallel_iterations)
        flop_throughput = (
            threads * spec.thread_flops * self.simd_factor(vectorizable)
        )
        t_compute = counters.work_ops / flop_throughput if flop_throughput else 0.0

        locality = locality_factor(counters.irregular_fraction())
        bandwidth = spec.mem_bandwidth * locality
        if not serial and threads < spec.threads_used:
            # A handful of threads cannot saturate the memory system.
            bandwidth *= max(threads / spec.threads_used, 0.05)
        t_memory = counters.total_bytes / bandwidth if bandwidth else 0.0
        return threads, t_compute, t_memory

    def compute_time(
        self,
        counters: OpCounters,
        parallel_iterations: float = 1.0,
        vectorizable: bool = False,
        serial: bool = False,
    ) -> float:
        """Seconds to execute the counted work on this device.

        *parallel_iterations* is the trip count over which the work may be
        split across threads (1 for serial code).  *vectorizable* applies
        the SIMD boost to the compute term — memory-bound loops gain
        little from SIMD, exactly the roofline behaviour the paper relies
        on when it says vectorization matters after regularization removes
        the bandwidth bottleneck.
        """
        _, t_compute, t_memory = self._roofline_terms(
            counters, parallel_iterations, vectorizable, serial
        )
        # Out-of-order cores (and vectorized loops, via wide loads plus
        # software prefetch) overlap memory stalls with computation; scalar
        # loops on in-order cores serialize them.  This is why the paper's
        # regularization win comes from *enabling vectorization*: the
        # vectorized half escapes the stall-serialised regime.
        if getattr(self.spec, "in_order", False) and not vectorizable:
            return t_compute + t_memory
        return max(t_compute, t_memory)

    def explain(
        self,
        counters: OpCounters,
        parallel_iterations: float = 1.0,
        vectorizable: bool = False,
        serial: bool = False,
    ) -> dict:
        """The roofline verdict for the counted work, as span attributes.

        Observability hook: shows *why* a loop costs what it costs —
        which side of the roofline bound it sits on, how many threads it
        used, and whether SIMD applied.  Uses the same arithmetic as
        :meth:`compute_time`, so the reported seconds match the charge.
        """
        threads, t_compute, t_memory = self._roofline_terms(
            counters, parallel_iterations, vectorizable, serial
        )
        stalls_serialize = (
            getattr(self.spec, "in_order", False) and not vectorizable
        )
        seconds = (
            t_compute + t_memory if stalls_serialize else max(t_compute, t_memory)
        )
        if stalls_serialize:
            bound = "stall-serialized"
        else:
            bound = "memory" if t_memory > t_compute else "compute"
        return {
            "seconds": seconds,
            "compute_seconds": t_compute,
            "memory_seconds": t_memory,
            "bound": bound,
            "threads": threads,
            "vectorized": vectorizable,
        }

    def replay_time(self, charges, scale: float = 1.0) -> float:
        """Seconds to re-execute recorded timing charges on this device.

        *charges* is the ``(kind, counters, trip, vectorizable)`` list a
        :class:`~repro.runtime.executor._TimedContext` records while the
        device interprets an offload body; the resilience layer replays it
        here to price host-fallback execution without re-interpreting.
        """
        total = 0.0
        for kind, counters, trip, vectorizable in charges:
            if kind == "serial":
                total += self.compute_time(counters.scaled(scale), serial=True)
            else:
                total += self.compute_time(
                    counters.scaled(scale),
                    parallel_iterations=trip * scale,
                    vectorizable=vectorizable,
                )
        return total
