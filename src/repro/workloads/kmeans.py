"""kmeans (Phoenix): iterative clustering.

Shape: the assignment step — a parallel loop over points computing the
nearest of ``nclusters`` centroids — is offloaded once per clustering
iteration; the (cheap) centroid update runs on the host.  The point
coordinates are loaded with hand-unrolled affine indexes
(``points[dim*i + 0..3]``), the form the paper's streaming legality check
accepts, so the point array streams; the centroid array is loop-invariant
and stays resident on the device.  The naive port re-transfers the point
set and relaunches the kernel every clustering iteration — streaming
overlaps those transfers and thread reuse removes the repeated launches.
Table II: data streaming applies (1.95x).
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import OptimizationPlan
from repro.transforms.streaming import StreamingOptions
from repro.workloads.base import MiniCWorkload, Table2Row, input_rng

EXEC_POINTS = 768
PAPER_POINTS = 100_000  # "100 clusters, 10^5 points"
DIM = 4
CLUSTERS = 12
ITERS = 4

SOURCE = """
void main() {
    for (int it = 0; it < iters; it++) {
#pragma omp parallel for
        for (int i = 0; i < npoints; i++) {
            float p0 = points[4 * i];
            float p1 = points[4 * i + 1];
            float p2 = points[4 * i + 2];
            float p3 = points[4 * i + 3];
            float best = 1.0e30;
            int bestc = 0;
            for (int c = 0; c < nclusters; c++) {
                float d0 = p0 - centroids[4 * c];
                float d1 = p1 - centroids[4 * c + 1];
                float d2 = p2 - centroids[4 * c + 2];
                float d3 = p3 - centroids[4 * c + 3];
                float dist = d0 * d0 + d1 * d1 + d2 * d2 + d3 * d3;
                if (dist < best) {
                    best = dist;
                    bestc = c;
                }
            }
            membership[i] = bestc;
        }
        for (int c = 0; c < nclusters; c++) {
            for (int d = 0; d < dim; d++) {
                centroids[dim * c + d] = centroids[dim * c + d] * 0.5
                    + seeds[dim * c + d] * 0.5;
            }
        }
    }
}
"""


def make_arrays(seed=None):
    """Build the k-means clustering benchmark's executed-scale input arrays."""
    rng = input_rng(seed, 77)
    return {
        "points": rng.random(EXEC_POINTS * DIM).astype(np.float32),
        "centroids": rng.random(CLUSTERS * DIM).astype(np.float32),
        "seeds": rng.random(CLUSTERS * DIM).astype(np.float32),
        "membership": np.zeros(EXEC_POINTS, dtype=np.int32),
    }


def make() -> MiniCWorkload:
    """Construct the kmeans workload instance."""
    return MiniCWorkload(
        name="kmeans",
        source=SOURCE,
        table2=Table2Row(
            suite="Phoenix",
            paper_input="100 clusters, 10^5 points",
            kloc=0.221,
            streaming=1.95,
        ),
        make_arrays=make_arrays,
        scalars={
            "npoints": EXEC_POINTS,
            "nclusters": CLUSTERS,
            "dim": DIM,
            "iters": ITERS,
        },
        sim_scale=PAPER_POINTS / EXEC_POINTS,
        output_arrays=["membership", "centroids"],
        array_length_hints={
            "centroids": "nclusters * dim",
        },
        plan=OptimizationPlan(
            streaming_options=StreamingOptions(num_blocks=10)
        ),
        description="k-means assignment step offloaded per clustering iteration",
    )
