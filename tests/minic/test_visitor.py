"""Tests for visitor / transformer infrastructure and builder templates."""

from repro.minic import ast_nodes as ast
from repro.minic import builder
from repro.minic.parser import parse, parse_expr
from repro.minic.printer import to_source
from repro.minic.visitor import (
    NodeTransformer,
    NodeVisitor,
    clone,
    find_loops,
    find_offload_loops,
    get_pragma,
    substitute,
    walk,
)

PROGRAM = """
void main() {
#pragma offload target(mic:0) in(A : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i];
    }
    for (int j = 0; j < m; j++) {
        C[j] = 0.0;
    }
}
"""


class TestWalk:
    def test_walk_visits_all_identifiers(self):
        prog = parse(PROGRAM)
        names = {n.name for n in walk(prog) if isinstance(n, ast.Ident)}
        assert {"A", "B", "C", "i", "j", "n", "m"} <= names

    def test_walk_preorder_root_first(self):
        prog = parse(PROGRAM)
        assert next(iter(walk(prog))) is prog

    def test_find_loops(self):
        prog = parse(PROGRAM)
        assert len(find_loops(prog)) == 2

    def test_find_offload_loops(self):
        prog = parse(PROGRAM)
        loops = find_offload_loops(prog)
        assert len(loops) == 1
        assert get_pragma(loops[0], ast.OffloadPragma) is not None

    def test_get_pragma_missing(self):
        prog = parse(PROGRAM)
        other = find_loops(prog)[1]
        assert get_pragma(other, ast.OffloadPragma) is None


class TestVisitor:
    def test_dispatch_to_named_method(self):
        seen = []

        class CollectCalls(NodeVisitor):
            def visit_Subscript(self, node):
                seen.append(node.base.name)
                self.generic_visit(node)

        CollectCalls().visit(parse(PROGRAM))
        assert sorted(seen) == ["A", "B", "C"]

    def test_generic_visit_recurses(self):
        count = [0]

        class CountIdents(NodeVisitor):
            def visit_Ident(self, node):
                count[0] += 1

        CountIdents().visit(parse_expr("a + b * c"))
        assert count[0] == 3


class TestTransformer:
    def test_replace_node(self):
        class RenameA(NodeTransformer):
            def visit_Ident(self, node):
                return ast.Ident("A2") if node.name == "A" else node

        prog = RenameA().visit(parse(PROGRAM))
        assert "A2[i]" in to_source(prog)

    def test_delete_statement(self):
        class DropSecondLoop(NodeTransformer):
            def visit_For(self, node):
                self.generic_visit(node)
                if not node.pragmas:
                    return None
                return node

        prog = DropSecondLoop().visit(parse(PROGRAM))
        assert len(find_loops(prog)) == 1

    def test_splice_statement_list(self):
        class DuplicateAssigns(NodeTransformer):
            def visit_Assign(self, node):
                return [node, clone(node)]

        prog = DuplicateAssigns().visit(parse("void main() { x = 1; }"))
        assert len(prog.function("main").body.stmts) == 2


class TestSubstitute:
    def test_rename(self):
        expr = substitute(parse_expr("A[i]"), {"A": "A1"})
        assert to_source(expr) == "A1[i]"

    def test_replace_with_expression(self):
        expr = substitute(parse_expr("A[i]"), {"i": parse_expr("i + k * b")})
        assert to_source(expr) == "A[i + k * b]"

    def test_original_untouched(self):
        original = parse_expr("A[i]")
        substitute(original, {"A": "Z"})
        assert to_source(original) == "A[i]"


class TestBuilder:
    def test_stmt_template(self):
        stmt = builder.stmt("x = N;", N=10)
        assert stmt == ast.Assign(ast.Ident("x"), ast.IntLit(10))

    def test_stmts_template(self):
        result = builder.stmts("a = 1; b = 2;")
        assert len(result) == 2

    def test_expr_template_with_expr_sub(self):
        expr = builder.expr("BASE + off", BASE=parse_expr("k * bsize"))
        assert to_source(expr) == "k * bsize + off"

    def test_float_substitution(self):
        stmt = builder.stmt("x = V;", V=2.5)
        assert stmt.value == ast.FloatLit(2.5)

    def test_pragma_template(self):
        (stmt,) = builder.stmts(
            "#pragma offload_wait target(mic:0) wait(T)\nx = 1;", T="tag0"
        )[:1]
        assert isinstance(stmt, ast.PragmaStmt)
        assert stmt.pragma.wait == ast.Ident("tag0")
