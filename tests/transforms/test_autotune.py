"""Tests for profile-guided block-count tuning."""

import numpy as np
import pytest

from repro.runtime.executor import Machine, run_program
from repro.transforms.autotune import profile_offload_costs, tune_streaming

SOURCE = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = sqrt(A[i]) * 2.0 + log(A[i] + 1.0);
    }
}
"""

N = 2048
SCALE = 4.0e6 / N


def arrays():
    rng = np.random.default_rng(11)
    return {
        "A": (rng.random(N) + 0.5).astype(np.float32),
        "B": np.zeros(N, dtype=np.float32),
    }


class TestProfile:
    def test_profile_measures_positive_costs(self):
        profile = profile_offload_costs(
            SOURCE, arrays=arrays(), scalars={"n": N},
            machine=Machine(scale=SCALE),
        )
        assert profile.measured_transfer > 0
        assert profile.measured_compute > 0
        assert profile.profile_time > 0

    def test_tuned_blocks_in_reasonable_range(self):
        profile = profile_offload_costs(
            SOURCE, arrays=arrays(), scalars={"n": N},
            machine=Machine(scale=SCALE),
        )
        assert 2 <= profile.num_blocks <= 256

    def test_bigger_transfer_means_more_blocks(self):
        small = profile_offload_costs(
            SOURCE, arrays=arrays(), scalars={"n": N},
            machine=Machine(scale=SCALE),
        )
        big = profile_offload_costs(
            SOURCE, arrays=arrays(), scalars={"n": N},
            machine=Machine(scale=SCALE * 16),
        )
        assert big.num_blocks >= small.num_blocks


class TestTuneStreaming:
    def test_tuned_program_correct_and_fast(self):
        program, profile = tune_streaming(
            SOURCE, arrays, {"n": N}, scale=SCALE
        )
        baseline = run_program(
            SOURCE, arrays=arrays(), scalars={"n": N},
            machine=Machine(scale=SCALE),
        )
        tuned = run_program(
            program, arrays=arrays(), scalars={"n": N},
            machine=Machine(scale=SCALE),
        )
        assert np.array_equal(baseline.array("B"), tuned.array("B"))
        assert tuned.stats.total_time < baseline.stats.total_time

    def test_tuned_close_to_swept_optimum(self):
        """The model's N* performs within 10% of a brute-force sweep."""
        import dataclasses

        from repro.minic.parser import parse
        from repro.transforms.pipeline import CompOptimizer, OptimizationPlan
        from repro.transforms.streaming import StreamingOptions

        program, profile = tune_streaming(SOURCE, arrays, {"n": N}, scale=SCALE)
        tuned_time = run_program(
            program, arrays=arrays(), scalars={"n": N},
            machine=Machine(scale=SCALE),
        ).stats.total_time

        best = float("inf")
        for n_blocks in (4, 8, 16, 32, 64, 128):
            candidate = parse(SOURCE)
            CompOptimizer(
                OptimizationPlan(
                    streaming_options=StreamingOptions(num_blocks=n_blocks)
                )
            ).optimize(candidate)
            t = run_program(
                candidate, arrays=arrays(), scalars={"n": N},
                machine=Machine(scale=SCALE),
            ).stats.total_time
            best = min(best, t)
        assert tuned_time <= best * 1.10
