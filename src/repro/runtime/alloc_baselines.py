"""The two buffer-allocation strategies Section V-A rejects.

The paper argues for segmented arenas by elimination:

* "A straightforward way to allocate buffer is preallocating a very
  large buffer at the beginning.  However, this may waste memory on MIC,
  when the data structure is small."  (:class:`PreallocAllocator`)
* "Another approach is to allocate a small buffer at first.  Every time
  the buffer is full, we create a larger buffer and move the data into
  the new one.  However, in this case, the buffer size is bounded by the
  largest continuous memory chunk OS can allocate ... In addition, this
  method may cause significant overhead for moving data."
  (:class:`GrowCopyAllocator`)

Implementing both makes the design argument quantitative: the ablation
benchmark compares reserved-vs-used memory, bytes moved, and the
contiguity ceiling against the segmented arena.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import RuntimeFault

#: The "largest continuous memory chunk the OS can allocate" on the
#: coprocessor — the paper notes it is "much smaller than the 8 GB memory
#: size on MIC" while "many applications use data sets larger than 2 GB".
MAX_CONTIGUOUS_BYTES = 2 << 30


@dataclass
class AllocStats:
    allocations: int = 0
    reserved_bytes: int = 0
    used_bytes: int = 0
    moved_bytes: int = 0  # grow-and-copy data movement

    @property
    def waste(self) -> int:
        """Reserved bytes never used by an allocation."""
        return self.reserved_bytes - self.used_bytes


class PreallocAllocator:
    """One huge buffer reserved up front."""

    def __init__(self, reserve_bytes: int = MAX_CONTIGUOUS_BYTES):
        if reserve_bytes > MAX_CONTIGUOUS_BYTES:
            raise RuntimeFault(
                f"cannot reserve {reserve_bytes} bytes contiguously "
                f"(OS limit {MAX_CONTIGUOUS_BYTES})"
            )
        self.reserve_bytes = reserve_bytes
        self.stats = AllocStats(reserved_bytes=reserve_bytes)

    def allocate(self, size: int) -> int:
        """Bump-allocate *size* bytes from the reserved buffer."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if self.stats.used_bytes + size > self.reserve_bytes:
            raise RuntimeFault(
                f"preallocated buffer exhausted at "
                f"{self.stats.used_bytes} of {self.reserve_bytes} bytes"
            )
        addr = self.stats.used_bytes
        self.stats.used_bytes += size
        self.stats.allocations += 1
        return addr


class GrowCopyAllocator:
    """Start small; double and copy whenever full.

    Every growth moves all live data into the new buffer, and the buffer
    can never exceed the OS's contiguous-allocation ceiling.
    """

    def __init__(self, initial_bytes: int = 1 << 20):
        if initial_bytes <= 0:
            raise ValueError("initial size must be positive")
        self.capacity = initial_bytes
        self.stats = AllocStats(reserved_bytes=initial_bytes)
        self.growths: List[int] = []

    def allocate(self, size: int) -> int:
        """Allocate *size* bytes, doubling (and moving) when full."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        while self.stats.used_bytes + size > self.capacity:
            new_capacity = self.capacity * 2
            if new_capacity > MAX_CONTIGUOUS_BYTES:
                raise RuntimeFault(
                    f"grow-and-copy cannot exceed the contiguous limit "
                    f"({MAX_CONTIGUOUS_BYTES} bytes); data set too large"
                )
            # Moving the live data is the strategy's hidden cost.
            self.stats.moved_bytes += self.stats.used_bytes
            self.capacity = new_capacity
            self.growths.append(new_capacity)
        self.stats.reserved_bytes = self.capacity
        addr = self.stats.used_bytes
        self.stats.used_bytes += size
        self.stats.allocations += 1
        return addr
