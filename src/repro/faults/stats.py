"""Fault and recovery accounting for one run.

A :class:`FaultStats` instance lives on the
:class:`~repro.runtime.executor.Machine` and is updated by the COI
runtime (retries, backoff, degraded transfers), the memory manager
(injected OOMs), and the executor (demotions, host fallbacks).  It flows
through :class:`~repro.workloads.base.WorkloadRun` into the harness and
the ``repro faults`` campaign summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.faults.plan import Fault, SILENT_KINDS


@dataclass
class FaultStats:
    """Counters for injected faults and the recovery work they caused."""

    #: Injected fault counts keyed ``"site:kind"`` (e.g. ``"h2d:corrupt"``).
    injected: Dict[str, int] = field(default_factory=dict)
    #: Operations re-issued after a failed attempt.
    retries: int = 0
    #: Host time spent in exponential backoff between attempts.
    backoff_seconds: float = 0.0
    #: Simulated time occupied by failed attempts and detection timeouts.
    recovery_seconds: float = 0.0
    #: Faults detected by a timeout (stalled DMA, hung kernel, lost signal).
    timeouts: int = 0
    #: Block-granular (sectioned) transfers replayed after a fault —
    #: double-buffered streaming re-sends only the failed block.
    blocks_replayed: int = 0
    #: Transfers that exhausted their retry budget and were pushed
    #: through at the policy's degraded link rate.
    degraded_transfers: int = 0
    #: Un-streamed offloads demoted to streamed form after a device OOM.
    oom_demotions: int = 0
    #: Offloads abandoned to host-CPU execution.
    host_fallbacks: int = 0
    #: Host time charged for fallback execution (penalty + replay).
    fallback_seconds: float = 0.0
    #: Completion signals that were dropped and re-polled after a timeout.
    signals_lost: int = 0
    #: Full device resets survived through checkpoint/restart.
    device_resets: int = 0
    #: Checkpoint commits (every ``checkpoint_interval`` completed blocks).
    checkpoints_committed: int = 0
    #: Host time charged for checkpoint commits.
    checkpoint_seconds: float = 0.0
    #: Live device blocks re-uploaded while restoring after a reset —
    #: only state not covered by a checkpoint needs the DMA.
    blocks_reuploaded: int = 0
    #: Blocks re-executed after a reset because they completed since the
    #: last checkpoint commit (the interval's rework cost).
    blocks_recomputed: int = 0
    #: Fleet devices permanently evicted after exhausting their reset
    #: budget (multi-device runs only).
    device_evictions: int = 0
    #: Times a fleet device was quarantined after a survivable reset.
    quarantines: int = 0
    #: Seeded re-admission probes sent to quarantined devices.
    readmission_probes: int = 0
    #: Quarantined devices re-admitted to the healthy pool.
    readmissions: int = 0
    #: Per-site histogram of recovery actions taken, keyed
    #: ``{site: {action: count}}`` (actions: ``retry``, ``degraded``,
    #: ``repoll``, ``demotion``, ``host_fallback``, ``reset_survived``,
    #: ``retransfer``, ``reexecute``, ``checkpoint_restore``).
    recovery_actions: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Checksum verification passes performed by the integrity layer.
    verifications: int = 0
    #: Simulated time charged for checksum verification.
    verify_seconds: float = 0.0
    #: Background scrub passes over resident device buffers.
    scrubs: int = 0
    #: Simulated time charged for scrub passes.
    scrub_seconds: float = 0.0
    #: Windows re-sent over PCIe after a detected silent corruption.
    silent_retransfers: int = 0
    #: Kernel re-executions after a detected silent output corruption.
    kernel_reverifies: int = 0
    #: Silent-corruption coverage matrix, keyed
    #: ``{site: {"injected": n, "detected": n, "corrected": n,
    #: "escaped": n}}``.  Invariant at end of run:
    #: ``injected == detected + escaped`` and ``corrected == detected``
    #: per site (the integrity layer never detects without repairing).
    coverage: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record_injected(self, fault: Fault) -> None:
        """Count one injected fault.

        Fleet draws carry the device index and are keyed
        ``"devK:site:kind"`` so the histogram shows which card failed;
        the coverage matrix stays keyed by plain site (its invariants
        are site-level, summed over the fleet).
        """
        key = f"{fault.site}:{fault.kind}"
        if fault.device is not None:
            key = f"dev{fault.device}:{key}"
        self.injected[key] = self.injected.get(key, 0) + 1
        if fault.kind in SILENT_KINDS.get(fault.site, ()):
            self._coverage_cell(fault.site)["injected"] += 1

    def _coverage_cell(self, site: str) -> Dict[str, int]:
        """The coverage-matrix row for *site*, created on first touch."""
        return self.coverage.setdefault(
            site, {"injected": 0, "detected": 0, "corrected": 0, "escaped": 0}
        )

    def record_detected(self, site: str) -> None:
        """Count one detected-and-corrected silent corruption at *site*."""
        cell = self._coverage_cell(site)
        cell["detected"] += 1
        cell["corrected"] += 1

    def record_escaped(self, site: str) -> None:
        """Count one silent corruption that reached host output at *site*."""
        self._coverage_cell(site)["escaped"] += 1

    def record_action(self, site: str, action: str) -> None:
        """Count one recovery action taken at *site*."""
        per_site = self.recovery_actions.setdefault(site, {})
        per_site[action] = per_site.get(action, 0) + 1

    @property
    def total_injected(self) -> int:
        """All faults injected into the run."""
        return sum(self.injected.values())

    @property
    def silent_injected(self) -> int:
        """Silent corruptions injected (the coverage-matrix total)."""
        return sum(cell["injected"] for cell in self.coverage.values())

    @property
    def silent_detected(self) -> int:
        """Silent corruptions detected by checksum verification."""
        return sum(cell["detected"] for cell in self.coverage.values())

    @property
    def sdc_escapes(self) -> int:
        """Silent corruptions that reached host output undetected."""
        return sum(cell["escaped"] for cell in self.coverage.values())

    def add(self, other: "FaultStats") -> None:
        """Accumulate another run's stats (campaign aggregation)."""
        for key, count in other.injected.items():
            self.injected[key] = self.injected.get(key, 0) + count
        self.retries += other.retries
        self.backoff_seconds += other.backoff_seconds
        self.recovery_seconds += other.recovery_seconds
        self.timeouts += other.timeouts
        self.blocks_replayed += other.blocks_replayed
        self.degraded_transfers += other.degraded_transfers
        self.oom_demotions += other.oom_demotions
        self.host_fallbacks += other.host_fallbacks
        self.fallback_seconds += other.fallback_seconds
        self.signals_lost += other.signals_lost
        self.device_resets += other.device_resets
        self.checkpoints_committed += other.checkpoints_committed
        self.checkpoint_seconds += other.checkpoint_seconds
        self.blocks_reuploaded += other.blocks_reuploaded
        self.blocks_recomputed += other.blocks_recomputed
        self.device_evictions += other.device_evictions
        self.quarantines += other.quarantines
        self.readmission_probes += other.readmission_probes
        self.readmissions += other.readmissions
        for site, actions in other.recovery_actions.items():
            per_site = self.recovery_actions.setdefault(site, {})
            for action, count in actions.items():
                per_site[action] = per_site.get(action, 0) + count
        self.verifications += other.verifications
        self.verify_seconds += other.verify_seconds
        self.scrubs += other.scrubs
        self.scrub_seconds += other.scrub_seconds
        self.silent_retransfers += other.silent_retransfers
        self.kernel_reverifies += other.kernel_reverifies
        for site, cell in other.coverage.items():
            mine = self._coverage_cell(site)
            for column, count in cell.items():
                mine[column] = mine.get(column, 0) + count

    @classmethod
    def merge(cls, parts: Iterable["FaultStats"]) -> "FaultStats":
        """Fold *parts* into a fresh instance.

        Every field is a sum or a keyed sum of counts, so the fold is
        associative and commutative: a campaign collector can merge
        per-worker partial totals in any grouping and get byte-identical
        summaries to a sequential pass (asserted in
        ``tests/integration/test_campaign_jobs.py``).
        """
        total = cls()
        for part in parts:
            total.add(part)
        return total

    def as_dict(self) -> dict:
        """A plain-dict view (for comparisons, JSON summaries, reports)."""
        return {
            "injected": dict(sorted(self.injected.items())),
            "total_injected": self.total_injected,
            "retries": self.retries,
            "backoff_seconds": self.backoff_seconds,
            "recovery_seconds": self.recovery_seconds,
            "timeouts": self.timeouts,
            "blocks_replayed": self.blocks_replayed,
            "degraded_transfers": self.degraded_transfers,
            "oom_demotions": self.oom_demotions,
            "host_fallbacks": self.host_fallbacks,
            "fallback_seconds": self.fallback_seconds,
            "signals_lost": self.signals_lost,
            "device_resets": self.device_resets,
            "checkpoints_committed": self.checkpoints_committed,
            "checkpoint_seconds": self.checkpoint_seconds,
            "blocks_reuploaded": self.blocks_reuploaded,
            "blocks_recomputed": self.blocks_recomputed,
            "device_evictions": self.device_evictions,
            "quarantines": self.quarantines,
            "readmission_probes": self.readmission_probes,
            "readmissions": self.readmissions,
            "recovery_actions": {
                site: dict(sorted(actions.items()))
                for site, actions in sorted(self.recovery_actions.items())
            },
            "verifications": self.verifications,
            "verify_seconds": self.verify_seconds,
            "scrubs": self.scrubs,
            "scrub_seconds": self.scrub_seconds,
            "silent_retransfers": self.silent_retransfers,
            "kernel_reverifies": self.kernel_reverifies,
            "silent_injected": self.silent_injected,
            "silent_detected": self.silent_detected,
            "coverage": {
                site: dict(sorted(cell.items()))
                for site, cell in sorted(self.coverage.items())
            },
            "sdc_escapes": self.sdc_escapes,
        }
