"""Fault plans: deterministic, seed-driven schedules of injected faults.

A plan is consulted once per *fault site operation* — each host-to-device
DMA, device-to-host DMA, kernel launch, device allocation, signal wait,
and offload entry (the ``device`` site, whose only kind is a full
``reset``) asks :meth:`FaultPlan.draw` whether this particular operation
fails.  Operations are numbered per site in issue order, which the
simulator guarantees is deterministic, and every site draws from its own
seed-derived random stream, so a plan built from the same seed always
injects the same faults at the same places — regardless of which other
sites are consulted in between: same seed ⇒ identical
:class:`~repro.faults.stats.FaultStats` and identical outputs.

Two scheduling modes compose:

* **seeded** — every operation draws against a per-site probability from
  a ``numpy`` generator;
* **scripted** — explicit :class:`FaultSpec` entries pin a fault to the
  n-th operation of a site, for targeted tests ("the third h2d transfer
  is corrupted").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

#: Every place the runtime consults the plan.
FAULT_SITES = ("h2d", "d2h", "kernel", "alloc", "signal", "device")

#: Fault kinds available at each site.
SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    "h2d": ("corrupt", "stall"),
    "d2h": ("corrupt", "stall"),
    "kernel": ("crash", "hang"),
    "alloc": ("oom",),
    "signal": ("lost",),
    "device": ("reset",),
}

#: Default per-operation fault probability of a seeded plan.  Rates are
#: deliberately high for a simulator — a campaign of a few scenarios
#: should exercise every recovery path, not model a real PCIe BER.
#: Device resets are opt-in (rate 0): surviving one requires the
#: checkpoint/restart machinery to be enabled on the policy, so a plan
#: never schedules resets unless the campaign asked for them.
DEFAULT_RATES: Dict[str, float] = {
    "h2d": 0.02,
    "d2h": 0.02,
    "kernel": 0.01,
    "alloc": 0.005,
    "signal": 0.01,
    "device": 0.0,
}


@dataclass(frozen=True)
class Fault:
    """One injected fault, as handed to the runtime."""

    site: str
    kind: str
    #: Fraction of the nominal operation duration wasted before the
    #: failure is detected (used by stall/crash kinds).
    severity: float = 0.5
    #: Per-site operation ordinal the fault landed on.
    index: int = 0


@dataclass(frozen=True)
class FaultSpec:
    """A scripted fault: the *index*-th operation at *site* fails."""

    site: str
    index: int
    kind: Optional[str] = None
    severity: float = 0.5

    def __post_init__(self) -> None:
        if self.site not in SITE_KINDS:
            raise ValueError(
                f"unknown fault site {self.site!r}; know {sorted(SITE_KINDS)}"
            )
        if self.index < 0:
            raise ValueError(
                f"fault index must be >= 0, got {self.index} "
                f"(operations are numbered per site from 0)"
            )
        if not 0.0 < self.severity <= 1.0:
            raise ValueError(
                f"severity must be in (0, 1], got {self.severity} "
                f"(the fraction of the operation wasted before detection)"
            )
        kind = self.kind
        if kind is not None and kind not in SITE_KINDS[self.site]:
            raise ValueError(
                f"site {self.site!r} cannot raise {kind!r}; "
                f"know {SITE_KINDS[self.site]}"
            )


class FaultPlan:
    """A deterministic schedule of faults for one run.

    *seed* drives the probabilistic schedule (any value accepted by
    :func:`numpy.random.default_rng`, so tuples of ints work for derived
    streams).  *rates* overrides :data:`DEFAULT_RATES` per site; passing
    only *scripted* specs (no seed) yields a plan that injects exactly
    those faults and nothing else.  *max_faults* caps the total number of
    injected faults, bounding worst-case recovery time.
    """

    def __init__(
        self,
        seed=None,
        rates: Optional[Dict[str, float]] = None,
        scripted: Iterable[FaultSpec] = (),
        max_faults: Optional[int] = None,
    ):
        if rates is None:
            rates = dict(DEFAULT_RATES) if seed is not None else {}
        unknown = set(rates) - set(SITE_KINDS)
        if unknown:
            raise ValueError(f"unknown fault sites in rates: {sorted(unknown)}")
        self.seed = seed
        self.rates = dict(rates)
        self.max_faults = max_faults
        self._scripted: Dict[Tuple[str, int], FaultSpec] = {}
        for spec in scripted:
            self._scripted[(spec.site, spec.index)] = spec
        self._rngs: Dict[str, np.random.Generator] = {}
        self._counters: Dict[str, int] = {}
        self._emitted = 0

    def _site_rng(self, site: str) -> np.random.Generator:
        """The independent random stream for *site*.

        Each site derives its own generator from ``(seed, site index)``,
        so the draws a site sees depend only on how many operations *it*
        has issued — never on which other sites were consulted in
        between.  Adding a new fault site (or instrumenting a new code
        path) therefore cannot perturb the schedules of existing sites.
        """
        rng = self._rngs.get(site)
        if rng is None:
            seed = 0 if self.seed is None else self.seed
            if isinstance(seed, (tuple, list)):
                entropy = tuple(seed) + (FAULT_SITES.index(site),)
            else:
                entropy = (seed, FAULT_SITES.index(site))
            rng = np.random.default_rng(entropy)
            self._rngs[site] = rng
        return rng

    # -- drawing ---------------------------------------------------------------

    def draw(self, site: str) -> Optional[Fault]:
        """The fault (if any) hitting the next operation at *site*."""
        if site not in SITE_KINDS:
            raise ValueError(
                f"unknown fault site {site!r}; know {sorted(SITE_KINDS)}"
            )
        index = self._counters.get(site, 0)
        self._counters[site] = index + 1
        spec = self._scripted.get((site, index))
        if spec is not None:
            self._emitted += 1
            return Fault(
                site=site,
                kind=spec.kind or SITE_KINDS[site][0],
                severity=spec.severity,
                index=index,
            )
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return None
        if self.max_faults is not None and self._emitted >= self.max_faults:
            return None
        rng = self._site_rng(site)
        if float(rng.random()) >= rate:
            return None
        kinds = SITE_KINDS[site]
        kind = kinds[int(rng.integers(len(kinds)))]
        # Keep severity strictly inside (0, 1): a fault always wastes
        # *some* time, and never more than the whole operation.
        severity = 0.1 + 0.8 * float(rng.random())
        self._emitted += 1
        return Fault(site=site, kind=kind, severity=severity, index=index)

    # -- bookkeeping -----------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Faults injected so far."""
        return self._emitted

    def operations(self, site: str) -> int:
        """Operations drawn so far at *site*."""
        return self._counters.get(site, 0)
