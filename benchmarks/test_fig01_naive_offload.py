"""Figure 1: speedups of naively offloaded OpenMP codes on the MIC.

Regenerates the motivating figure: with plain offload pragmas, most of
the twelve benchmarks run *slower* on the coprocessor than on the CPU.
Shape target: 8 of 12 below 1.0 (paper: 8 of 12).
"""

from benchmarks.conftest import emit
from repro.experiments.figures import figure1
from repro.experiments.report import render_figure


def test_figure1_naive_offload(benchmark, runner):
    fig = benchmark.pedantic(
        lambda: figure1(runner), rounds=1, iterations=1
    )
    emit(render_figure(fig))
    losers = sum(1 for v in fig.series.values() if v < 1.0)
    assert losers == 8
    assert fig.series["streamcluster"] < 0.1
