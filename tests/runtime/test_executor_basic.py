"""Interpreter correctness tests: host-only programs."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.runtime.executor import Machine, run_program


class TestScalars:
    def test_arithmetic(self):
        result = run_program(
            "void main() { x = 2 + 3 * 4; }",
        )
        assert result.scalar("x") == 14

    def test_float_division(self):
        result = run_program("void main() { x = 7.0 / 2.0; }")
        assert result.scalar("x") == 3.5

    def test_int_division_truncates_toward_zero(self):
        result = run_program("void main() { a = 7 / 2; b = -7 / 2; }")
        assert result.scalar("a") == 3
        assert result.scalar("b") == -3

    def test_modulo_c_semantics(self):
        result = run_program("void main() { a = 7 % 3; b = -7 % 3; }")
        assert result.scalar("a") == 1
        assert result.scalar("b") == -1

    def test_comparisons(self):
        result = run_program("void main() { a = 3 < 5; b = 3 >= 5; }")
        assert result.scalar("a") == 1
        assert result.scalar("b") == 0

    def test_logical_short_circuit(self):
        # (0 && crash()) must not evaluate the call.
        result = run_program("void main() { a = 0 && nonexistent(); }")
        assert result.scalar("a") == 0

    def test_ternary(self):
        result = run_program("void main() { x = 5 > 3 ? 10 : 20; }")
        assert result.scalar("x") == 10

    def test_declared_int_coercion(self):
        result = run_program("void main() { int x = 3.9; y = x; }")
        assert result.scalar("y") == 3

    def test_compound_assignment(self):
        result = run_program("void main() { x = 10; x += 5; x *= 2; }")
        assert result.scalar("x") == 30

    def test_cast(self):
        result = run_program("void main() { x = (int)(3.7); }")
        assert result.scalar("x") == 3

    def test_uninitialized_read_raises(self):
        with pytest.raises(ExecutionError):
            run_program("void main() { int x; y = x + 1; }")


class TestControlFlow:
    def test_if_else(self):
        result = run_program(
            "void main() { if (1 > 2) { x = 1; } else { x = 2; } }"
        )
        assert result.scalar("x") == 2

    def test_for_loop(self):
        result = run_program(
            "void main() { s = 0; for (int i = 0; i < 10; i++) { s += i; } }"
        )
        assert result.scalar("s") == 45

    def test_while_loop(self):
        result = run_program(
            "void main() { x = 1; while (x < 100) { x = x * 2; } }"
        )
        assert result.scalar("x") == 128

    def test_break(self):
        result = run_program(
            "void main() { s = 0; for (int i = 0; i < 10; i++) {"
            " if (i == 3) { break; } s += 1; } }"
        )
        assert result.scalar("s") == 3

    def test_continue(self):
        result = run_program(
            "void main() { s = 0; for (int i = 0; i < 10; i++) {"
            " if (i % 2 == 0) { continue; } s += 1; } }"
        )
        assert result.scalar("s") == 5

    def test_nested_loops(self):
        result = run_program(
            "void main() { s = 0;"
            " for (int i = 0; i < 3; i++)"
            "  for (int j = 0; j < 4; j++) { s += 1; } }"
        )
        assert result.scalar("s") == 12


class TestArrays:
    def test_bound_array_read_write(self):
        a = np.arange(5, dtype=np.float32)
        result = run_program(
            "void main() { A[0] = A[4] + 1.0; }", arrays={"A": a}
        )
        assert result.array("A")[0] == 5.0

    def test_loop_over_array(self):
        a = np.ones(10, dtype=np.float32)
        result = run_program(
            "void main() { for (int i = 0; i < n; i++) { A[i] = A[i] * 2.0; } }",
            arrays={"A": a},
            scalars={"n": 10},
        )
        assert np.all(result.array("A") == 2.0)

    def test_local_array(self):
        result = run_program(
            "void main() { float t[4]; t[2] = 7.0; x = t[2] + t[0]; }"
        )
        assert result.scalar("x") == 7.0

    def test_out_of_bounds_raises(self):
        with pytest.raises(ExecutionError):
            run_program(
                "void main() { x = A[10]; }",
                arrays={"A": np.zeros(5, dtype=np.float32)},
            )

    def test_indirect_indexing(self):
        a = np.array([10.0, 20.0, 30.0], dtype=np.float32)
        b = np.array([2, 0, 1], dtype=np.int32)
        result = run_program(
            "void main() { for (int i = 0; i < 3; i++) { C[i] = A[B[i]]; } }",
            arrays={"A": a, "B": b, "C": np.zeros(3, dtype=np.float32)},
        )
        assert list(result.array("C")) == [30.0, 10.0, 20.0]

    def test_structured_array_member_access(self):
        pts = np.zeros(3, dtype=[("x", np.float32), ("y", np.float32)])
        pts["x"] = [1, 2, 3]
        result = run_program(
            "void main() { for (int i = 0; i < 3; i++) { P[i].y = P[i].x * 2.0; } }",
            arrays={"P": pts},
        )
        assert list(result.array("P")["y"]) == [2.0, 4.0, 6.0]


class TestFunctions:
    def test_user_function_call(self):
        result = run_program(
            """
            float square(float v) { return v * v; }
            void main() { x = square(3.0); }
            """
        )
        assert result.scalar("x") == 9.0

    def test_recursion(self):
        result = run_program(
            """
            int fact(int k) { if (k <= 1) { return 1; } return k * fact(k - 1); }
            void main() { x = fact(5); }
            """
        )
        assert result.scalar("x") == 120

    def test_builtin_math(self):
        result = run_program("void main() { x = sqrt(16.0); y = exp(0.0); }")
        assert result.scalar("x") == 4.0
        assert result.scalar("y") == 1.0

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            run_program("void main() { x = mystery(1.0); }")

    def test_entry_params_bound_from_host(self):
        a = np.ones(4, dtype=np.float32)
        result = run_program(
            "void run(float *A, int n) { for (int i = 0; i < n; i++) { A[i] = 5.0; } }",
            arrays={"A": a},
            scalars={"n": 4},
            entry="run",
        )
        assert np.all(result.array("A") == 5.0)

    def test_missing_entry_raises(self):
        with pytest.raises(ExecutionError):
            run_program("void main() { }", entry="nope")

    def test_globals_initialized(self):
        result = run_program("int g = 41;\nvoid main() { x = g + 1; }")
        assert result.scalar("x") == 42


class TestTimingAccounting:
    def test_host_work_advances_clock(self):
        machine = Machine()
        result = run_program(
            "void main() { s = 0.0; for (int i = 0; i < 1000; i++) { s += 1.5; } }",
            machine=machine,
        )
        assert result.stats.total_time > 0.0

    def test_more_work_more_time(self):
        def time_for(iters):
            machine = Machine()
            return run_program(
                "void main() { s = 0.0; for (int i = 0; i < n; i++)"
                " { s += sqrt(2.0); } }",
                scalars={"n": iters},
                machine=machine,
            ).stats.total_time

        assert time_for(10_000) > 5 * time_for(1_000)

    def test_scale_multiplies_time(self):
        src = (
            "void main() { s = 0.0; for (int i = 0; i < 1000; i++) { s += 1.5; } }"
        )
        t1 = run_program(src, machine=Machine(scale=1.0)).stats.total_time
        t100 = run_program(src, machine=Machine(scale=100.0)).stats.total_time
        assert t100 == pytest.approx(100 * t1)

    def test_parallel_loop_faster_than_serial(self):
        parallel = run_program(
            "void main() {\n#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { A[i] = sqrt(A[i]) * 2.0; } }",
            arrays={"A": np.ones(4096, dtype=np.float32)},
            scalars={"n": 4096},
            machine=Machine(),
        ).stats.total_time
        serial = run_program(
            "void main() { for (int i = 0; i < n; i++)"
            " { A[i] = sqrt(A[i]) * 2.0; } }",
            arrays={"A": np.ones(4096, dtype=np.float32)},
            scalars={"n": 4096},
            machine=Machine(),
        ).stats.total_time
        assert parallel < serial
