"""End-to-end data-integrity layer: silent faults, checksums, scrubbing.

Silent fault kinds (``h2d:silent``, ``d2h:silent``, ``kernel:sdc``,
``arena`` bitflips) corrupt payload bytes without raising; only the
:class:`~repro.runtime.integrity.IntegrityManager`'s checksum
verification points can notice.  These tests script silent faults at
each site and assert the detect → repair → account pipeline per
``integrity_mode``: ``full`` detects everything and keeps outputs
bit-identical, ``transfers`` covers the DMA paths, and ``off`` lets
corruption through but books every escape in the coverage matrix.
"""

import numpy as np
import pytest

from repro.errors import SilentDataCorruption
from repro.faults import FaultPlan, FaultSpec, ResiliencePolicy
from repro.faults.plan import DEFAULT_RATES
from repro.runtime.arena import ArenaAllocator
from repro.runtime.executor import Machine, run_program
from repro.runtime.integrity import (
    IntegrityManager,
    arena_segment_checksum,
    buffer_checksum,
)

OFFLOAD_SRC = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0 + 1.0;
    }
}
"""


def make_arrays(n=256):
    return {
        "A": np.arange(n, dtype=np.float32),
        "B": np.zeros(n, dtype=np.float32),
    }


def run_with(machine, n=256):
    return run_program(
        OFFLOAD_SRC, arrays=make_arrays(n), scalars={"n": n}, machine=machine
    )


def baseline(n=256):
    machine = Machine()
    result = run_with(machine, n)
    return result, machine.clock.now


def silent_machine(mode, specs, **policy_kwargs):
    policy = ResiliencePolicy(integrity_mode=mode, **policy_kwargs)
    return Machine(fault_plan=FaultPlan(scripted=specs), resilience=policy)


class TestRateValidation:
    """Satellite: seeded-plan rates must be finite probabilities."""

    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), -0.1, 1.5, "high", None, True]
    )
    def test_bad_rate_value_rejected_naming_site(self, value):
        with pytest.raises(ValueError, match="'h2d'"):
            FaultPlan(seed=1, rates={"h2d": value})

    def test_composite_silent_keys_accepted(self):
        plan = FaultPlan(seed=1, rates={"h2d:silent": 0.5, "kernel:sdc": 0.1})
        assert plan.rates["h2d:silent"] == 0.5
        assert plan.rates["kernel:sdc"] == 0.1

    def test_unknown_composite_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault sites"):
            FaultPlan(seed=1, rates={"h2d:sdc": 0.5})

    def test_arena_bitflip_normalizes_to_site(self):
        plan = FaultPlan(seed=1, rates={"arena:bitflip": 0.25})
        assert plan.rates == {"arena": 0.25}

    def test_policy_integrity_knobs_validated(self):
        with pytest.raises(ValueError, match="integrity_mode"):
            ResiliencePolicy(integrity_mode="paranoid")
        with pytest.raises(ValueError, match="scrub_interval"):
            ResiliencePolicy(scrub_interval=-1.0)
        with pytest.raises(ValueError, match="verify_cost"):
            ResiliencePolicy(verify_cost=-1e-12)
        with pytest.raises(ValueError, match="max_reverify"):
            ResiliencePolicy(max_reverify=-1)


class TestSilentStreamIndependence:
    def test_silent_rates_never_perturb_announced_schedule(self):
        """Enabling silent kinds must not move any announced fault."""
        plain = FaultPlan(seed=11)
        rates = dict(DEFAULT_RATES)
        rates.update({"h2d:silent": 0.9, "d2h:silent": 0.9, "kernel:sdc": 0.9})
        loud = FaultPlan(seed=11, rates=rates)
        for site in ("h2d", "d2h", "kernel"):
            draws_a = [plain.draw(site) for _ in range(300)]
            draws_b = [loud.draw(site) for _ in range(300)]
            assert draws_a == draws_b

    def test_silent_draws_fire_at_their_own_rate(self):
        plan = FaultPlan(seed=11, rates={"h2d:silent": 1.0})
        faults = [plan.draw_silent("h2d") for _ in range(5)]
        assert all(f is not None and f.kind == "silent" for f in faults)
        assert [f.index for f in faults] == list(range(5))

    def test_draw_silent_rejects_sites_without_silent_stream(self):
        plan = FaultPlan(seed=1)
        with pytest.raises(ValueError, match="no separate silent stream"):
            plan.draw_silent("alloc")
        with pytest.raises(ValueError, match="no separate silent stream"):
            plan.draw_silent("arena")  # all-silent: rides the regular draw

    def test_scripted_silent_does_not_displace_announced(self):
        """Same index, both kinds: each rides its own stream."""
        plan = FaultPlan(
            scripted=[
                FaultSpec("h2d", 0, kind="corrupt"),
                FaultSpec("h2d", 0, kind="silent"),
            ]
        )
        announced = plan.draw("h2d")
        silent = plan.draw_silent("h2d")
        assert announced is not None and announced.kind == "corrupt"
        assert silent is not None and silent.kind == "silent"


class TestInjectorSuspended:
    """Satellite: a suspended injector consumes no plan draws."""

    def test_no_draws_consumed_while_suspended(self):
        plan = FaultPlan(seed=3, rates={"h2d": 0.5, "h2d:silent": 0.5})
        machine = Machine(fault_plan=plan)
        injector = machine.coi.injector
        with injector.suspended():
            for _ in range(10):
                assert injector.draw("h2d") is None
                assert injector.draw_silent("h2d") is None
        assert plan.operations("h2d") == 0
        assert plan.silent_operations("h2d") == 0

    def test_schedule_identical_after_resume(self):
        """Suspension is invisible to the post-resume schedule."""
        reference = FaultPlan(seed=3, rates={"h2d:silent": 0.5})
        suspended = FaultPlan(seed=3, rates={"h2d:silent": 0.5})
        machine = Machine(fault_plan=suspended)
        injector = machine.coi.injector
        with injector.suspended():
            for _ in range(50):
                injector.draw_silent("h2d")
        after = [injector.draw_silent("h2d") for _ in range(100)]
        expected = [reference.draw_silent("h2d") for _ in range(100)]
        assert after == expected


class TestRawTransferUnderFaults:
    """Satellite: CoiRuntime.raw_transfer rides the recovery ladder."""

    def test_corrupt_raw_transfer_retried(self):
        clean = Machine()
        clean.coi.raw_transfer(1 << 20, to_device=True, block=True)
        base_time = clean.clock.now

        plan = FaultPlan(scripted=[FaultSpec("h2d", 0, kind="corrupt")])
        machine = Machine(fault_plan=plan)
        machine.coi.raw_transfer(1 << 20, to_device=True, block=True)
        assert machine.clock.now > base_time
        assert machine.fault_stats.retries == 1
        assert machine.fault_stats.injected == {"h2d:corrupt": 1}

    def test_stalled_raw_transfer_times_out(self):
        plan = FaultPlan(scripted=[FaultSpec("d2h", 0, kind="stall")])
        machine = Machine(fault_plan=plan)
        machine.coi.raw_transfer(1 << 20, to_device=False, block=True)
        assert machine.fault_stats.timeouts == 1
        assert machine.fault_stats.recovery_seconds > 0


class TestH2dSilent:
    def test_off_mode_lets_corruption_through(self):
        base, base_time = baseline()
        machine = silent_machine("off", [FaultSpec("h2d", 0, kind="silent")])
        result = run_with(machine)
        machine.finalize_integrity()
        assert not np.array_equal(result.array("B"), base.array("B"))
        # Undetected corruption costs nothing: the clock must match.
        assert machine.clock.now == base_time
        stats = machine.fault_stats
        assert stats.silent_injected == 1
        assert stats.silent_detected == 0
        assert stats.sdc_escapes == 1
        assert stats.coverage["h2d"]["escaped"] == 1

    @pytest.mark.parametrize("mode", ["transfers", "full"])
    def test_verifying_modes_repair_bit_identically(self, mode):
        base, base_time = baseline()
        machine = silent_machine(mode, [FaultSpec("h2d", 0, kind="silent")])
        result = run_with(machine)
        machine.finalize_integrity()
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.clock.now > base_time
        stats = machine.fault_stats
        assert stats.silent_detected == 1
        assert stats.sdc_escapes == 0
        assert stats.silent_retransfers >= 1
        assert stats.coverage["h2d"] == {
            "injected": 1, "detected": 1, "corrected": 1, "escaped": 0,
        }
        assert stats.recovery_actions["h2d"]["retransfer"] >= 1

    def test_transfers_mode_catches_write_read_roundtrip(self):
        """Corruption read straight back (no kernel) must not escape."""
        data = np.arange(32, dtype=np.float32)
        machine = silent_machine(
            "transfers", [FaultSpec("h2d", 0, kind="silent")]
        )
        coi = machine.coi
        coi.alloc_buffer("X", 32)
        coi.write_buffer("X", 0, data)
        host = np.zeros(32, dtype=np.float32)
        coi.read_buffer("X", 0, 32, host, 0)
        assert np.array_equal(host, data)
        assert machine.fault_stats.silent_detected == 1

    def test_rewrite_heals_pending_corruption(self):
        """A full rewrite of the corrupted window settles the record."""
        data = np.arange(16, dtype=np.float32)
        machine = silent_machine(
            "transfers", [FaultSpec("h2d", 0, kind="silent")]
        )
        coi = machine.coi
        coi.alloc_buffer("X", 16)
        coi.write_buffer("X", 0, data)
        coi.write_buffer("X", 0, data)
        assert np.array_equal(coi.device.arrays["X"], data)
        assert machine.fault_stats.silent_detected == 1
        assert machine.fault_stats.sdc_escapes == 0


class TestD2hSilent:
    @pytest.mark.parametrize("mode", ["transfers", "full"])
    def test_post_read_verification_repairs_host_window(self, mode):
        base, base_time = baseline()
        machine = silent_machine(mode, [FaultSpec("d2h", 0, kind="silent")])
        result = run_with(machine)
        machine.finalize_integrity()
        assert np.array_equal(result.array("B"), base.array("B"))
        # Checksum time is charged to the host cursor but can hide under
        # DMA/kernel slack; it must never *reduce* the total.
        assert machine.clock.now >= base_time
        stats = machine.fault_stats
        assert stats.verify_seconds > 0
        assert stats.coverage["d2h"]["detected"] == 1
        assert stats.sdc_escapes == 0
        assert stats.recovery_actions["d2h"]["retransfer"] >= 1

    def test_off_mode_corrupts_host_output(self):
        base, _ = baseline()
        machine = silent_machine("off", [FaultSpec("d2h", 0, kind="silent")])
        result = run_with(machine)
        machine.finalize_integrity()
        assert not np.array_equal(result.array("B"), base.array("B"))
        assert machine.fault_stats.sdc_escapes == 1


class TestKernelSdc:
    def test_full_mode_reexecutes_and_stays_identical(self):
        base, base_time = baseline()
        machine = silent_machine("full", [FaultSpec("kernel", 0, kind="sdc")])
        result = run_with(machine)
        machine.finalize_integrity()
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.clock.now > base_time
        stats = machine.fault_stats
        assert stats.coverage["kernel"]["detected"] == 1
        assert stats.kernel_reverifies == 1
        assert stats.recovery_actions["kernel"]["reexecute"] == 1
        assert stats.sdc_escapes == 0

    def test_off_mode_escapes(self):
        base, base_time = baseline()
        machine = silent_machine("off", [FaultSpec("kernel", 0, kind="sdc")])
        result = run_with(machine)
        machine.finalize_integrity()
        assert not np.array_equal(result.array("B"), base.array("B"))
        assert machine.clock.now == base_time
        assert machine.fault_stats.coverage["kernel"]["escaped"] == 1

    def test_reverify_budget_escalates_to_checkpoint_restore(self):
        specs = [FaultSpec("kernel", i, kind="sdc") for i in range(2)]
        machine = silent_machine(
            "full", specs, max_reverify=1, checkpoint_interval=2
        )
        coi = machine.coi
        integrity = machine.integrity
        coi.alloc_buffer("B", 64)
        coi.device.arrays["B"][:] = 1.0
        for _ in range(2):
            integrity.note_kernel_writes(coi)
            integrity.kernel_completed(coi, ["B"], kernel_seconds=0.001)
            integrity.pre_kernel_verify(coi, ["B"])
        assert np.array_equal(
            coi.device.arrays["B"], np.ones(64, dtype=np.float32)
        )
        stats = machine.fault_stats
        assert stats.kernel_reverifies == 1
        assert stats.recovery_actions["kernel"]["checkpoint_restore"] == 1
        assert stats.coverage["kernel"]["detected"] == 2

    def test_reverify_budget_without_checkpoint_raises(self):
        specs = [FaultSpec("kernel", i, kind="sdc") for i in range(2)]
        machine = silent_machine("full", specs, max_reverify=1)
        coi = machine.coi
        integrity = machine.integrity
        coi.alloc_buffer("B", 64)
        coi.device.arrays["B"][:] = 1.0
        integrity.note_kernel_writes(coi)
        integrity.kernel_completed(coi, ["B"], kernel_seconds=0.001)
        integrity.pre_kernel_verify(coi, ["B"])
        integrity.kernel_completed(coi, ["B"], kernel_seconds=0.001)
        with pytest.raises(SilentDataCorruption):
            integrity.pre_kernel_verify(coi, ["B"])


class TestArenaBitflip:
    def build_arena(self, machine):
        arena = ArenaAllocator(chunk_bytes=4096)
        objs = [arena.allocate(64, value=float(i), count=i) for i in range(4)]
        arena.copy_to_device(machine.coi)
        return arena, objs

    @staticmethod
    def field_image(objs):
        return [(o.fields["count"], o.fields["value"]) for o in objs]

    def test_verifying_mode_restores_field(self):
        machine = silent_machine("full", [FaultSpec("arena", 0)])
        arena, objs = self.build_arena(machine)
        machine.finalize_integrity()
        assert self.field_image(objs) == [(i, float(i)) for i in range(4)]
        stats = machine.fault_stats
        assert stats.coverage["arena"]["detected"] == 1
        assert stats.sdc_escapes == 0
        assert stats.recovery_actions["arena"]["retransfer"] == 1

    def test_off_mode_corrupts_field_and_escapes(self):
        machine = silent_machine("off", [FaultSpec("arena", 0)])
        arena, objs = self.build_arena(machine)
        machine.finalize_integrity()
        assert self.field_image(objs) != [(i, float(i)) for i in range(4)]
        assert machine.fault_stats.coverage["arena"]["escaped"] == 1

    def test_segment_checksum_tracks_field_changes(self):
        machine = Machine()
        arena, objs = self.build_arena(machine)
        before = arena_segment_checksum(arena, arena.buffers[0])
        objs[1].fields["value"] = 99.0
        after = arena_segment_checksum(arena, arena.buffers[0])
        assert before != after


class TestVerifyPoints:
    def test_pre_free_verification_settles_corruption(self):
        machine = silent_machine("full", [FaultSpec("h2d", 0, kind="silent")])
        coi = machine.coi
        coi.alloc_buffer("X", 32)
        coi.write_buffer("X", 0, np.arange(32, dtype=np.float32))
        coi.free_buffer("X")
        assert machine.fault_stats.silent_detected == 1
        assert machine.fault_stats.sdc_escapes == 0

    def test_checkpoint_commit_verifies_in_full_mode(self):
        machine = silent_machine(
            "full", [FaultSpec("h2d", 0, kind="silent")], checkpoint_interval=4
        )
        coi = machine.coi
        coi.alloc_buffer("X", 32)
        coi.write_buffer("X", 0, np.arange(32, dtype=np.float32))
        machine.checkpoint.commit(coi)
        assert machine.fault_stats.silent_detected == 1

    def test_scrub_detects_between_kernels(self):
        machine = silent_machine(
            "full", [FaultSpec("h2d", 0, kind="silent")], scrub_interval=1e-9
        )
        coi = machine.coi
        coi.alloc_buffer("X", 32)
        coi.write_buffer("X", 0, np.arange(32, dtype=np.float32))
        machine.integrity.maybe_scrub(coi)
        stats = machine.fault_stats
        assert stats.scrubs == 1
        assert stats.scrub_seconds > 0
        assert stats.silent_detected == 1

    def test_scrub_respects_interval(self):
        machine = silent_machine("full", [], scrub_interval=1e6)
        coi = machine.coi
        coi.alloc_buffer("X", 32)
        coi.write_buffer("X", 0, np.arange(32, dtype=np.float32))
        machine.integrity.maybe_scrub(coi)
        assert machine.fault_stats.scrubs == 0

    def test_verification_charges_simulated_time(self):
        plain = Machine()
        plain.coi.alloc_buffer("X", 1024)
        plain.coi.write_buffer("X", 0, np.ones(1024, dtype=np.float32))
        verified = silent_machine("transfers", [])
        verified.coi.alloc_buffer("X", 1024)
        verified.coi.write_buffer("X", 0, np.ones(1024, dtype=np.float32))
        host = np.zeros(1024, dtype=np.float32)
        verified.coi.read_buffer("X", 0, 1024, host, 0)
        assert verified.fault_stats.verifications > 0
        assert verified.fault_stats.verify_seconds > 0

    def test_finalize_is_idempotent(self):
        machine = silent_machine("off", [FaultSpec("h2d", 0, kind="silent")])
        coi = machine.coi
        coi.alloc_buffer("X", 32)
        coi.write_buffer("X", 0, np.arange(32, dtype=np.float32))
        machine.finalize_integrity()
        machine.finalize_integrity()
        assert machine.fault_stats.sdc_escapes == 1


class TestChecksums:
    def test_buffer_checksum_sees_every_byte(self):
        buf = np.zeros(64, dtype=np.float32)
        ref = buffer_checksum(buf)
        view = buf.view(np.uint8)
        view[17] ^= 0x40
        assert buffer_checksum(buf) != ref
        view[17] ^= 0x40
        assert buffer_checksum(buf) == ref

    def test_corruption_is_engine_independent(self):
        """The flipped bytes depend only on (site, ordinal, size)."""
        outputs = []
        for _ in range(2):
            machine = silent_machine(
                "off", [FaultSpec("h2d", 0, kind="silent")]
            )
            coi = machine.coi
            coi.alloc_buffer("X", 32)
            coi.write_buffer("X", 0, np.arange(32, dtype=np.float32))
            outputs.append(coi.device.arrays["X"].copy())
        assert np.array_equal(outputs[0], outputs[1])


class TestModeOffIsFree:
    def test_off_mode_without_silent_faults_is_bit_identical(self):
        base, base_time = baseline()
        machine = silent_machine("off", [])
        result = run_with(machine)
        machine.finalize_integrity()
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.clock.now == base_time
        assert machine.fault_stats.verifications == 0
        assert machine.fault_stats.coverage == {}

    def test_full_mode_without_faults_costs_only_time(self):
        base, base_time = baseline()
        machine = silent_machine("full", [])
        result = run_with(machine)
        machine.finalize_integrity()
        assert np.array_equal(result.array("B"), base.array("B"))
        # Checksum overhead is charged (and may overlap device slack).
        assert machine.clock.now >= base_time
        assert machine.fault_stats.verifications > 0
        assert machine.fault_stats.verify_seconds > 0
        assert machine.fault_stats.silent_detected == 0
        assert machine.fault_stats.sdc_escapes == 0
